//! The sharded acquisition executor: a `std::thread` worker pool that
//! captures a stimulus schedule in parallel, isolating and recovering
//! from per-trace failures.
//!
//! Determinism: trace `i`'s value depends only on the (pre-computed)
//! schedule entry `i` and its per-trace seed `trace_seed(base_seed, i)`
//! — never on which worker captured it or when. Workers pull fixed-size
//! index chunks from a shared atomic cursor (dynamic load balancing: the
//! seven netlists differ ~10× in event count per trace) and results are
//! written back by index, so the output is bit-identical for any worker
//! count, including 1.
//!
//! Fault tolerance: each capture runs inside `catch_unwind`, so one
//! panicking trace cannot unwind the worker scope and lose everything
//! already captured. A failed index is retried up to
//! [`ExecPolicy::max_retries`] times — the per-trace seed is re-derived,
//! so a successful retry is bit-identical to a never-failed capture —
//! and an index that keeps failing is **quarantined** into the
//! [`ExecutorReport`] while the rest of the run completes. When a
//! [`ResumeState`] carries a checkpoint, completed traces stream to it
//! as they arrive and previously checkpointed indices are skipped, so a
//! killed run resumes instead of restarting.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use acquisition::{capture_stimulus_session, trace_seed, Backend, Stimulus};
use gatesim::{
    BitslicedSession, CaptureSession, CaptureStats, LaneStimulus, SamplingConfig, Simulator, LANES,
};
use leakage_core::online::{Merge, SpectrumAccumulator, SumMode, TreeReducer, FOLD_CHUNK};

use crate::fault::{FaultPlan, InjectedFault};
use crate::store::CheckpointWriter;

/// Indices are claimed in chunks of this size — small enough to balance
/// the ~10× per-scheme cost spread at 1024 traces, large enough that the
/// atomic cursor never contends.
///
/// Pinned to [`FOLD_CHUNK`] so the streaming fold's merge-tree leaves
/// coincide with the executor's work units: a sequential
/// `SpectrumStream` over the same schedule reproduces the sharded fold
/// bit-for-bit.
const CHUNK: usize = FOLD_CHUNK;

/// What one worker did, for the utilization report.
#[derive(Debug, Clone)]
pub struct WorkerLoad {
    /// Traces this worker captured.
    pub traces: usize,
    /// Wall-clock time this worker spent capturing (not waiting).
    pub busy: Duration,
}

/// One schedule index the executor gave up on: every allowed attempt
/// panicked or failed validation.
#[derive(Debug, Clone)]
pub struct CaptureFailure {
    /// The schedule index that could not be captured.
    pub index: usize,
    /// Capture attempts made (1 + retries).
    pub attempts: u32,
    /// The final failure's message.
    pub message: String,
}

/// A shareable cancellation flag: clone it, hand one clone to the run,
/// trip the other from anywhere (another thread, a signal handler, a
/// job-server frontend). The executor polls it at chunk boundaries.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cooperative cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a run stopped before completing its schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The wall-clock deadline expired.
    Deadline,
    /// The new-trace budget was spent.
    TraceBudget,
    /// The run's [`CancelToken`] was tripped.
    Cancelled,
}

impl fmt::Display for StopCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopCause::Deadline => write!(f, "deadline expired"),
            StopCause::TraceBudget => write!(f, "trace budget spent"),
            StopCause::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A typed record of an early stop: the cause, and how many schedule
/// indices were left uncaptured (they stay in the checkpoint's future).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interruption {
    /// What stopped the run.
    pub cause: StopCause,
    /// Schedule indices not captured, resumed, or quarantined.
    pub remaining: usize,
}

/// Resource limits for one run: a wall-clock time limit, a cap on newly
/// captured traces, and a cooperative [`CancelToken`]. All unlimited by
/// default.
///
/// Budgets are enforced at **chunk boundaries**: workers stop claiming
/// chunks once any limit trips, in-flight chunks complete normally, the
/// checkpoint gets a final sync, and the report carries a typed
/// [`Interruption`]. Because a chunk either completes or was never
/// claimed, an interrupted run's checkpoint holds only whole, verified
/// frames — resuming it reproduces the uninterrupted run bit for bit.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Stop claiming work this long after the run starts.
    pub time_limit: Option<Duration>,
    /// Stop after at least this many *new* captures (resumed traces are
    /// free). The overshoot is at most one chunk per worker.
    pub max_new_traces: Option<usize>,
    /// Cooperative cancellation flag, polled at chunk boundaries.
    pub cancel: Option<CancelToken>,
}

impl RunBudget {
    /// No limits (the production default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Whether every limit is absent.
    pub fn is_unlimited(&self) -> bool {
        self.time_limit.is_none() && self.max_new_traces.is_none() && self.cancel.is_none()
    }

    /// Set the wall-clock time limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Set the new-trace cap.
    pub fn with_max_new_traces(mut self, max: usize) -> Self {
        self.max_new_traces = Some(max);
        self
    }

    /// Attach a cancellation token (keep a clone to trip it).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Shared budget enforcement: workers ask [`BudgetGate::should_stop`]
/// before claiming each chunk; the first tripped limit is recorded and
/// every later check short-circuits to "stop".
struct BudgetGate {
    deadline: Option<Instant>,
    max_new: Option<usize>,
    cancel: Option<CancelToken>,
    captured: AtomicUsize,
    /// 0 = running; otherwise the encoded [`StopCause`] + 1.
    stop: AtomicUsize,
}

impl BudgetGate {
    fn new(budget: &RunBudget) -> Self {
        Self {
            deadline: budget.time_limit.map(|limit| Instant::now() + limit),
            max_new: budget.max_new_traces,
            cancel: budget.cancel.clone(),
            captured: AtomicUsize::new(0),
            stop: AtomicUsize::new(0),
        }
    }

    fn note_captured(&self, n: usize) {
        if n > 0 {
            self.captured.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn should_stop(&self) -> bool {
        if self.stop.load(Ordering::Relaxed) != 0 {
            return true;
        }
        let cause = if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            Some(StopCause::Cancelled)
        } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
            Some(StopCause::Deadline)
        } else if self
            .max_new
            .is_some_and(|m| self.captured.load(Ordering::Relaxed) >= m)
        {
            Some(StopCause::TraceBudget)
        } else {
            None
        };
        match cause {
            Some(c) => {
                let code = match c {
                    StopCause::Deadline => 1,
                    StopCause::TraceBudget => 2,
                    StopCause::Cancelled => 3,
                };
                // First cause wins; racing workers may observe different
                // causes in the same instant, but only one is recorded.
                let _ = self
                    .stop
                    .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    fn cause(&self) -> Option<StopCause> {
        match self.stop.load(Ordering::Relaxed) {
            0 => None,
            1 => Some(StopCause::Deadline),
            2 => Some(StopCause::TraceBudget),
            _ => Some(StopCause::Cancelled),
        }
    }
}

/// Execution policy: parallelism, failure handling, and resource
/// budgets.
#[derive(Debug, Clone)]
pub struct ExecPolicy {
    /// Worker threads; 0 means all available cores.
    pub workers: usize,
    /// Retries per failing index after its first attempt. Retries
    /// re-derive the same per-trace seed, so a recovered capture is
    /// bit-identical to one that never failed.
    pub max_retries: u32,
    /// Fault-injection plan (inert by default).
    pub faults: FaultPlan,
    /// Deadline / trace cap / cancellation (unlimited by default).
    pub budget: RunBudget,
    /// Per-capture watchdog: an attempt that takes longer than this is
    /// discarded and counted as a failed (retryable) attempt, so one
    /// pathologically slow capture degrades to a quarantined index
    /// instead of wedging its worker. Cooperative — the attempt must
    /// return before the overrun is seen — so it bounds damage from
    /// *slow* captures; a truly wedged simulation needs process-level
    /// supervision. On the bit-sliced backend the watchdog applies to
    /// the scalar-routed indices only (a batch pass is one uniform
    /// levelized sweep, not a per-trace event loop).
    pub capture_timeout: Option<Duration>,
    /// Capture engine. [`Backend::Bitsliced`] and [`Backend::Auto`]
    /// claim work in [`LANES`]-sized batches, so a [`RunBudget`]'s
    /// overshoot bound grows from one chunk to one batch per
    /// worker; everything else — trace values, retry/quarantine
    /// behaviour, fold results — is bit-identical to the event engine.
    pub backend: Backend,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self {
            workers: 0,
            max_retries: 2,
            faults: FaultPlan::none(),
            budget: RunBudget::unlimited(),
            capture_timeout: None,
            backend: Backend::Event,
        }
    }
}

/// What a resumed run already knows, and where new progress should be
/// flushed.
#[derive(Debug, Default)]
pub struct ResumeState<'a> {
    /// Traces completed by a previous (killed or quarantined) run, as
    /// `(schedule index, samples)`. Out-of-range indices are ignored.
    pub completed: Vec<(usize, Vec<f64>)>,
    /// Checkpoint sink for newly completed traces (`None` = no
    /// checkpointing). Write failures degrade to a warning in the
    /// report; they never fail the run.
    pub checkpoint: Option<&'a mut CheckpointWriter>,
    /// Sync the checkpoint after this many newly captured traces
    /// (0 = only at the end of the run).
    pub sync_every: usize,
}

impl ResumeState<'_> {
    /// A run starting from nothing, with no checkpointing.
    pub fn fresh() -> Self {
        Self::default()
    }
}

/// Timing and accounting of one executor run.
#[derive(Debug, Clone)]
pub struct ExecutorReport {
    /// Worker count actually used.
    pub workers: usize,
    /// Per-worker load.
    pub loads: Vec<WorkerLoad>,
    /// End-to-end wall time of the parallel section.
    pub wall: Duration,
    /// Aggregated simulator event counters (newly simulated traces only
    /// — resumed traces cost zero events).
    pub stats: CaptureStats,
    /// Indices that failed at least once but succeeded on a retry.
    pub retried: usize,
    /// Indices that failed every allowed attempt; their slots in the
    /// returned trace vector are empty.
    pub quarantined: Vec<CaptureFailure>,
    /// Traces served from the resume state instead of simulated.
    pub resumed: usize,
    /// Largest number of newly captured traces resident in memory at
    /// once. Always 0 for the batch path (which by design retains every
    /// trace); for the streaming fold it is bounded by
    /// `O(workers × CHUNK)`, independent of schedule length.
    pub peak_resident: usize,
    /// Merge depth of the final streaming accumulator (0 for the batch
    /// path and single-chunk streaming runs).
    pub merge_depth: usize,
    /// Set when a [`RunBudget`] limit stopped the run before the
    /// schedule completed; the results cover a prefix of the work and
    /// the checkpoint (if any) is valid for resuming.
    pub interrupted: Option<Interruption>,
    /// The engine that actually captured newly simulated traces:
    /// [`Backend::Bitsliced`] when the fast path ran, [`Backend::Event`]
    /// otherwise (including a requested-but-unsupported bitsliced run,
    /// which also records a warning). Never [`Backend::Auto`] — that
    /// request resolves before capture starts.
    pub backend: Backend,
    /// Fraction of bit-sliced lane slots that carried real stimuli,
    /// over all batch passes (`< 1.0` when `traces % LANES` leaves a
    /// partial final batch, or when faulted indices were routed to the
    /// scalar path). `None` on the event engine or when no batch ran.
    pub lane_utilization: Option<f64>,
    /// Non-fatal degradations (checkpoint write failures, …).
    pub warnings: Vec<String>,
}

impl ExecutorReport {
    /// Fraction of `workers × wall` spent capturing (1.0 = perfectly
    /// balanced, no idle tails).
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.loads.iter().map(|l| l.busy.as_secs_f64()).sum();
        let capacity = self.wall.as_secs_f64() * self.workers as f64;
        if capacity > 0.0 {
            (busy / capacity).min(1.0)
        } else {
            1.0
        }
    }

    /// Traces captured per second of wall time.
    pub fn traces_per_sec(&self) -> f64 {
        let n: usize = self.loads.iter().map(|l| l.traces).sum();
        if self.wall.as_secs_f64() > 0.0 {
            n as f64 / self.wall.as_secs_f64()
        } else {
            f64::INFINITY
        }
    }
}

/// Resolve a requested worker count: 0 means "all available cores".
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Lane occupancy of the bit-sliced batch passes a worker ran (zero on
/// the event engine).
#[derive(Debug, Clone, Copy, Default)]
struct LaneUse {
    /// Batch passes executed.
    batches: usize,
    /// Lane slots that carried real stimuli, summed over those passes.
    lanes: usize,
}

impl LaneUse {
    fn merge(&mut self, other: LaneUse) {
        self.batches += other.batches;
        self.lanes += other.lanes;
    }

    /// `lanes / (batches × LANES)`, or `None` if no batch ran.
    fn utilization(self) -> Option<f64> {
        (self.batches > 0).then(|| self.lanes as f64 / (self.batches * LANES) as f64)
    }
}

/// Resolve the policy's requested backend against the simulator's
/// netlist: the bit-sliced engine only runs where its static support
/// check passes. An explicit [`Backend::Bitsliced`] request on an
/// unsupported netlist degrades to the event engine *with a recorded
/// warning*; [`Backend::Auto`] degrades silently.
fn resolve_backend(
    sim: &Simulator<'_>,
    policy: &ExecPolicy,
    warnings: &mut Vec<String>,
) -> Backend {
    match policy.backend {
        Backend::Event => Backend::Event,
        Backend::Auto => match sim.bitsliced_session() {
            Ok(_) => Backend::Bitsliced,
            Err(_) => Backend::Event,
        },
        Backend::Bitsliced => match sim.bitsliced_session() {
            Ok(_) => Backend::Bitsliced,
            Err(e) => {
                warnings.push(format!(
                    "bitsliced backend unavailable for this netlist, using the \
                     event-driven engine: {e}"
                ));
                Backend::Event
            }
        },
    }
}

/// One worker's capture engines: the scalar event-driven session
/// (always present — the retry, fault-injection, and validation-failure
/// paths run on it) plus the bit-sliced batch session when the resolved
/// backend is [`Backend::Bitsliced`].
struct WorkerEngine<'s> {
    scalar: CaptureSession<'s>,
    batch: Option<BitslicedSession<'s>>,
}

impl<'s> WorkerEngine<'s> {
    fn new(sim: &'s Simulator<'_>, backend: Backend) -> Self {
        Self {
            scalar: sim.session(),
            // The support check is a pure function of the netlist and
            // was just probed by `resolve_backend`.
            batch: (backend == Backend::Bitsliced).then(|| {
                sim.bitsliced_session()
                    .expect("support probed at run start")
            }),
        }
    }

    /// Indices claimed per cursor advance: a full lane batch on the
    /// bit-sliced engine, one merge-tree leaf on the event engine.
    fn claim(&self) -> usize {
        if self.batch.is_some() {
            LANES
        } else {
            CHUNK
        }
    }
}

/// Whether `index` must be captured on the scalar event-driven path
/// even under the bit-sliced backend: validation failures quarantine
/// through the scalar path's typed error, and indices with scheduled
/// capture faults or delays go through its `catch_unwind`/retry/
/// watchdog loop so fault-injection semantics (and the resulting
/// reports) are backend-independent.
fn needs_scalar_path(
    stimulus: &Stimulus,
    expected_inputs: usize,
    index: usize,
    policy: &ExecPolicy,
) -> bool {
    stimulus.validate(expected_inputs).is_err()
        || policy.faults.capture_fault_due(index, 0)
        || policy.faults.capture_delay(index, 0).is_some()
}

/// One worker's progress on one chunk of indices.
struct ChunkResult {
    worker: usize,
    captured: Vec<(usize, Vec<f64>)>,
    failures: Vec<CaptureFailure>,
    stats: CaptureStats,
    busy: Duration,
    retried: usize,
    lanes: LaneUse,
}

/// Capture `schedule` with `workers` threads, seeding trace `i`'s
/// measurement noise from `trace_seed(base_seed, i)`.
///
/// The compatibility entry point: default retry policy, no fault
/// injection, no resume. See [`capture_schedule_with`].
pub fn capture_schedule(
    sim: &Simulator<'_>,
    schedule: &[Stimulus],
    sampling: &SamplingConfig,
    base_seed: u64,
    workers: usize,
) -> (Vec<Vec<f64>>, ExecutorReport) {
    capture_schedule_with(
        sim,
        schedule,
        sampling,
        base_seed,
        &ExecPolicy {
            workers,
            ..ExecPolicy::default()
        },
        ResumeState::fresh(),
    )
}

/// Capture `schedule` under an explicit [`ExecPolicy`] and
/// [`ResumeState`].
///
/// Returns the traces in schedule order plus the run report. Quarantined
/// indices (listed in [`ExecutorReport::quarantined`]) keep an empty
/// `Vec` in their slot. With one worker everything runs inline on the
/// caller's thread (no pool overhead), which also serves as the
/// reference for the determinism guarantee.
pub fn capture_schedule_with(
    sim: &Simulator<'_>,
    schedule: &[Stimulus],
    sampling: &SamplingConfig,
    base_seed: u64,
    policy: &ExecPolicy,
    resume: ResumeState<'_>,
) -> (Vec<Vec<f64>>, ExecutorReport) {
    let workers = resolve_workers(policy.workers).min(schedule.len()).max(1);
    let started = Instant::now();
    let mut warnings = Vec::new();
    let backend = resolve_backend(sim, policy, &mut warnings);

    let mut traces: Vec<Vec<f64>> = vec![Vec::new(); schedule.len()];
    let mut filled = vec![false; schedule.len()];
    let mut resumed = 0usize;
    for (index, samples) in resume.completed {
        if index < schedule.len() && !filled[index] {
            traces[index] = samples;
            filled[index] = true;
            resumed += 1;
        }
    }
    let skip: HashSet<usize> = filled
        .iter()
        .enumerate()
        .filter_map(|(i, &f)| f.then_some(i))
        .collect();

    let mut sink = CheckpointSink {
        writer: resume.checkpoint,
        sync_every: resume.sync_every,
        since_sync: 0,
        warning: None,
    };

    let mut loads: Vec<WorkerLoad> = (0..workers)
        .map(|_| WorkerLoad {
            traces: 0,
            busy: Duration::ZERO,
        })
        .collect();
    let mut stats = CaptureStats::default();
    let mut retried = 0usize;
    let mut quarantined: Vec<CaptureFailure> = Vec::new();
    let mut lane_use = LaneUse::default();
    let gate = BudgetGate::new(&policy.budget);

    if workers == 1 {
        // One engine for the whole run: scratch buffers are reused
        // across every capture, including retries.
        let mut engine = WorkerEngine::new(sim, backend);
        for chunk_start in (0..schedule.len()).step_by(engine.claim()) {
            if gate.should_stop() {
                break;
            }
            let chunk_end = (chunk_start + engine.claim()).min(schedule.len());
            let result = capture_claim(
                &mut engine,
                schedule,
                sampling,
                base_seed,
                policy,
                0,
                chunk_start..chunk_end,
                &skip,
            );
            gate.note_captured(result.captured.len());
            absorb(
                result,
                &mut traces,
                &mut loads,
                &mut stats,
                &mut retried,
                &mut quarantined,
                &mut lane_use,
                &mut sink,
                schedule,
            );
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<ChunkResult>();
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let skip = &skip;
                let gate = &gate;
                scope.spawn(move || {
                    // One persistent engine per worker thread, reused
                    // for its entire shard (retries included). Sessions
                    // only borrow the simulator, so this is free of
                    // synchronization.
                    let mut engine = WorkerEngine::new(sim, backend);
                    loop {
                        if gate.should_stop() {
                            break;
                        }
                        let start = cursor.fetch_add(engine.claim(), Ordering::Relaxed);
                        if start >= schedule.len() {
                            break;
                        }
                        let end = (start + engine.claim()).min(schedule.len());
                        let result = capture_claim(
                            &mut engine,
                            schedule,
                            sampling,
                            base_seed,
                            policy,
                            worker,
                            start..end,
                            skip,
                        );
                        gate.note_captured(result.captured.len());
                        // The receiver outlives the workers; a send can
                        // only fail if the parent panicked, in which
                        // case the scope unwinds anyway.
                        if tx.send(result).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            // Collect on the caller's thread while workers run, so
            // checkpoint frames land on disk as progress is made, not
            // after the fact.
            for result in rx {
                absorb(
                    result,
                    &mut traces,
                    &mut loads,
                    &mut stats,
                    &mut retried,
                    &mut quarantined,
                    &mut lane_use,
                    &mut sink,
                    schedule,
                );
            }
        });
    }

    sink.finish(&mut warnings);
    quarantined.sort_by_key(|f| f.index);

    let captured_total: usize = loads.iter().map(|l| l.traces).sum();
    let interrupted = gate.cause().map(|cause| Interruption {
        cause,
        remaining: schedule.len() - resumed - captured_total - quarantined.len(),
    });

    let report = ExecutorReport {
        workers,
        loads,
        wall: started.elapsed(),
        stats,
        retried,
        quarantined,
        resumed,
        peak_resident: 0,
        merge_depth: 0,
        interrupted,
        backend,
        lane_utilization: lane_use.utilization(),
        warnings,
    };
    (traces, report)
}

/// Shape and summation mode of the streaming analysis fold.
#[derive(Debug, Clone)]
pub struct StreamPolicy {
    /// Number of classes (stimulus labels index into this range).
    pub num_classes: usize,
    /// Accumulator summation mode. [`SumMode::Exact`] makes the folded
    /// spectrum bit-identical to the batch path; [`SumMode::Welford`]
    /// is cheaper and bit-stable across worker counts only.
    pub mode: SumMode,
}

/// Any per-run analysis state the streaming executor can accumulate:
/// fold one labelled trace at a time, merge shard states pairwise.
///
/// The spectral pipeline's [`SpectrumAccumulator`] is one
/// implementation; the attack engine folds per-key-guess co-moment
/// state through the same machinery, and composite states fold both in
/// a single pass over the traces. Implementations inherit the
/// executor's full determinism contract: the same schedule folds to the
/// same bits at any worker count (exactly, under an exact-summation
/// state; via the fixed merge tree otherwise).
pub trait FoldState: Merge + Send {
    /// Fold one captured trace under its stimulus label.
    fn fold(&mut self, label: u16, trace: &[f64]);

    /// Depth of the merge tree this state roots (for reporting).
    fn merge_depth(&self) -> usize {
        0
    }
}

impl FoldState for SpectrumAccumulator {
    fn fold(&mut self, label: u16, trace: &[f64]) {
        SpectrumAccumulator::fold(self, usize::from(label), trace);
    }

    fn merge_depth(&self) -> usize {
        SpectrumAccumulator::merge_depth(self)
    }
}

/// A callback observing each chunk-local fold state in schedule order
/// (ascending chunk sequence), before it enters the reduction tree.
/// Used to track prefix trajectories — e.g. the attack engine's key
/// rank as a function of traces seen — without a second pass.
pub type ChunkObserver<'o, S> = &'o mut dyn FnMut(u64, &S);

/// One worker's progress on one chunk of the streaming fold.
struct StreamChunk<S> {
    worker: usize,
    /// Position of this chunk in the schedule's chunk sequence — the
    /// leaf index of the deterministic merge tree.
    seq: u64,
    acc: S,
    /// Newly captured traces, retained only while a checkpoint sink
    /// needs to persist them; empty otherwise.
    raw: Vec<(usize, Vec<f64>)>,
    captured: usize,
    failures: Vec<CaptureFailure>,
    stats: CaptureStats,
    busy: Duration,
    retried: usize,
    lanes: LaneUse,
}

/// Shared read-only context of one streaming fold run.
struct StreamCtx<'a, S> {
    schedule: &'a [Stimulus],
    sampling: &'a SamplingConfig,
    base_seed: u64,
    policy: &'a ExecPolicy,
    /// Constructor for empty chunk-local fold states.
    make: &'a (dyn Fn() -> S + Sync),
    /// Traces completed by a previous run, folded in place of
    /// re-simulation at their schedule position.
    resumed: HashMap<usize, Vec<f64>>,
    /// Whether workers must retain raw traces for the checkpoint sink.
    keep_raw: bool,
    /// Newly captured traces currently resident (shared counter) and
    /// its high-water mark.
    resident: AtomicUsize,
    peak: AtomicUsize,
}

impl<S> StreamCtx<'_, S> {
    fn note_resident(&self) {
        let now = self.resident.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn release_resident(&self, n: usize) {
        if n > 0 {
            self.resident.fetch_sub(n, Ordering::Relaxed);
        }
    }
}

/// Capture `schedule` like [`capture_schedule_with`], but fold every
/// trace into a [`SpectrumAccumulator`] instead of retaining it:
/// memory is `O(classes × samples)` plus `O(workers × CHUNK)` traces in
/// flight, independent of schedule length.
///
/// Each worker folds the chunks it claims into chunk-local accumulators;
/// the caller's thread merges them with a [`TreeReducer`] keyed by chunk
/// position, so the tree shape — and the folded result — depends only on
/// the schedule, never on the worker count or chunk completion order.
/// Quarantined indices fold zero times, a retried index folds exactly
/// once, and resumed traces fold at their schedule position without
/// being re-simulated; newly captured traces still stream to the
/// [`ResumeState`] checkpoint exactly as in the batch path.
///
/// The returned report's [`peak_resident`](ExecutorReport::peak_resident)
/// and [`merge_depth`](ExecutorReport::merge_depth) fields are live in
/// this mode. Note that resumed traces are held in memory for the
/// duration of the run (they arrive as a batch from the checkpoint
/// reader) and are not counted by `peak_resident`, which tracks newly
/// captured traces only.
pub fn fold_schedule_with(
    sim: &Simulator<'_>,
    schedule: &[Stimulus],
    sampling: &SamplingConfig,
    base_seed: u64,
    policy: &ExecPolicy,
    resume: ResumeState<'_>,
    stream: &StreamPolicy,
) -> (SpectrumAccumulator, ExecutorReport) {
    let make = || SpectrumAccumulator::new(stream.num_classes, sampling.samples, stream.mode);
    fold_schedule_into(
        sim, schedule, sampling, base_seed, policy, resume, &make, None,
    )
}

/// Capture `schedule` and fold every trace into a caller-supplied
/// [`FoldState`] — the generic engine behind [`fold_schedule_with`],
/// usable by any streaming consumer (spectral accumulators, the attack
/// engine's co-moment state, or composites folding several analyses in
/// one pass over the traces).
///
/// `make` constructs an empty chunk-local state; the caller's thread
/// merges chunk states with a [`TreeReducer`] keyed by chunk position,
/// so the tree shape — and the folded result — depends only on the
/// schedule, never on the worker count or chunk completion order.
/// Quarantined indices fold zero times, a retried index folds exactly
/// once, and resumed traces fold at their schedule position without
/// being re-simulated (checkpointed refold-on-resume); newly captured
/// traces still stream to the [`ResumeState`] checkpoint exactly as in
/// the batch path.
///
/// `observer` (if any) sees every chunk-local state in ascending chunk
/// order *before* it is merged into the tree, enabling single-pass
/// prefix trajectories; buffering for in-order delivery is bounded by
/// the number of in-flight chunks (≤ workers + channel capacity).
#[allow(clippy::too_many_arguments)]
pub fn fold_schedule_into<S, F>(
    sim: &Simulator<'_>,
    schedule: &[Stimulus],
    sampling: &SamplingConfig,
    base_seed: u64,
    policy: &ExecPolicy,
    resume: ResumeState<'_>,
    make: &F,
    observer: Option<ChunkObserver<'_, S>>,
) -> (S, ExecutorReport)
where
    S: FoldState,
    F: Fn() -> S + Sync,
{
    let workers = resolve_workers(policy.workers).min(schedule.len()).max(1);
    let started = Instant::now();
    let mut warnings = Vec::new();
    let backend = resolve_backend(sim, policy, &mut warnings);

    let mut resumed_map: HashMap<usize, Vec<f64>> = HashMap::new();
    for (index, samples) in resume.completed {
        if index < schedule.len() {
            resumed_map.entry(index).or_insert(samples);
        }
    }
    let resumed = resumed_map.len();
    let keep_raw = resume.checkpoint.is_some();
    let mut sink = CheckpointSink {
        writer: resume.checkpoint,
        sync_every: resume.sync_every,
        since_sync: 0,
        warning: None,
    };

    let ctx = StreamCtx {
        schedule,
        sampling,
        base_seed,
        policy,
        make,
        resumed: resumed_map,
        keep_raw,
        resident: AtomicUsize::new(0),
        peak: AtomicUsize::new(0),
    };

    let mut loads: Vec<WorkerLoad> = (0..workers)
        .map(|_| WorkerLoad {
            traces: 0,
            busy: Duration::ZERO,
        })
        .collect();
    let mut stats = CaptureStats::default();
    let mut retried = 0usize;
    let mut quarantined: Vec<CaptureFailure> = Vec::new();
    let mut lane_use = LaneUse::default();
    let mut tap = OrderedTap {
        reducer: TreeReducer::new(),
        observer,
        next: 0,
        held: BTreeMap::new(),
    };
    let gate = BudgetGate::new(&policy.budget);

    if workers == 1 {
        let mut engine = WorkerEngine::new(sim, backend);
        for claim_start in (0..schedule.len()).step_by(engine.claim()) {
            if gate.should_stop() {
                break;
            }
            let claim_end = (claim_start + engine.claim()).min(schedule.len());
            fold_claim(
                &mut engine,
                &ctx,
                0,
                claim_start..claim_end,
                &mut |result: StreamChunk<S>| {
                    gate.note_captured(result.captured);
                    absorb_stream(
                        result,
                        &ctx,
                        &mut loads,
                        &mut stats,
                        &mut retried,
                        &mut quarantined,
                        &mut lane_use,
                        &mut sink,
                        &mut tap,
                    );
                    true
                },
            );
        }
    } else {
        let cursor = AtomicUsize::new(0);
        // A *bounded* channel: workers block once `workers` chunks are
        // queued, so the number of raw traces in flight — and therefore
        // peak memory — cannot grow with schedule length even if the
        // collector falls behind. (On the bit-sliced backend a worker
        // additionally holds one lane batch of raw traces while it
        // slices the batch into chunks — see `fold_claim_bitsliced`.)
        let (tx, rx) = mpsc::sync_channel::<StreamChunk<S>>(workers);
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let ctx = &ctx;
                let gate = &gate;
                scope.spawn(move || {
                    let mut engine = WorkerEngine::new(sim, backend);
                    loop {
                        if gate.should_stop() {
                            break;
                        }
                        let start = cursor.fetch_add(engine.claim(), Ordering::Relaxed);
                        if start >= ctx.schedule.len() {
                            break;
                        }
                        let end = (start + engine.claim()).min(ctx.schedule.len());
                        let delivered = fold_claim(
                            &mut engine,
                            ctx,
                            worker,
                            start..end,
                            &mut |result: StreamChunk<S>| {
                                gate.note_captured(result.captured);
                                tx.send(result).is_ok()
                            },
                        );
                        if !delivered {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for result in rx {
                absorb_stream(
                    result,
                    &ctx,
                    &mut loads,
                    &mut stats,
                    &mut retried,
                    &mut quarantined,
                    &mut lane_use,
                    &mut sink,
                    &mut tap,
                );
            }
        });
    }

    sink.finish(&mut warnings);
    quarantined.sort_by_key(|f| f.index);

    let captured_total: usize = loads.iter().map(|l| l.traces).sum();
    let interrupted = gate.cause().map(|cause| Interruption {
        cause,
        remaining: schedule.len() - resumed - captured_total - quarantined.len(),
    });

    let acc = tap.finish().unwrap_or_else(make);
    let report = ExecutorReport {
        workers,
        loads,
        wall: started.elapsed(),
        stats,
        retried,
        quarantined,
        resumed,
        peak_resident: ctx.peak.load(Ordering::Relaxed),
        merge_depth: FoldState::merge_depth(&acc),
        interrupted,
        backend,
        lane_utilization: lane_use.utilization(),
        warnings,
    };
    (acc, report)
}

/// Delivers chunk states to the observer in schedule order, then feeds
/// them to the reduction tree. Without an observer this is a
/// pass-through (the [`TreeReducer`] does its own in-order buffering).
struct OrderedTap<'o, S> {
    reducer: TreeReducer<S>,
    observer: Option<ChunkObserver<'o, S>>,
    next: u64,
    held: BTreeMap<u64, S>,
}

impl<S: FoldState> OrderedTap<'_, S> {
    fn push(&mut self, seq: u64, acc: S) {
        match &mut self.observer {
            None => self.reducer.push(seq, acc),
            Some(obs) => {
                let prev = self.held.insert(seq, acc);
                assert!(prev.is_none(), "chunk {seq} pushed twice");
                while let Some(acc) = self.held.remove(&self.next) {
                    obs(self.next, &acc);
                    self.reducer.push(self.next, acc);
                    self.next += 1;
                }
            }
        }
    }

    fn finish(self) -> Option<S> {
        assert!(
            self.held.is_empty(),
            "gap in chunk sequence: chunk {} never pushed",
            self.next
        );
        self.reducer.finish()
    }
}

/// Fold one streamed chunk's outcome into the run accumulators, the
/// checkpoint, and the merge tree.
#[allow(clippy::too_many_arguments)]
fn absorb_stream<S: FoldState>(
    result: StreamChunk<S>,
    ctx: &StreamCtx<'_, S>,
    loads: &mut [WorkerLoad],
    stats: &mut CaptureStats,
    retried: &mut usize,
    quarantined: &mut Vec<CaptureFailure>,
    lane_use: &mut LaneUse,
    sink: &mut CheckpointSink<'_>,
    tap: &mut OrderedTap<'_, S>,
) {
    loads[result.worker].traces += result.captured;
    loads[result.worker].busy += result.busy;
    stats.merge(&result.stats);
    *retried += result.retried;
    quarantined.extend(result.failures);
    lane_use.merge(result.lanes);
    let raw_len = result.raw.len();
    for (index, trace) in result.raw {
        sink.push(index, ctx.schedule[index].label, &trace);
    }
    ctx.release_resident(raw_len);
    tap.push(result.seq, result.acc);
}

/// Fold every index in `range` (resumed, captured, or quarantined) into
/// one chunk-local accumulator, in index order.
fn fold_chunk<S: FoldState>(
    session: &mut CaptureSession<'_>,
    ctx: &StreamCtx<'_, S>,
    worker: usize,
    range: std::ops::Range<usize>,
) -> StreamChunk<S> {
    let seq = (range.start / CHUNK) as u64;
    let mut acc = (ctx.make)();
    let mut raw = Vec::new();
    let mut captured = 0usize;
    let mut failures = Vec::new();
    let mut stats = CaptureStats::default();
    let mut retried = 0usize;
    let t0 = Instant::now();
    for index in range {
        let stimulus = &ctx.schedule[index];
        if let Some(trace) = ctx.resumed.get(&index) {
            acc.fold(stimulus.label, trace);
            continue;
        }
        match capture_index(
            session,
            stimulus,
            ctx.sampling,
            ctx.base_seed,
            index,
            ctx.policy,
        ) {
            Ok((trace, s, attempts)) => {
                stats.merge(&s);
                if attempts > 1 {
                    retried += 1;
                }
                captured += 1;
                ctx.note_resident();
                acc.fold(stimulus.label, &trace);
                if ctx.keep_raw {
                    raw.push((index, trace));
                } else {
                    drop(trace);
                    ctx.release_resident(1);
                }
            }
            Err(failure) => failures.push(failure),
        }
    }
    StreamChunk {
        worker,
        seq,
        acc,
        raw,
        captured,
        failures,
        stats,
        busy: t0.elapsed(),
        retried,
        lanes: LaneUse::default(),
    }
}

/// Fold every index in `range` on the worker's engine, emitting one
/// [`StreamChunk`] per merge-tree leaf the range covers. On the event
/// engine the range *is* one leaf; on the bit-sliced engine one lane
/// batch covers up to `LANES / CHUNK` leaves, emitted in ascending
/// sequence so the reduction tree is identical either way. Returns
/// `false` if `emit` refused a chunk (collector gone — stop claiming).
fn fold_claim<S: FoldState>(
    engine: &mut WorkerEngine<'_>,
    ctx: &StreamCtx<'_, S>,
    worker: usize,
    range: std::ops::Range<usize>,
    emit: &mut dyn FnMut(StreamChunk<S>) -> bool,
) -> bool {
    match &mut engine.batch {
        None => emit(fold_chunk(&mut engine.scalar, ctx, worker, range)),
        Some(batch) => fold_claim_bitsliced(batch, &mut engine.scalar, ctx, worker, range, emit),
    }
}

/// The bit-sliced fold path: one levelized sweep captures every
/// batchable lane in the claim, then the claim is walked in index order
/// and sliced into per-[`FOLD_CHUNK`] leaves, folding resumed traces,
/// batch-captured traces, and scalar-routed indices (validation
/// failures and fault-injected captures, which run on the event session
/// to keep retry/quarantine semantics backend-independent) exactly
/// where the event engine would.
fn fold_claim_bitsliced<S: FoldState>(
    batch: &mut BitslicedSession<'_>,
    scalar: &mut CaptureSession<'_>,
    ctx: &StreamCtx<'_, S>,
    worker: usize,
    range: std::ops::Range<usize>,
    emit: &mut dyn FnMut(StreamChunk<S>) -> bool,
) -> bool {
    let expected = scalar.simulator().netlist().num_inputs();
    let mut t_mark = Instant::now();

    let batchable: Vec<usize> = range
        .clone()
        .filter(|&i| {
            !ctx.resumed.contains_key(&i)
                && !needs_scalar_path(&ctx.schedule[i], expected, i, ctx.policy)
        })
        .collect();
    let mut lanes = LaneUse::default();
    // `None` means the sweep panicked (never expected): every batchable
    // index then degrades to per-index scalar capture below, under the
    // standard retry loop.
    let mut batch_out: Option<(Vec<Vec<f64>>, Vec<CaptureStats>)> = if batchable.is_empty() {
        Some((Vec::new(), Vec::new()))
    } else {
        let lane_stimuli: Vec<LaneStimulus<'_>> = batchable
            .iter()
            .map(|&i| LaneStimulus {
                initial: &ctx.schedule[i].initial,
                final_inputs: &ctx.schedule[i].final_inputs,
                noise_seed: trace_seed(ctx.base_seed, i as u64),
            })
            .collect();
        let swept = panic::catch_unwind(AssertUnwindSafe(|| {
            let (traces, stats) = batch.capture_batch(&lane_stimuli, ctx.sampling);
            (traces.to_vec(), stats.to_vec())
        }))
        .ok();
        if swept.is_some() {
            lanes = LaneUse {
                batches: 1,
                lanes: batchable.len(),
            };
        }
        swept
    };

    let mut next_batch = 0usize;
    let mut chunk_start = range.start;
    while chunk_start < range.end {
        let chunk_end = (chunk_start + CHUNK).min(range.end);
        let seq = (chunk_start / CHUNK) as u64;
        let mut acc = (ctx.make)();
        let mut raw = Vec::new();
        let mut captured = 0usize;
        let mut failures = Vec::new();
        let mut stats = CaptureStats::default();
        let mut retried = 0usize;
        for index in chunk_start..chunk_end {
            let stimulus = &ctx.schedule[index];
            if let Some(trace) = ctx.resumed.get(&index) {
                acc.fold(stimulus.label, trace);
                continue;
            }
            let outcome = if batchable.get(next_batch) == Some(&index) {
                let k = next_batch;
                next_batch += 1;
                match &mut batch_out {
                    Some((traces, batch_stats)) => {
                        Ok((std::mem::take(&mut traces[k]), batch_stats[k], 1))
                    }
                    None => capture_index(
                        scalar,
                        stimulus,
                        ctx.sampling,
                        ctx.base_seed,
                        index,
                        ctx.policy,
                    ),
                }
            } else {
                capture_index(
                    scalar,
                    stimulus,
                    ctx.sampling,
                    ctx.base_seed,
                    index,
                    ctx.policy,
                )
            };
            match outcome {
                Ok((trace, s, attempts)) => {
                    stats.merge(&s);
                    if attempts > 1 {
                        retried += 1;
                    }
                    captured += 1;
                    ctx.note_resident();
                    acc.fold(stimulus.label, &trace);
                    if ctx.keep_raw {
                        raw.push((index, trace));
                    } else {
                        drop(trace);
                        ctx.release_resident(1);
                    }
                }
                Err(failure) => failures.push(failure),
            }
        }
        let busy = t_mark.elapsed();
        t_mark = Instant::now();
        let delivered = emit(StreamChunk {
            worker,
            seq,
            acc,
            raw,
            captured,
            failures,
            stats,
            busy,
            retried,
            lanes: std::mem::take(&mut lanes),
        });
        if !delivered {
            return false;
        }
        chunk_start = chunk_end;
    }
    true
}

/// Fold one chunk's outcome into the run accumulators and the
/// checkpoint.
#[allow(clippy::too_many_arguments)]
fn absorb(
    result: ChunkResult,
    traces: &mut [Vec<f64>],
    loads: &mut [WorkerLoad],
    stats: &mut CaptureStats,
    retried: &mut usize,
    quarantined: &mut Vec<CaptureFailure>,
    lane_use: &mut LaneUse,
    sink: &mut CheckpointSink<'_>,
    schedule: &[Stimulus],
) {
    loads[result.worker].traces += result.captured.len();
    loads[result.worker].busy += result.busy;
    stats.merge(&result.stats);
    *retried += result.retried;
    quarantined.extend(result.failures);
    lane_use.merge(result.lanes);
    for (index, trace) in result.captured {
        sink.push(index, schedule[index].label, &trace);
        traces[index] = trace;
    }
}

/// Capture every non-skipped index in `range` on the worker's engine —
/// [`capture_chunk`] on the event session, [`capture_chunk_bitsliced`]
/// when a batch session is armed.
#[allow(clippy::too_many_arguments)]
fn capture_claim(
    engine: &mut WorkerEngine<'_>,
    schedule: &[Stimulus],
    sampling: &SamplingConfig,
    base_seed: u64,
    policy: &ExecPolicy,
    worker: usize,
    range: std::ops::Range<usize>,
    skip: &HashSet<usize>,
) -> ChunkResult {
    match &mut engine.batch {
        None => capture_chunk(
            &mut engine.scalar,
            schedule,
            sampling,
            base_seed,
            policy,
            worker,
            range,
            skip,
        ),
        Some(batch) => capture_chunk_bitsliced(
            batch,
            &mut engine.scalar,
            schedule,
            sampling,
            base_seed,
            policy,
            worker,
            range,
            skip,
        ),
    }
}

/// The bit-sliced batch path: one levelized sweep captures every
/// batchable lane; validation failures and fault-injected indices are
/// routed to the scalar event session (so quarantine/retry semantics —
/// and the traces a recovered index yields — are backend-independent),
/// and a panicking sweep degrades to per-index scalar capture.
#[allow(clippy::too_many_arguments)]
fn capture_chunk_bitsliced(
    batch: &mut BitslicedSession<'_>,
    scalar: &mut CaptureSession<'_>,
    schedule: &[Stimulus],
    sampling: &SamplingConfig,
    base_seed: u64,
    policy: &ExecPolicy,
    worker: usize,
    range: std::ops::Range<usize>,
    skip: &HashSet<usize>,
) -> ChunkResult {
    let t0 = Instant::now();
    let expected = scalar.simulator().netlist().num_inputs();
    let mut captured = Vec::with_capacity(range.len());
    let mut failures = Vec::new();
    let mut stats = CaptureStats::default();
    let mut retried = 0usize;
    let mut lanes = LaneUse::default();
    let mut scalar_routed: Vec<usize> = Vec::new();
    let mut batchable: Vec<usize> = Vec::new();
    for index in range {
        if skip.contains(&index) {
            continue;
        }
        if needs_scalar_path(&schedule[index], expected, index, policy) {
            scalar_routed.push(index);
        } else {
            batchable.push(index);
        }
    }
    if !batchable.is_empty() {
        let lane_stimuli: Vec<LaneStimulus<'_>> = batchable
            .iter()
            .map(|&i| LaneStimulus {
                initial: &schedule[i].initial,
                final_inputs: &schedule[i].final_inputs,
                noise_seed: trace_seed(base_seed, i as u64),
            })
            .collect();
        let swept = panic::catch_unwind(AssertUnwindSafe(|| {
            let (traces, batch_stats) = batch.capture_batch(&lane_stimuli, sampling);
            (traces.to_vec(), batch_stats.to_vec())
        }))
        .ok();
        match swept {
            Some((traces, batch_stats)) => {
                lanes = LaneUse {
                    batches: 1,
                    lanes: batchable.len(),
                };
                for ((index, trace), s) in batchable.drain(..).zip(traces).zip(batch_stats) {
                    stats.merge(&s);
                    captured.push((index, trace));
                }
            }
            // A panicking sweep (never expected) degrades to per-index
            // scalar capture under the standard retry loop.
            None => scalar_routed.append(&mut batchable),
        }
    }
    for index in scalar_routed {
        match capture_index(scalar, &schedule[index], sampling, base_seed, index, policy) {
            Ok((trace, s, attempts)) => {
                stats.merge(&s);
                if attempts > 1 {
                    retried += 1;
                }
                captured.push((index, trace));
            }
            Err(failure) => failures.push(failure),
        }
    }
    // Checkpoint frames land in index order within a claim, exactly as
    // the event path emits them.
    captured.sort_by_key(|&(i, _)| i);
    ChunkResult {
        worker,
        captured,
        failures,
        stats,
        busy: t0.elapsed(),
        retried,
        lanes,
    }
}

/// Capture every non-skipped index in `range` on the worker's session,
/// retrying failures per `policy` and quarantining indices that keep
/// failing.
#[allow(clippy::too_many_arguments)]
fn capture_chunk(
    session: &mut CaptureSession<'_>,
    schedule: &[Stimulus],
    sampling: &SamplingConfig,
    base_seed: u64,
    policy: &ExecPolicy,
    worker: usize,
    range: std::ops::Range<usize>,
    skip: &HashSet<usize>,
) -> ChunkResult {
    let mut captured = Vec::with_capacity(range.len());
    let mut failures = Vec::new();
    let mut stats = CaptureStats::default();
    let mut retried = 0usize;
    let t0 = Instant::now();
    for index in range {
        if skip.contains(&index) {
            continue;
        }
        match capture_index(
            session,
            &schedule[index],
            sampling,
            base_seed,
            index,
            policy,
        ) {
            Ok((trace, s, attempts)) => {
                stats.merge(&s);
                if attempts > 1 {
                    retried += 1;
                }
                captured.push((index, trace));
            }
            Err(failure) => failures.push(failure),
        }
    }
    ChunkResult {
        worker,
        captured,
        failures,
        stats,
        busy: t0.elapsed(),
        retried,
        lanes: LaneUse::default(),
    }
}

/// Capture one index with panic isolation and bounded, seed-stable
/// retries. Returns the trace, its stats, and how many attempts it took.
fn capture_index(
    session: &mut CaptureSession<'_>,
    stimulus: &Stimulus,
    sampling: &SamplingConfig,
    base_seed: u64,
    index: usize,
    policy: &ExecPolicy,
) -> Result<(Vec<f64>, CaptureStats, u32), CaptureFailure> {
    // A stimulus that cannot fit this simulator fails the same way on
    // every attempt — quarantine immediately with a typed message
    // instead of burning retries on panics.
    if let Err(e) = stimulus.validate(session.simulator().netlist().num_inputs()) {
        return Err(CaptureFailure {
            index,
            attempts: 1,
            message: e.to_string(),
        });
    }
    let attempts = policy.max_retries + 1;
    let mut last = String::new();
    for attempt in 0..attempts {
        // Re-derived fresh each attempt: a retry replays the identical
        // noise stream, so recovery is bit-identical. The session resets
        // its scratch on entry, so a panicked attempt cannot leak state
        // into the retry.
        let seed = trace_seed(base_seed, index as u64);
        let attempt_started = Instant::now();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            policy.faults.maybe_inject_capture(index, attempt);
            if let Some(delay) = policy.faults.capture_delay(index, attempt) {
                std::thread::sleep(delay);
            }
            capture_stimulus_session(session, stimulus, sampling, seed)
        }));
        match outcome {
            Ok((trace, stats)) => {
                // Cooperative watchdog: an attempt that blew past the
                // per-capture budget is discarded and retried rather
                // than silently stretching the run. (A capture stuck in
                // an infinite loop cannot be preempted from safe code;
                // the watchdog bounds *slow* captures, and the retry
                // replays the identical seed so recovery stays
                // bit-identical.)
                if let Some(limit) = policy.capture_timeout {
                    let elapsed = attempt_started.elapsed();
                    if elapsed > limit {
                        last = format!(
                            "watchdog: capture attempt took {}ms (limit {}ms)",
                            elapsed.as_millis(),
                            limit.as_millis()
                        );
                        continue;
                    }
                }
                return Ok((trace, stats, attempt + 1));
            }
            Err(payload) => last = panic_message(payload.as_ref()),
        }
    }
    Err(CaptureFailure {
        index,
        attempts,
        message: last,
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(fault) = payload.downcast_ref::<InjectedFault>() {
        fault.to_string()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "capture panicked with a non-string payload".to_string()
    }
}

/// Streams completed traces to the checkpoint, degrading to a warning
/// (and no further writes) on the first failure.
struct CheckpointSink<'a> {
    writer: Option<&'a mut CheckpointWriter>,
    sync_every: usize,
    since_sync: usize,
    warning: Option<String>,
}

impl CheckpointSink<'_> {
    fn push(&mut self, index: usize, label: u16, samples: &[f64]) {
        let Some(writer) = self.writer.as_deref_mut() else {
            return;
        };
        let outcome = writer.record(index as u32, label, samples).and_then(|()| {
            self.since_sync += 1;
            if self.sync_every > 0 && self.since_sync >= self.sync_every {
                self.since_sync = 0;
                writer.sync()
            } else {
                Ok(())
            }
        });
        if let Err(e) = outcome {
            self.warning = Some(format!(
                "checkpoint write failed ({e}); continuing without checkpoints"
            ));
            self.writer = None;
        }
    }

    fn finish(mut self, warnings: &mut Vec<String>) {
        if let Some(writer) = self.writer.take() {
            if let Err(e) = writer.sync() {
                self.warning = Some(format!("checkpoint final sync failed ({e})"));
            }
        }
        warnings.extend(self.warning.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::resume_checkpoint;
    use acquisition::{classified_schedule, ProtocolConfig};
    use sbox_circuits::{SboxCircuit, Scheme};

    fn small_config() -> ProtocolConfig {
        ProtocolConfig {
            traces_per_class: 4,
            ..ProtocolConfig::default()
        }
    }

    #[test]
    fn any_worker_count_is_bit_identical() {
        let circuit = SboxCircuit::build(Scheme::Rsm);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let (reference, r1) = capture_schedule(&sim, &schedule, &config.sampling, config.seed, 1);
        assert_eq!(r1.workers, 1);
        for workers in [2, 3, 8] {
            let (traces, report) =
                capture_schedule(&sim, &schedule, &config.sampling, config.seed, workers);
            assert_eq!(traces, reference, "{workers} workers");
            assert_eq!(
                report.loads.iter().map(|l| l.traces).sum::<usize>(),
                schedule.len()
            );
            assert_eq!(report.stats, r1.stats, "{workers} workers");
            assert!(report.quarantined.is_empty());
            assert_eq!(report.retried, 0);
            assert_eq!(report.resumed, 0);
        }
    }

    #[test]
    fn worker_resolution_and_utilization_bounds() {
        assert_eq!(resolve_workers(3), 3);
        assert!(resolve_workers(0) >= 1);
        let circuit = SboxCircuit::build(Scheme::Opt);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let (_, report) = capture_schedule(&sim, &schedule, &config.sampling, config.seed, 2);
        let u = report.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
        assert!(report.traces_per_sec() > 0.0);
        assert!(report.stats.events > 0);
    }

    #[test]
    fn bitsliced_backend_is_bit_identical_for_any_worker_count() {
        let circuit = SboxCircuit::build(Scheme::Rsm);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let (reference, event) =
            capture_schedule(&sim, &schedule, &config.sampling, config.seed, 1);
        assert_eq!(event.backend, Backend::Event);
        assert_eq!(event.lane_utilization, None);
        for workers in [1usize, 2, 8] {
            for backend in [Backend::Bitsliced, Backend::Auto] {
                let policy = ExecPolicy {
                    workers,
                    backend,
                    ..ExecPolicy::default()
                };
                let (traces, report) = capture_schedule_with(
                    &sim,
                    &schedule,
                    &config.sampling,
                    config.seed,
                    &policy,
                    ResumeState::fresh(),
                );
                assert_eq!(traces, reference, "{workers} workers / {backend}");
                assert_eq!(report.stats, event.stats, "{workers} workers / {backend}");
                assert_eq!(report.backend, Backend::Bitsliced);
                let util = report.lane_utilization.expect("batch passes ran");
                // 64 traces in LANES-sized batches: one batch, 64 lanes.
                assert!((util - 64.0 / LANES as f64).abs() < 1e-12, "util {util}");
                assert!(report.warnings.is_empty());
            }
        }
    }

    #[test]
    fn bitsliced_fold_is_bit_identical_to_the_event_fold() {
        let circuit = SboxCircuit::build(Scheme::Glut);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let stream = StreamPolicy {
            num_classes: 16,
            mode: SumMode::Exact,
        };
        let (reference, ref_report) = fold_schedule_with(
            &sim,
            &schedule,
            &config.sampling,
            config.seed,
            &ExecPolicy {
                workers: 1,
                ..ExecPolicy::default()
            },
            ResumeState::fresh(),
            &stream,
        );
        for workers in [1usize, 3, 8] {
            let policy = ExecPolicy {
                workers,
                backend: Backend::Bitsliced,
                ..ExecPolicy::default()
            };
            let (acc, report) = fold_schedule_with(
                &sim,
                &schedule,
                &config.sampling,
                config.seed,
                &policy,
                ResumeState::fresh(),
                &stream,
            );
            assert_eq!(
                &acc, &reference,
                "{workers} workers: folded state must be bitwise"
            );
            assert_eq!(report.backend, Backend::Bitsliced);
            assert!(report.lane_utilization.is_some());
            assert_eq!(
                report.merge_depth, ref_report.merge_depth,
                "chunk sequence (and so the merge tree) must match the event path"
            );
        }
    }

    #[test]
    fn unsupported_netlist_falls_back_to_the_event_engine() {
        // A derating factor far below the engine's time resolution
        // drives effective delays under the bitsliced support threshold:
        // commit order is no longer reproducible from levelized
        // evaluation, so the static check must reject the netlist and
        // the executor must route the run to the event engine.
        let circuit = SboxCircuit::build(Scheme::Opt);
        let config = small_config();
        let gates = circuit.netlist().gates().len();
        let derating = gatesim::Derating::from_factors(vec![1e-12; gates], vec![1.0; gates]);
        let sim = Simulator::with_derating(circuit.netlist(), &config.sim, &derating);
        assert!(
            sim.bitsliced_session().is_err(),
            "support check must reject"
        );
        let schedule = classified_schedule(&circuit, &config);
        let (reference, _) = capture_schedule(&sim, &schedule, &config.sampling, config.seed, 1);

        // An explicit bitsliced request degrades loudly…
        let policy = ExecPolicy {
            workers: 2,
            backend: Backend::Bitsliced,
            ..ExecPolicy::default()
        };
        let (traces, report) = capture_schedule_with(
            &sim,
            &schedule,
            &config.sampling,
            config.seed,
            &policy,
            ResumeState::fresh(),
        );
        assert_eq!(traces, reference);
        assert_eq!(report.backend, Backend::Event);
        assert_eq!(report.lane_utilization, None);
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("bitsliced backend unavailable")),
            "{:?}",
            report.warnings
        );

        // …while auto degrades silently.
        let policy = ExecPolicy {
            workers: 2,
            backend: Backend::Auto,
            ..ExecPolicy::default()
        };
        let (traces, report) = capture_schedule_with(
            &sim,
            &schedule,
            &config.sampling,
            config.seed,
            &policy,
            ResumeState::fresh(),
        );
        assert_eq!(traces, reference);
        assert_eq!(report.backend, Backend::Event);
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn bitsliced_faults_route_through_the_scalar_retry_path() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let (reference, _) = capture_schedule(&sim, &schedule, &config.sampling, config.seed, 1);
        for workers in [1usize, 4] {
            let policy = ExecPolicy {
                workers,
                max_retries: 2,
                faults: FaultPlan::none()
                    .with_transient_panics([0, 9, 31])
                    .with_sticky_panics([40]),
                backend: Backend::Bitsliced,
                ..ExecPolicy::default()
            };
            let (traces, report) = capture_schedule_with(
                &sim,
                &schedule,
                &config.sampling,
                config.seed,
                &policy,
                ResumeState::fresh(),
            );
            assert_eq!(report.retried, 3, "{workers} workers");
            assert_eq!(
                report
                    .quarantined
                    .iter()
                    .map(|f| f.index)
                    .collect::<Vec<_>>(),
                vec![40]
            );
            for (i, trace) in traces.iter().enumerate() {
                if i == 40 {
                    assert!(trace.is_empty());
                } else {
                    assert_eq!(*trace, reference[i], "trace {i} ({workers} workers)");
                }
            }
            // Faulted indices were carved out of the batch lanes.
            let util = report.lane_utilization.expect("batch ran");
            assert!((util - 60.0 / LANES as f64).abs() < 1e-12, "util {util}");
        }
    }

    #[test]
    fn transient_faults_are_retried_bit_identically() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let (reference, _) = capture_schedule(&sim, &schedule, &config.sampling, config.seed, 1);
        for workers in [1usize, 4] {
            let policy = ExecPolicy {
                workers,
                max_retries: 2,
                faults: FaultPlan::none().with_transient_panics([0, 9, 31, 63]),
                ..ExecPolicy::default()
            };
            let (traces, report) = capture_schedule_with(
                &sim,
                &schedule,
                &config.sampling,
                config.seed,
                &policy,
                ResumeState::fresh(),
            );
            assert_eq!(traces, reference, "{workers} workers");
            assert_eq!(report.retried, 4, "{workers} workers");
            assert!(report.quarantined.is_empty());
        }
    }

    #[test]
    fn sticky_faults_quarantine_without_losing_the_rest() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let (reference, _) = capture_schedule(&sim, &schedule, &config.sampling, config.seed, 1);
        let policy = ExecPolicy {
            workers: 3,
            max_retries: 1,
            faults: FaultPlan::none().with_sticky_panics([5, 40]),
            ..ExecPolicy::default()
        };
        let (traces, report) = capture_schedule_with(
            &sim,
            &schedule,
            &config.sampling,
            config.seed,
            &policy,
            ResumeState::fresh(),
        );
        assert_eq!(
            report
                .quarantined
                .iter()
                .map(|f| f.index)
                .collect::<Vec<_>>(),
            vec![5, 40]
        );
        assert!(report.quarantined.iter().all(|f| f.attempts == 2));
        assert!(report.quarantined[0].message.contains("injected"));
        for (i, trace) in traces.iter().enumerate() {
            if i == 5 || i == 40 {
                assert!(trace.is_empty(), "quarantined slot must stay empty");
            } else {
                assert_eq!(*trace, reference[i], "surviving trace {i}");
            }
        }
    }

    #[test]
    fn streaming_fold_is_bit_identical_to_batch_at_any_worker_count() {
        let circuit = SboxCircuit::build(Scheme::Isw);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let (traces, _) = capture_schedule(&sim, &schedule, &config.sampling, config.seed, 1);
        let mut set = leakage_core::ClassifiedTraces::new(16, config.sampling.samples);
        for (s, t) in schedule.iter().zip(traces) {
            set.push(usize::from(s.label), t);
        }
        let batch = leakage_core::LeakageSpectrum::from_class_means(&set.class_means());

        let stream = StreamPolicy {
            num_classes: 16,
            mode: SumMode::Exact,
        };
        let mut previous: Option<SpectrumAccumulator> = None;
        for workers in [1usize, 2, 8] {
            let (acc, report) = fold_schedule_with(
                &sim,
                &schedule,
                &config.sampling,
                config.seed,
                &ExecPolicy {
                    workers,
                    ..ExecPolicy::default()
                },
                ResumeState::fresh(),
                &stream,
            );
            assert_eq!(acc.spectrum(), batch, "{workers} workers vs batch");
            assert_eq!(acc.len(), schedule.len() as u64);
            if let Some(prev) = &previous {
                assert_eq!(&acc, prev, "{workers} workers: accumulator drifted");
            }
            assert!(report.merge_depth > 0, "64 traces span multiple chunks");
            previous = Some(acc);
        }
    }

    #[test]
    fn streaming_fold_bounds_resident_traces() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let config = ProtocolConfig {
            traces_per_class: 16, // 256 traces
            ..ProtocolConfig::default()
        };
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let workers = 4usize;
        let (acc, report) = fold_schedule_with(
            &sim,
            &schedule,
            &config.sampling,
            config.seed,
            &ExecPolicy {
                workers,
                ..ExecPolicy::default()
            },
            ResumeState::fresh(),
            &StreamPolicy {
                num_classes: 16,
                mode: SumMode::Welford,
            },
        );
        assert_eq!(acc.len(), 256);
        // Without a checkpoint sink no raw trace outlives its fold: at
        // most one capture per worker is resident at any instant.
        assert!(
            report.peak_resident <= workers,
            "peak resident {} with {workers} workers",
            report.peak_resident
        );
        // Accumulator state is O(classes × samples × log chunks), far
        // below one float per trace sample.
        assert!(
            acc.resident_floats() < schedule.len() * config.sampling.samples,
            "accumulator holds {} floats for {} traces",
            acc.resident_floats(),
            schedule.len()
        );
    }

    #[test]
    fn streaming_fold_quarantines_and_retries_like_batch() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let stream = StreamPolicy {
            num_classes: 16,
            mode: SumMode::Exact,
        };
        // Reference: clean streaming fold minus the sticky indices.
        let (clean, _) = fold_schedule_with(
            &sim,
            &schedule,
            &config.sampling,
            config.seed,
            &ExecPolicy::default(),
            ResumeState::fresh(),
            &stream,
        );
        for workers in [1usize, 3] {
            let policy = ExecPolicy {
                workers,
                max_retries: 2,
                faults: FaultPlan::none()
                    .with_transient_panics([2, 17])
                    .with_sticky_panics([5, 40]),
                ..ExecPolicy::default()
            };
            let (acc, report) = fold_schedule_with(
                &sim,
                &schedule,
                &config.sampling,
                config.seed,
                &policy,
                ResumeState::fresh(),
                &stream,
            );
            assert_eq!(report.retried, 2, "{workers} workers");
            assert_eq!(
                report
                    .quarantined
                    .iter()
                    .map(|f| f.index)
                    .collect::<Vec<_>>(),
                vec![5, 40]
            );
            // Retried indices folded exactly once, quarantined ones not
            // at all: 62 of 64 traces.
            assert_eq!(acc.len(), schedule.len() as u64 - 2, "{workers} workers");
            assert_ne!(acc, clean, "quarantined traces must be absent");
        }
    }

    #[test]
    fn resume_skips_completed_indices_and_checkpoints_new_ones() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let (reference, clean) =
            capture_schedule(&sim, &schedule, &config.sampling, config.seed, 1);

        let path = std::env::temp_dir().join(format!(
            "executor-resume-{}-{:?}.sckp",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let meta = crate::store::StoreMeta {
            kind: crate::store::StoreKind::Classified,
            name: "OPT".into(),
            seed: config.seed,
            age_months: 0.0,
            config_digest: 1,
            class_or_key: 16,
            traces: schedule.len() as u32,
            samples: config.sampling.samples as u32,
        };
        let (_, mut writer) = resume_checkpoint(&path, &meta).expect("ckpt");

        // First 40 indices "already done" by a previous run.
        let completed: Vec<(usize, Vec<f64>)> =
            reference.iter().take(40).cloned().enumerate().collect();
        let (traces, report) = capture_schedule_with(
            &sim,
            &schedule,
            &config.sampling,
            config.seed,
            &ExecPolicy {
                workers: 2,
                ..ExecPolicy::default()
            },
            ResumeState {
                completed,
                checkpoint: Some(&mut writer),
                sync_every: 8,
            },
        );
        assert_eq!(traces, reference, "resumed run must be bit-identical");
        assert_eq!(report.resumed, 40);
        assert!(
            report.stats.events < clean.stats.events,
            "resume must not re-simulate completed indices"
        );
        drop(writer);
        let (records, _) = resume_checkpoint(&path, &meta).expect("reread");
        assert_eq!(
            records.len(),
            schedule.len() - 40,
            "only newly captured indices are checkpointed"
        );
        let mut seen: Vec<u32> = records.iter().map(|r| r.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (40..schedule.len() as u32).collect::<Vec<_>>());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_budget_interrupts_then_resume_is_bit_identical() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let (reference, _) = capture_schedule(&sim, &schedule, &config.sampling, config.seed, 1);

        let path = std::env::temp_dir().join(format!(
            "executor-budget-{}-{:?}.sckp",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let meta = crate::store::StoreMeta {
            kind: crate::store::StoreKind::Classified,
            name: "OPT".into(),
            seed: config.seed,
            age_months: 0.0,
            config_digest: 1,
            class_or_key: 16,
            traces: schedule.len() as u32,
            samples: config.sampling.samples as u32,
        };
        let (_, mut writer) = resume_checkpoint(&path, &meta).expect("ckpt");
        let policy = ExecPolicy {
            workers: 1,
            budget: RunBudget::unlimited().with_max_new_traces(20),
            ..ExecPolicy::default()
        };
        let (_, report) = capture_schedule_with(
            &sim,
            &schedule,
            &config.sampling,
            config.seed,
            &policy,
            ResumeState {
                completed: Vec::new(),
                checkpoint: Some(&mut writer),
                sync_every: 0,
            },
        );
        // One worker claims whole chunks of 16: 16 < 20 keeps going, so
        // the budget trips after the second chunk with 32 captured.
        let interruption = report.interrupted.expect("budget must interrupt");
        assert_eq!(interruption.cause, StopCause::TraceBudget);
        assert_eq!(interruption.remaining, schedule.len() - 32);
        assert_eq!(report.loads.iter().map(|l| l.traces).sum::<usize>(), 32);
        drop(writer);

        // Resume from the interrupted run's checkpoint: the final traces
        // must be bit-identical to an uninterrupted run.
        let (records, mut writer) = resume_checkpoint(&path, &meta).expect("reopen");
        assert_eq!(records.len(), 32);
        let completed = records
            .into_iter()
            .map(|(i, _, t)| (i as usize, t))
            .collect();
        let (traces, report) = capture_schedule_with(
            &sim,
            &schedule,
            &config.sampling,
            config.seed,
            &ExecPolicy::default(),
            ResumeState {
                completed,
                checkpoint: Some(&mut writer),
                sync_every: 0,
            },
        );
        assert!(report.interrupted.is_none());
        assert_eq!(report.resumed, 32);
        assert_eq!(traces, reference, "resumed run must be bit-identical");
        drop(writer);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cancellation_stops_before_any_capture() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let token = CancelToken::new();
        token.cancel();
        for workers in [1usize, 4] {
            let policy = ExecPolicy {
                workers,
                budget: RunBudget::unlimited().with_cancel(token.clone()),
                ..ExecPolicy::default()
            };
            let (traces, report) = capture_schedule_with(
                &sim,
                &schedule,
                &config.sampling,
                config.seed,
                &policy,
                ResumeState::fresh(),
            );
            let interruption = report.interrupted.expect("cancelled run must report it");
            assert_eq!(interruption.cause, StopCause::Cancelled);
            assert_eq!(interruption.remaining, schedule.len());
            assert!(traces.iter().all(|t| t.is_empty()), "{workers} workers");
        }
    }

    #[test]
    fn expired_deadline_interrupts_batch_and_streaming_runs() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let policy = ExecPolicy {
            workers: 2,
            budget: RunBudget::unlimited().with_time_limit(Duration::ZERO),
            ..ExecPolicy::default()
        };
        let (_, report) = capture_schedule_with(
            &sim,
            &schedule,
            &config.sampling,
            config.seed,
            &policy,
            ResumeState::fresh(),
        );
        assert_eq!(
            report.interrupted.map(|i| i.cause),
            Some(StopCause::Deadline)
        );

        let (acc, report) = fold_schedule_with(
            &sim,
            &schedule,
            &config.sampling,
            config.seed,
            &policy,
            ResumeState::fresh(),
            &StreamPolicy {
                num_classes: 16,
                mode: SumMode::Exact,
            },
        );
        assert_eq!(
            report.interrupted.map(|i| i.cause),
            Some(StopCause::Deadline)
        );
        assert_eq!(acc.len(), 0, "no chunk may be claimed past the deadline");
    }

    #[test]
    fn watchdog_retries_slow_captures_bit_identically() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let (reference, _) = capture_schedule(&sim, &schedule, &config.sampling, config.seed, 1);
        // Index 3's first attempt stalls for 400 ms against a 50 ms
        // watchdog; the retry runs at full speed and must reproduce the
        // clean trace exactly.
        let policy = ExecPolicy {
            workers: 1,
            max_retries: 2,
            faults: FaultPlan::none().with_slow_capture(3, 400),
            capture_timeout: Some(Duration::from_millis(50)),
            ..ExecPolicy::default()
        };
        let (traces, report) = capture_schedule_with(
            &sim,
            &schedule,
            &config.sampling,
            config.seed,
            &policy,
            ResumeState::fresh(),
        );
        assert_eq!(traces, reference, "watchdog retry must be bit-identical");
        assert_eq!(report.retried, 1);
        assert!(report.quarantined.is_empty());

        // With retries exhausted the slow index degrades to a typed,
        // quarantined failure instead of wedging the run.
        let policy = ExecPolicy {
            workers: 1,
            max_retries: 0,
            faults: FaultPlan::none().with_slow_capture(3, 400),
            capture_timeout: Some(Duration::from_millis(50)),
            ..ExecPolicy::default()
        };
        let (_, report) = capture_schedule_with(
            &sim,
            &schedule,
            &config.sampling,
            config.seed,
            &policy,
            ResumeState::fresh(),
        );
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].index, 3);
        assert!(
            report.quarantined[0].message.contains("watchdog"),
            "{}",
            report.quarantined[0].message
        );
    }
}
