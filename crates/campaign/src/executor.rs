//! The sharded acquisition executor: a `std::thread` worker pool that
//! captures a stimulus schedule in parallel.
//!
//! Determinism: trace `i`'s value depends only on the (pre-computed)
//! schedule entry `i` and its per-trace seed `trace_seed(base_seed, i)`
//! — never on which worker captured it or when. Workers pull fixed-size
//! index chunks from a shared atomic cursor (dynamic load balancing: the
//! seven netlists differ ~10× in event count per trace) and results are
//! written back by index, so the output is bit-identical for any worker
//! count, including 1.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use acquisition::{capture_stimulus, trace_seed, Stimulus};
use gatesim::{CaptureStats, SamplingConfig, Simulator};

/// Indices are claimed in chunks of this size — small enough to balance
/// the ~10× per-scheme cost spread at 1024 traces, large enough that the
/// atomic cursor never contends.
const CHUNK: usize = 16;

/// What one worker did, for the utilization report.
#[derive(Debug, Clone)]
pub struct WorkerLoad {
    /// Traces this worker captured.
    pub traces: usize,
    /// Wall-clock time this worker spent capturing (not waiting).
    pub busy: Duration,
}

/// Timing and accounting of one executor run.
#[derive(Debug, Clone)]
pub struct ExecutorReport {
    /// Worker count actually used.
    pub workers: usize,
    /// Per-worker load.
    pub loads: Vec<WorkerLoad>,
    /// End-to-end wall time of the parallel section.
    pub wall: Duration,
    /// Aggregated simulator event counters.
    pub stats: CaptureStats,
}

impl ExecutorReport {
    /// Fraction of `workers × wall` spent capturing (1.0 = perfectly
    /// balanced, no idle tails).
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.loads.iter().map(|l| l.busy.as_secs_f64()).sum();
        let capacity = self.wall.as_secs_f64() * self.workers as f64;
        if capacity > 0.0 {
            (busy / capacity).min(1.0)
        } else {
            1.0
        }
    }

    /// Traces captured per second of wall time.
    pub fn traces_per_sec(&self) -> f64 {
        let n: usize = self.loads.iter().map(|l| l.traces).sum();
        if self.wall.as_secs_f64() > 0.0 {
            n as f64 / self.wall.as_secs_f64()
        } else {
            f64::INFINITY
        }
    }
}

/// Resolve a requested worker count: 0 means "all available cores".
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Capture `schedule` with `workers` threads, seeding trace `i`'s
/// measurement noise from `trace_seed(base_seed, i)`.
///
/// Returns the traces in schedule order plus the run report. With
/// `workers == 1` everything runs inline on the caller's thread (no pool
/// overhead), which also serves as the reference for the determinism
/// guarantee.
pub fn capture_schedule(
    sim: &Simulator<'_>,
    schedule: &[Stimulus],
    sampling: &SamplingConfig,
    base_seed: u64,
    workers: usize,
) -> (Vec<Vec<f64>>, ExecutorReport) {
    let workers = resolve_workers(workers).min(schedule.len()).max(1);
    let started = Instant::now();

    if workers == 1 {
        let mut stats = CaptureStats::default();
        let busy_start = Instant::now();
        let traces: Vec<Vec<f64>> = schedule
            .iter()
            .enumerate()
            .map(|(i, stimulus)| {
                let (trace, s) =
                    capture_stimulus(sim, stimulus, sampling, trace_seed(base_seed, i as u64));
                stats.merge(&s);
                trace
            })
            .collect();
        let busy = busy_start.elapsed();
        let report = ExecutorReport {
            workers: 1,
            loads: vec![WorkerLoad {
                traces: schedule.len(),
                busy,
            }],
            wall: started.elapsed(),
            stats,
        };
        return (traces, report);
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Vec<(usize, Vec<f64>)>, CaptureStats, Duration)>();

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            scope.spawn(move || {
                let mut captured: Vec<(usize, Vec<f64>)> = Vec::new();
                let mut stats = CaptureStats::default();
                let mut busy = Duration::ZERO;
                loop {
                    let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= schedule.len() {
                        break;
                    }
                    let end = (start + CHUNK).min(schedule.len());
                    let t0 = Instant::now();
                    for (i, stimulus) in schedule[start..end].iter().enumerate() {
                        let index = start + i;
                        let (trace, s) = capture_stimulus(
                            sim,
                            stimulus,
                            sampling,
                            trace_seed(base_seed, index as u64),
                        );
                        stats.merge(&s);
                        captured.push((index, trace));
                    }
                    busy += t0.elapsed();
                }
                // The receiver outlives the scope; a send can only fail if
                // the parent panicked, in which case the scope unwinds
                // anyway.
                let _ = tx.send((worker, captured, stats, busy));
            });
        }
        drop(tx);
    });

    let mut traces: Vec<Vec<f64>> = vec![Vec::new(); schedule.len()];
    let mut loads: Vec<WorkerLoad> = (0..workers)
        .map(|_| WorkerLoad {
            traces: 0,
            busy: Duration::ZERO,
        })
        .collect();
    let mut stats = CaptureStats::default();
    for (worker, captured, worker_stats, busy) in rx {
        loads[worker].traces = captured.len();
        loads[worker].busy = busy;
        stats.merge(&worker_stats);
        for (index, trace) in captured {
            traces[index] = trace;
        }
    }

    let report = ExecutorReport {
        workers,
        loads,
        wall: started.elapsed(),
        stats,
    };
    (traces, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acquisition::{classified_schedule, ProtocolConfig};
    use sbox_circuits::{SboxCircuit, Scheme};

    fn small_config() -> ProtocolConfig {
        ProtocolConfig {
            traces_per_class: 4,
            ..ProtocolConfig::default()
        }
    }

    #[test]
    fn any_worker_count_is_bit_identical() {
        let circuit = SboxCircuit::build(Scheme::Rsm);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let (reference, r1) = capture_schedule(&sim, &schedule, &config.sampling, config.seed, 1);
        assert_eq!(r1.workers, 1);
        for workers in [2, 3, 8] {
            let (traces, report) =
                capture_schedule(&sim, &schedule, &config.sampling, config.seed, workers);
            assert_eq!(traces, reference, "{workers} workers");
            assert_eq!(
                report.loads.iter().map(|l| l.traces).sum::<usize>(),
                schedule.len()
            );
            assert_eq!(report.stats, r1.stats, "{workers} workers");
        }
    }

    #[test]
    fn worker_resolution_and_utilization_bounds() {
        assert_eq!(resolve_workers(3), 3);
        assert!(resolve_workers(0) >= 1);
        let circuit = SboxCircuit::build(Scheme::Opt);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let (_, report) = capture_schedule(&sim, &schedule, &config.sampling, config.seed, 2);
        let u = report.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
        assert!(report.traces_per_sec() > 0.0);
        assert!(report.stats.events > 0);
    }
}
