//! Content-addressed caching of acquired trace sets.
//!
//! A campaign is identified by everything that determines its traces:
//! the implementation, the protocol seed and trace budget, the device
//! age, and a digest of the full power-model / sampling / aging
//! configuration. Two runs with the same [`CampaignKey`] are guaranteed
//! to produce bit-identical traces, so the second one can read the first
//! one's store file instead of simulating — which collapses the
//! fig6 → fig7 → fig8 → metrics pipeline from O(runs × acquisitions) to
//! O(distinct acquisitions).
//!
//! Hits are verified, not trusted: the store header's seed, name, age,
//! and config digest must all match the key (a digest collision or a
//! hand-edited file therefore falls back to a miss), and the checksummed
//! read catches truncation and corruption, also degrading to a miss.

use std::path::{Path, PathBuf};

use acquisition::ProtocolConfig;
use aging::AgingConditions;

use crate::digest::Digest;
use crate::store::{StoreKind, StoreMeta, StoreReader};

/// Whether a campaign consults and/or populates the on-disk store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Read hits, write misses (the default).
    #[default]
    ReadWrite,
    /// Always acquire, but still persist the result (refreshes stale
    /// stores in place).
    WriteOnly,
    /// Never touch the disk (unit tests, determinism checks).
    Off,
}

/// The identity of one acquisition, sufficient to reproduce it bit for
/// bit.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignKey {
    /// Protocol kind (leakage classes vs CPA).
    pub kind: StoreKind,
    /// Implementation label, e.g. `"ISW"`.
    pub implementation: String,
    /// Protocol seed.
    pub seed: u64,
    /// Total trace count.
    pub traces: u32,
    /// Samples per trace.
    pub samples: u32,
    /// Device age in months.
    pub age_months: f64,
    /// Classified: number of classes. CPA: the secret key nibble.
    pub class_or_key: u16,
    /// Digest of the power-model, sampling, and aging configuration.
    pub config_digest: u64,
}

impl CampaignKey {
    /// Collapse the key into one address (the store file's identity).
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.u64(match self.kind {
            StoreKind::Classified => 0,
            StoreKind::Cpa => 1,
        })
        .str(&self.implementation)
        .u64(self.seed)
        .u64(u64::from(self.traces))
        .u64(u64::from(self.samples))
        .f64(self.age_months)
        .u64(u64::from(self.class_or_key))
        .u64(self.config_digest);
        d.finish()
    }

    /// The store file name for this key (human-greppable prefix plus the
    /// content address).
    pub fn file_name(&self) -> String {
        let slug: String = self
            .implementation
            .to_lowercase()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!(
            "{slug}-age{:03}-{:016x}.sctr",
            self.age_months as u32,
            self.digest()
        )
    }

    /// The header this key expects to find in a matching store.
    pub fn expected_meta(&self) -> StoreMeta {
        StoreMeta {
            kind: self.kind,
            name: self.implementation.clone(),
            seed: self.seed,
            age_months: self.age_months,
            config_digest: self.config_digest,
            class_or_key: self.class_or_key,
            traces: self.traces,
            samples: self.samples,
        }
    }
}

/// Digest every configuration field that influences trace values.
///
/// Includes the store-format version implicitly through the key's file
/// (the reader refuses other versions) and the simulator seed, since
/// process variation is part of the modelled die.
pub fn config_digest(protocol: &ProtocolConfig, conditions: &AgingConditions) -> u64 {
    let mut d = Digest::new();
    let sim = &protocol.sim;
    d.f64(sim.vdd_v)
        .f64(sim.temperature_c)
        .f64(sim.process_sigma)
        .u64(sim.seed)
        .f64(sim.absorbed_energy_fraction)
        .f64(sim.pulse_width_factor)
        .f64(sim.noise_mw)
        .f64(protocol.sampling.window_ps)
        .u64(protocol.sampling.samples as u64)
        .f64(conditions.vdd_v)
        .f64(conditions.temperature_c)
        .f64(conditions.clock_mhz)
        .f64(conditions.vth0_v)
        .f64(conditions.alpha);
    d.finish()
}

/// The on-disk cache: a directory of `SCTR` stores addressed by
/// [`CampaignKey::file_name`].
#[derive(Debug, Clone)]
pub struct TraceCache {
    dir: PathBuf,
    mode: CacheMode,
}

impl TraceCache {
    /// A cache rooted at `dir` (created lazily on first write).
    pub fn new(dir: impl Into<PathBuf>, mode: CacheMode) -> Self {
        Self {
            dir: dir.into(),
            mode,
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The mode in force.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Whether lookups may return hits.
    pub fn reads_enabled(&self) -> bool {
        matches!(self.mode, CacheMode::ReadWrite)
    }

    /// Whether acquisitions should be persisted.
    pub fn writes_enabled(&self) -> bool {
        !matches!(self.mode, CacheMode::Off)
    }

    /// The store path a key maps to.
    pub fn path_for(&self, key: &CampaignKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// The `SCKP` checkpoint path a key maps to: the store path plus a
    /// `.ckpt` suffix, so an interrupted acquisition never shadows a
    /// finished store.
    pub fn checkpoint_path(&self, key: &CampaignKey) -> PathBuf {
        let mut name = key.file_name();
        name.push_str(".ckpt");
        self.dir.join(name)
    }

    /// Open the store for `key` if it exists and its header matches the
    /// key exactly. Corrupt or mismatched stores degrade to `None` (the
    /// caller re-acquires and overwrites).
    pub fn lookup(&self, key: &CampaignKey) -> Option<StoreReader> {
        if !self.reads_enabled() {
            return None;
        }
        let path = self.path_for(key);
        if !path.exists() {
            return None;
        }
        match StoreReader::open(&path) {
            Ok(reader) if *reader.meta() == key.expected_meta() => Some(reader),
            Ok(reader) => {
                eprintln!(
                    "campaign cache: {} exists but its header does not match the key \
                     (stored {:?}); re-acquiring",
                    path.display(),
                    reader.meta()
                );
                None
            }
            Err(e) => {
                eprintln!(
                    "campaign cache: {} unreadable ({e}); re-acquiring",
                    path.display()
                );
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreWriter;

    fn key() -> CampaignKey {
        CampaignKey {
            kind: StoreKind::Classified,
            implementation: "RSM-ROM".into(),
            seed: 0xD47E_2022,
            traces: 2,
            samples: 3,
            age_months: 0.0,
            class_or_key: 16,
            config_digest: 77,
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sctr-cache-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn key_digest_separates_every_field() {
        let base = key();
        let mutations: Vec<CampaignKey> = vec![
            CampaignKey {
                seed: 1,
                ..base.clone()
            },
            CampaignKey {
                traces: 3,
                ..base.clone()
            },
            CampaignKey {
                samples: 4,
                ..base.clone()
            },
            CampaignKey {
                age_months: 12.0,
                ..base.clone()
            },
            CampaignKey {
                config_digest: 78,
                ..base.clone()
            },
            CampaignKey {
                implementation: "ISW".into(),
                ..base.clone()
            },
            CampaignKey {
                kind: StoreKind::Cpa,
                ..base.clone()
            },
            CampaignKey {
                class_or_key: 5,
                ..base.clone()
            },
        ];
        for m in mutations {
            assert_ne!(m.digest(), base.digest(), "{m:?}");
        }
        assert_eq!(key().digest(), base.digest());
    }

    #[test]
    fn file_names_are_filesystem_safe() {
        let name = key().file_name();
        assert!(name.starts_with("rsm_rom-age000-"));
        assert!(name.ends_with(".sctr"));
        assert!(name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.'));
    }

    #[test]
    fn lookup_misses_then_hits_then_rejects_mismatch() {
        let dir = tmp_dir("lookup");
        let cache = TraceCache::new(&dir, CacheMode::ReadWrite);
        let k = key();
        assert!(cache.lookup(&k).is_none(), "empty cache must miss");

        let mut w = StoreWriter::create(&cache.path_for(&k), k.expected_meta()).expect("create");
        w.record(0, &[1.0, 2.0, 3.0]).expect("r");
        w.record(1, &[4.0, 5.0, 6.0]).expect("r");
        w.finish().expect("finish");
        assert!(cache.lookup(&k).is_some(), "must hit after write");

        // A key whose fields changed but which we force onto the same path
        // must be rejected by header verification.
        let stale = CampaignKey {
            seed: 999,
            ..k.clone()
        };
        std::fs::rename(cache.path_for(&k), cache.path_for(&stale)).expect("rename");
        assert!(cache.lookup(&stale).is_none(), "header mismatch must miss");

        let off = TraceCache::new(&dir, CacheMode::Off);
        assert!(off.lookup(&k).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_digest_tracks_power_model_fields() {
        let p = ProtocolConfig::default();
        let c = AgingConditions::default();
        let base = config_digest(&p, &c);
        let mut p2 = p.clone();
        p2.sim.noise_mw = 0.5;
        assert_ne!(config_digest(&p2, &c), base);
        let mut p3 = p.clone();
        p3.sampling.samples = 50;
        assert_ne!(config_digest(&p3, &c), base);
        let mut c2 = c.clone();
        c2.clock_mhz = 100.0;
        assert_ne!(config_digest(&p, &c2), base);
        assert_eq!(config_digest(&p, &c), base);
    }
}
