//! The campaign error hierarchy.
//!
//! Campaign hot paths never unwind past the executor and never abort a
//! sweep on a persistence problem: capture failures are retried, then
//! quarantined into the run report; store, cache, and report-log
//! failures degrade to a warning plus re-acquisition (the figures are
//! the primary artifact). `CampaignError` is the typed currency those
//! paths use internally and that fallible public APIs expose.

use std::fmt;
use std::io;

use crate::store::StoreError;

/// Anything that can go wrong inside a campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// Reading or writing an `SCTR` store or `SCKP` checkpoint failed.
    Store(StoreError),
    /// Appending to the run log (`campaign_runs.jsonl`) failed.
    Report(io::Error),
    /// A trace's capture kept failing after every allowed retry and was
    /// quarantined.
    Capture {
        /// The schedule index that could not be captured.
        index: usize,
        /// Capture attempts made (1 + retries).
        attempts: u32,
        /// The final failure's panic/ error message.
        message: String,
    },
    /// A run completed but had to quarantine trace indices, so the
    /// resulting set is incomplete.
    Incomplete {
        /// Quarantined schedule indices, ascending.
        quarantined: Vec<usize>,
        /// Total traces the schedule asked for.
        scheduled: usize,
    },
    /// A configuration value (usually from the environment) could not be
    /// interpreted.
    Config {
        /// The configuration knob, e.g. `"SCA_WORKERS"`.
        name: String,
        /// The value that failed to parse.
        value: String,
    },
    /// A run budget expired (deadline, trace cap, or cancellation)
    /// before the schedule finished; the completed prefix is in the
    /// checkpoint and a re-run resumes bit-identically.
    Interrupted {
        /// Why the run stopped, e.g. `"deadline expired"`.
        cause: String,
        /// Schedule indices not captured before the stop.
        remaining: usize,
        /// Total traces the schedule asked for.
        scheduled: usize,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Store(e) => write!(f, "{e}"),
            CampaignError::Report(e) => write!(f, "campaign run-log error: {e}"),
            CampaignError::Capture {
                index,
                attempts,
                message,
            } => write!(
                f,
                "capture of trace {index} failed {attempts} time(s): {message}"
            ),
            CampaignError::Incomplete {
                quarantined,
                scheduled,
            } => write!(
                f,
                "campaign quarantined {} of {scheduled} trace(s): {quarantined:?}",
                quarantined.len()
            ),
            CampaignError::Config { name, value } => {
                write!(f, "cannot interpret {name}={value:?}")
            }
            CampaignError::Interrupted {
                cause,
                remaining,
                scheduled,
            } => write!(
                f,
                "run interrupted ({cause}) with {remaining} of {scheduled} trace(s) \
                 uncaptured; resume from the checkpoint to finish bit-identically"
            ),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Store(e) => Some(e),
            CampaignError::Report(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for CampaignError {
    fn from(e: StoreError) -> Self {
        CampaignError::Store(e)
    }
}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Report(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_self_describing() {
        let e = CampaignError::Capture {
            index: 17,
            attempts: 3,
            message: "injected".into(),
        };
        assert!(e.to_string().contains("trace 17"));
        assert!(e.to_string().contains("3 time(s)"));

        let e = CampaignError::Incomplete {
            quarantined: vec![4, 9],
            scheduled: 32,
        };
        assert!(e.to_string().contains("2 of 32"));

        let e = CampaignError::Config {
            name: "SCA_WORKERS".into(),
            value: "banana".into(),
        };
        assert!(e.to_string().contains("SCA_WORKERS"));
        assert!(e.to_string().contains("banana"));

        let e = CampaignError::Interrupted {
            cause: "deadline expired".into(),
            remaining: 12,
            scheduled: 64,
        };
        assert!(e.to_string().contains("deadline expired"));
        assert!(e.to_string().contains("12 of 64"));
    }

    #[test]
    fn sources_chain_through_store_and_io() {
        use std::error::Error as _;
        let e: CampaignError = StoreError::Format("bad magic".into()).into();
        assert!(e.source().expect("source").to_string().contains("magic"));
        let e: CampaignError = io::Error::other("disk full").into();
        assert!(e.source().is_some());
    }
}
