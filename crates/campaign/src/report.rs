//! Run observability: per-stage wall-clock timings, simulator event
//! counts, cache hit/miss counters, and worker utilization — printed as
//! a summary table and appended as JSON lines to
//! `results/campaign_runs.jsonl` so the repository accumulates a
//! performance trajectory across sessions.

use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

use acquisition::Backend;
use gatesim::CaptureStats;

use crate::iofault::WriteFaults;
use crate::store::write_atomic_with;

/// A named wall-clock span within one campaign run.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage name (`build`, `age`, `acquire`, `analyze`, `store`, …).
    pub name: &'static str,
    /// Elapsed wall time.
    pub elapsed: Duration,
}

/// Times stages by construction order; hand it back to the report.
#[derive(Debug)]
pub struct StageTimer {
    stages: Vec<Stage>,
    current: Option<(&'static str, Instant)>,
}

impl Default for StageTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl StageTimer {
    /// An empty timer.
    pub fn new() -> Self {
        Self {
            stages: Vec::new(),
            current: None,
        }
    }

    /// Close the running stage (if any) and open a new one.
    pub fn stage(&mut self, name: &'static str) {
        self.close();
        self.current = Some((name, Instant::now()));
    }

    /// Close the running stage and return everything recorded.
    pub fn finish(mut self) -> Vec<Stage> {
        self.close();
        self.stages
    }

    fn close(&mut self) {
        if let Some((name, start)) = self.current.take() {
            self.stages.push(Stage {
                name,
                elapsed: start.elapsed(),
            });
        }
    }
}

/// The record of one campaign acquisition (one `(implementation, age)`
/// cell), whether served from cache or simulated.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Implementation label, e.g. `"ISW"`.
    pub implementation: String,
    /// Device age in months.
    pub age_months: f64,
    /// Total traces in the set.
    pub traces: usize,
    /// Worker threads used (1 when served from cache).
    pub workers: usize,
    /// Whether the set was read from the store instead of simulated.
    pub cache_hit: bool,
    /// Aggregated simulator event counters (all zero on a cache hit).
    pub stats: CaptureStats,
    /// Fraction of `workers × acquire-wall` spent capturing.
    pub worker_utilization: f64,
    /// Per-stage timings, in execution order.
    pub stages: Vec<Stage>,
    /// Trace indices that failed at least once but were recovered by a
    /// seed-stable retry.
    pub retried: usize,
    /// Trace indices that failed every allowed attempt and were dropped
    /// from the set.
    pub quarantined: usize,
    /// Traces served from a previous run's checkpoint instead of
    /// simulated.
    pub resumed: usize,
    /// Whether this run streamed traces through online accumulators
    /// instead of materializing the set.
    pub streamed: bool,
    /// Peak number of newly captured traces resident in memory at once
    /// (0 for batch runs, which retain everything by design).
    pub peak_resident: usize,
    /// Merge depth of the final streaming accumulator (0 for batch
    /// runs).
    pub merge_depth: usize,
    /// Records this run healed (re-captured seed-stably by a scrub pass;
    /// 0 for ordinary acquisitions).
    pub healed: usize,
    /// The capture engine that ran (`None` on a cache hit, where no
    /// engine ran at all). [`Backend::Auto`] never appears: the request
    /// resolves to the effective engine before capture starts.
    pub backend: Option<Backend>,
    /// Fraction of bit-sliced lane slots that carried real stimuli
    /// (`None` on the event engine and on cache hits; `< 1.0` when
    /// `traces % LANES` leaves a partial final batch or faulted indices
    /// were routed to the scalar path).
    pub lane_utilization: Option<f64>,
    /// `Some(cause)` when the run budget stopped this run early, e.g.
    /// `"deadline expired"`.
    pub partial: Option<String>,
    /// Non-fatal degradations (store/cache/checkpoint/report write
    /// failures that the run survived).
    pub warnings: Vec<String>,
}

impl RunReport {
    /// Total wall time across all stages.
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.elapsed.as_secs_f64()).sum()
    }

    /// Wall time of one stage (0.0 if absent).
    pub fn stage_seconds(&self, name: &str) -> f64 {
        // Folded from +0.0 explicitly: an empty `Iterator::<f64>::sum()`
        // yields -0.0, which prints as "-0.000" in the summary table.
        self.stages
            .iter()
            .filter(|s| s.name == name)
            .fold(0.0, |acc, s| acc + s.elapsed.as_secs_f64())
    }

    /// Traces per second of acquire-stage wall time (`None` when served
    /// from cache or the stage is missing).
    pub fn acquire_throughput(&self) -> Option<f64> {
        let secs = self.stage_seconds("acquire");
        (!self.cache_hit && secs > 0.0).then(|| self.traces as f64 / secs)
    }

    /// Simulator events per second of acquire-stage wall time (`None`
    /// when served from cache or the stage is missing) — the
    /// scheme-independent measure of engine throughput, since the seven
    /// netlists differ ~10× in events per trace.
    pub fn event_throughput(&self) -> Option<f64> {
        let secs = self.stage_seconds("acquire");
        (!self.cache_hit && secs > 0.0).then(|| self.stats.events as f64 / secs)
    }

    /// Serialize as one JSON object (hand-rolled: the environment has no
    /// serde, and the schema is flat).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        let _ = write!(s, "\"implementation\":{}", json_str(&self.implementation));
        let _ = write!(s, ",\"age_months\":{}", json_f64(self.age_months));
        let _ = write!(s, ",\"traces\":{}", self.traces);
        let _ = write!(s, ",\"workers\":{}", self.workers);
        let _ = write!(s, ",\"cache_hit\":{}", self.cache_hit);
        let _ = write!(s, ",\"sim_events\":{}", self.stats.events);
        let _ = write!(s, ",\"full_transitions\":{}", self.stats.full_transitions);
        let _ = write!(s, ",\"absorbed_glitches\":{}", self.stats.absorbed_glitches);
        let _ = write!(
            s,
            ",\"worker_utilization\":{}",
            json_f64(self.worker_utilization)
        );
        let _ = write!(s, ",\"total_seconds\":{}", json_f64(self.total_seconds()));
        let _ = write!(
            s,
            ",\"traces_per_sec\":{}",
            self.acquire_throughput().map_or("null".into(), json_f64)
        );
        let _ = write!(
            s,
            ",\"events_per_sec\":{}",
            self.event_throughput().map_or("null".into(), json_f64)
        );
        let _ = write!(s, ",\"retried\":{}", self.retried);
        let _ = write!(s, ",\"quarantined\":{}", self.quarantined);
        let _ = write!(s, ",\"resumed\":{}", self.resumed);
        let _ = write!(s, ",\"streamed\":{}", self.streamed);
        let _ = write!(s, ",\"peak_resident_traces\":{}", self.peak_resident);
        let _ = write!(s, ",\"merge_depth\":{}", self.merge_depth);
        let _ = write!(s, ",\"healed\":{}", self.healed);
        let _ = write!(
            s,
            ",\"backend\":{}",
            self.backend.map_or("null".into(), |b| json_str(b.as_str()))
        );
        let _ = write!(
            s,
            ",\"lane_utilization\":{}",
            self.lane_utilization.map_or("null".into(), json_f64)
        );
        let _ = write!(
            s,
            ",\"partial\":{}",
            self.partial.as_deref().map_or("null".into(), json_str)
        );
        s.push_str(",\"warnings\":[");
        for (i, w) in self.warnings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json_str(w));
        }
        s.push(']');
        s.push_str(",\"stages\":{");
        for (i, stage) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{}",
                json_str(stage.name),
                json_f64(stage.elapsed.as_secs_f64())
            );
        }
        s.push_str("}}");
        s
    }
}

/// Accumulates every run of one campaign session: cache counters, the
/// summary table, and the JSONL sink.
#[derive(Debug, Default)]
pub struct RunLog {
    reports: Vec<RunReport>,
}

impl RunLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one run.
    pub fn push(&mut self, report: RunReport) {
        self.reports.push(report);
    }

    /// All runs so far.
    pub fn reports(&self) -> &[RunReport] {
        &self.reports
    }

    /// Cache hits so far.
    pub fn cache_hits(&self) -> usize {
        self.reports.iter().filter(|r| r.cache_hit).count()
    }

    /// Cache misses (i.e. real acquisitions) so far.
    pub fn cache_misses(&self) -> usize {
        self.reports.len() - self.cache_hits()
    }

    /// Append every run as one JSON line each; the file accumulates
    /// across sessions. Returns how many lines were written.
    ///
    /// Durable and atomic: the existing log plus the new lines are
    /// staged to a temp file, fsynced, and renamed over the log, so a
    /// crash mid-write can neither tear an existing record nor leave a
    /// half-written line. Callers treat a returned error as a warning —
    /// a broken run log never aborts a campaign.
    pub fn append_jsonl(&self, path: &Path) -> std::io::Result<usize> {
        self.append_jsonl_with(path, WriteFaults::none())
    }

    /// [`RunLog::append_jsonl`] with injected write faults (the chaos
    /// harness's `enospc@N` / `eio%RATE` route through here).
    pub fn append_jsonl_with(&self, path: &Path, faults: WriteFaults) -> std::io::Result<usize> {
        if self.reports.is_empty() {
            return Ok(0);
        }
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut contents = std::fs::read(path).unwrap_or_default();
        for r in &self.reports {
            contents.extend_from_slice(r.to_json().as_bytes());
            contents.push(b'\n');
        }
        write_atomic_with(path, &contents, faults)?;
        Ok(self.reports.len())
    }

    /// The human summary: one row per run plus the cache totals.
    pub fn summary_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<9} {:>4} {:>7} {:>4} {:>6} {:>9} {:>5} {:>10} {:>6} {:>5} {:>5} {:>5} {:>5} {:>9} {:>9} {:>8} {:>10} partial",
            "impl",
            "age",
            "traces",
            "wrk",
            "cache",
            "engine",
            "lane",
            "events",
            "util",
            "rtry",
            "quar",
            "rsmd",
            "heal",
            "acq(s)",
            "total(s)",
            "tr/s",
            "ev/s",
        );
        for r in &self.reports {
            let _ = writeln!(
                s,
                "{:<9} {:>4.0} {:>7} {:>4} {:>6} {:>9} {:>5} {:>10} {:>6.2} {:>5} {:>5} {:>5} {:>5} {:>9.3} {:>9.3} {:>8} {:>10} {}",
                r.implementation,
                r.age_months,
                r.traces,
                r.workers,
                if r.cache_hit { "hit" } else { "miss" },
                r.backend.map_or("-", |b| b.as_str()),
                r.lane_utilization
                    .map_or_else(|| "-".into(), |u| format!("{u:.2}")),
                r.stats.events,
                r.worker_utilization,
                r.retried,
                r.quarantined,
                r.resumed,
                r.healed,
                r.stage_seconds("acquire"),
                r.total_seconds(),
                r.acquire_throughput()
                    .map_or_else(|| "-".into(), |t| format!("{t:.0}")),
                r.event_throughput()
                    .map_or_else(|| "-".into(), |t| format!("{t:.0}")),
                r.partial.as_deref().unwrap_or("-"),
            );
        }
        let _ = writeln!(
            s,
            "cache: {} hits / {} misses over {} runs",
            self.cache_hits(),
            self.cache_misses(),
            self.reports.len()
        );
        for r in &self.reports {
            for w in &r.warnings {
                let _ = writeln!(
                    s,
                    "warning: {} age {:.0}: {w}",
                    r.implementation, r.age_months
                );
            }
        }
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Inf/NaN; null is the conventional degradation.
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(hit: bool) -> RunReport {
        RunReport {
            implementation: "ISW".into(),
            age_months: 12.0,
            traces: 64,
            workers: 4,
            cache_hit: hit,
            stats: CaptureStats {
                events: if hit { 0 } else { 4242 },
                full_transitions: if hit { 0 } else { 4000 },
                absorbed_glitches: if hit { 0 } else { 242 },
                settle_time_ps: 900.0,
            },
            worker_utilization: 0.93,
            stages: vec![
                Stage {
                    name: "build",
                    elapsed: Duration::from_millis(5),
                },
                Stage {
                    name: "acquire",
                    elapsed: Duration::from_millis(120),
                },
            ],
            retried: if hit { 0 } else { 1 },
            quarantined: 0,
            resumed: 0,
            streamed: false,
            peak_resident: 0,
            merge_depth: 0,
            healed: 0,
            backend: (!hit).then_some(Backend::Event),
            lane_utilization: None,
            partial: None,
            warnings: Vec::new(),
        }
    }

    #[test]
    fn missing_stage_is_positive_zero_seconds() {
        let secs = report(false).stage_seconds("no-such-stage");
        assert_eq!(secs, 0.0);
        assert!(secs.is_sign_positive(), "must not print as -0.000");
    }

    #[test]
    fn json_lines_are_flat_and_parseable_by_eye() {
        let j = report(false).to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for field in [
            "\"implementation\":\"ISW\"",
            "\"age_months\":12",
            "\"workers\":4",
            "\"cache_hit\":false",
            "\"sim_events\":4242",
            "\"retried\":1",
            "\"quarantined\":0",
            "\"resumed\":0",
            "\"streamed\":false",
            "\"peak_resident_traces\":0",
            "\"merge_depth\":0",
            "\"healed\":0",
            "\"backend\":\"event\"",
            "\"lane_utilization\":null",
            "\"partial\":null",
            "\"warnings\":[]",
            "\"stages\":{\"build\":",
        ] {
            assert!(j.contains(field), "{field} missing from {j}");
        }
        assert!(!j.contains('\n'));

        let mut warned = report(false);
        warned
            .warnings
            .push("store write failed: \"disk full\"".into());
        let j = warned.to_json();
        assert!(j.contains("\"warnings\":[\"store write failed: \\\"disk full\\\"\"]"));
        let table = {
            let mut log = RunLog::new();
            log.push(warned);
            log.summary_table()
        };
        assert!(table.contains("warning: ISW age 12: store write failed"));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn stage_timer_orders_and_sums() {
        let mut t = StageTimer::new();
        t.stage("a");
        t.stage("b");
        let stages = t.finish();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].name, "a");
        assert_eq!(stages[1].name, "b");
    }

    #[test]
    fn log_counts_hits_and_appends_jsonl() {
        let mut log = RunLog::new();
        log.push(report(false));
        log.push(report(true));
        log.push(report(true));
        assert_eq!(log.cache_hits(), 2);
        assert_eq!(log.cache_misses(), 1);
        let table = log.summary_table();
        assert!(table.contains("hit") && table.contains("miss"));
        assert!(table.contains("cache: 2 hits / 1 misses over 3 runs"));

        let mut path = std::env::temp_dir();
        path.push(format!("campaign-log-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        assert_eq!(log.append_jsonl(&path).expect("append"), 3);
        assert_eq!(log.append_jsonl(&path).expect("append"), 3);
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), 6, "appends accumulate");
        assert!(text.ends_with('\n'));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn healed_and_partial_land_in_jsonl_and_table() {
        let mut r = report(false);
        r.healed = 3;
        r.partial = Some("deadline expired".into());
        let j = r.to_json();
        assert!(j.contains("\"healed\":3"), "{j}");
        assert!(j.contains("\"partial\":\"deadline expired\""), "{j}");
        let mut log = RunLog::new();
        log.push(r);
        let table = log.summary_table();
        assert!(
            table.contains("heal") && table.contains("partial"),
            "{table}"
        );
        assert!(table.contains("deadline expired"), "{table}");
    }

    #[test]
    fn backend_and_lane_utilization_land_in_jsonl_and_table() {
        let mut r = report(false);
        r.backend = Some(Backend::Bitsliced);
        r.lane_utilization = Some(0.875);
        let j = r.to_json();
        assert!(j.contains("\"backend\":\"bitsliced\""), "{j}");
        assert!(j.contains("\"lane_utilization\":0.875"), "{j}");
        let hit = report(true).to_json();
        assert!(hit.contains("\"backend\":null"), "{hit}");
        assert!(hit.contains("\"lane_utilization\":null"), "{hit}");

        let mut log = RunLog::new();
        log.push(r);
        log.push(report(true));
        let table = log.summary_table();
        assert!(
            table.contains("engine") && table.contains("lane"),
            "{table}"
        );
        assert!(
            table.contains("bitsliced") && table.contains("0.88"),
            "{table}"
        );
        // The hit row shows "-" in the engine and lane columns.
        let hit_row = table.lines().nth(2).expect("hit row");
        assert!(hit_row.contains(" - "), "{hit_row}");
    }

    #[test]
    fn append_jsonl_survives_injected_write_faults_atomically() {
        let mut log = RunLog::new();
        log.push(report(false));
        let mut path = std::env::temp_dir();
        path.push(format!("campaign-log-faulty-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        log.append_jsonl(&path).expect("seed the log");
        let before = std::fs::read_to_string(&path).expect("read");

        // An injected full disk fails the append but must leave the
        // existing log byte-identical (the temp file never replaced it).
        let err = log
            .append_jsonl_with(&path, WriteFaults::none().with_enospc_after(10))
            .expect_err("ENOSPC must surface");
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), before);

        log.append_jsonl(&path).expect("healthy append");
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), 2, "failed append left no line");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn throughput_only_counts_real_acquisitions() {
        assert!(report(false).acquire_throughput().expect("miss") > 0.0);
        assert!(report(true).acquire_throughput().is_none());
        assert!(report(false).event_throughput().expect("miss") > 0.0);
        assert!(report(true).event_throughput().is_none());
    }

    #[test]
    fn throughput_lands_in_jsonl_and_the_summary_table() {
        let miss = report(false);
        let j = miss.to_json();
        assert!(j.contains("\"traces_per_sec\":"), "{j}");
        assert!(j.contains("\"events_per_sec\":"), "{j}");
        assert!(!j.contains("\"traces_per_sec\":null"), "miss has a rate");
        let hit_json = report(true).to_json();
        assert!(hit_json.contains("\"traces_per_sec\":null"), "{hit_json}");
        assert!(hit_json.contains("\"events_per_sec\":null"), "{hit_json}");

        let mut log = RunLog::new();
        log.push(miss);
        log.push(report(true));
        let table = log.summary_table();
        assert!(table.contains("tr/s") && table.contains("ev/s"), "{table}");
        // The hit row shows "-" in both throughput columns.
        let hit_row = table.lines().nth(2).expect("hit row");
        assert!(hit_row.trim_end().ends_with('-'), "{hit_row}");
    }
}
