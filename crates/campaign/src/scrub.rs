//! The self-healing scrub pass over the on-disk trace store.
//!
//! [`Campaign::scrub`] walks every `SCTR` file under the store
//! directory and, for each one:
//!
//! 1. **verifies** it end to end (header, per-record, and whole-file
//!    checksums) — intact stores are left untouched;
//! 2. **salvages** a damaged store with [`salvage_store`], classifying
//!    each record slot as clean, corrupt (bit rot), or torn (truncated
//!    tail);
//! 3. **re-captures** the damaged records seed-stably: the store header
//!    carries the protocol seed, trace geometry, and config digest, so
//!    the scrub rebuilds the exact schedule, replays only the missing
//!    indices (clean records are resumed, not re-simulated), and writes
//!    a healed store that is **bit-identical** to one that was never
//!    damaged;
//! 4. **quarantines** what it cannot heal (unsalvageable header,
//!    unknown scheme, a header describing a different configuration
//!    than this campaign's, or a file name that does not match its
//!    content address) by renaming it aside — a damaged store never
//!    silently feeds an analysis.
//!
//! Healing is refused unless the header's config digest matches the
//! *current* campaign configuration: re-capturing under different
//! simulator or sampling settings would produce values that disagree
//! with the surviving records, which is exactly the silent corruption
//! the scrub exists to prevent.

use std::fmt;
use std::path::{Path, PathBuf};

use acquisition::{classified_schedule, cpa_schedule, cpa_seed, ProtocolConfig, Stimulus};
use gatesim::Simulator;
use sbox_circuits::{SboxCircuit, Scheme};

use crate::cache::{config_digest, CampaignKey};
use crate::executor::{capture_schedule_with, ExecPolicy, ResumeState, RunBudget};
use crate::report::{RunReport, StageTimer};
use crate::store::{salvage_store, StoreKind, StoreReader, StoreSalvage, StoreWriter};
use crate::Campaign;

/// What the scrub did with one store file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordFate {
    /// Every record verified; the file was not touched.
    Clean,
    /// Damaged records were re-captured seed-stably and the store was
    /// rewritten; the healed file verifies end to end.
    Healed {
        /// Records whose checksum failed (bit rot) and were re-captured.
        corrupt: usize,
        /// Records lost to a truncated tail and re-captured.
        torn: usize,
    },
    /// The file could not be healed and was renamed aside (suffix
    /// `.quarantined`).
    Quarantined {
        /// Why healing was refused.
        reason: String,
    },
}

/// One store file's scrub verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// The store file (its pre-scrub path).
    pub path: PathBuf,
    /// What happened to it.
    pub fate: RecordFate,
}

/// The result of one [`Campaign::scrub`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Per-file verdicts, in directory order.
    pub outcomes: Vec<ScrubOutcome>,
}

impl ScrubReport {
    /// Store files examined.
    pub fn scanned(&self) -> usize {
        self.outcomes.len()
    }

    /// Files that verified without intervention.
    pub fn clean(&self) -> usize {
        self.count(|f| matches!(f, RecordFate::Clean))
    }

    /// Files healed by seed-stable re-capture.
    pub fn healed(&self) -> usize {
        self.count(|f| matches!(f, RecordFate::Healed { .. }))
    }

    /// Files quarantined as unhealable.
    pub fn quarantined(&self) -> usize {
        self.count(|f| matches!(f, RecordFate::Quarantined { .. }))
    }

    /// Records re-captured across all healed files.
    pub fn records_healed(&self) -> usize {
        self.outcomes
            .iter()
            .map(|o| match o.fate {
                RecordFate::Healed { corrupt, torn } => corrupt + torn,
                _ => 0,
            })
            .sum()
    }

    /// Whether every scanned file ended up verified (clean or healed).
    pub fn all_verified(&self) -> bool {
        self.quarantined() == 0
    }

    fn count(&self, pred: impl Fn(&RecordFate) -> bool) -> usize {
        self.outcomes.iter().filter(|o| pred(&o.fate)).count()
    }
}

impl fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scrub: {} scanned, {} clean, {} healed ({} records), {} quarantined",
            self.scanned(),
            self.clean(),
            self.healed(),
            self.records_healed(),
            self.quarantined()
        )?;
        for o in &self.outcomes {
            match &o.fate {
                RecordFate::Clean => {}
                RecordFate::Healed { corrupt, torn } => writeln!(
                    f,
                    "  healed {} ({corrupt} corrupt, {torn} torn)",
                    o.path.display()
                )?,
                RecordFate::Quarantined { reason } => {
                    writeln!(f, "  quarantined {} ({reason})", o.path.display())?
                }
            }
        }
        Ok(())
    }
}

impl Campaign {
    /// Scrub every `SCTR` store under the campaign's store directory:
    /// verify, salvage, re-capture, or quarantine (see the
    /// [module docs](self)). Healed files are recorded in the run log
    /// (one row per heal, with the `healed` record count), so scrubs
    /// show up in the summary table and `campaign_runs.jsonl`.
    pub fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        let Ok(entries) = std::fs::read_dir(self.cache.dir()) else {
            return report; // no store directory: nothing to scrub
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "sctr"))
            .collect();
        paths.sort();
        for path in paths {
            let fate = self.scrub_file(&path);
            report.outcomes.push(ScrubOutcome { path, fate });
        }
        report
    }

    fn scrub_file(&mut self, path: &Path) -> RecordFate {
        // Fast path: a full checksummed read proves the file intact.
        if let Ok(reader) = StoreReader::open(path) {
            if reader.for_each_record(|_, _| {}).is_ok() {
                return RecordFate::Clean;
            }
        }
        let salvage = match salvage_store(path) {
            Ok(s) => s,
            Err(e) => return self.quarantine(path, format!("unsalvageable: {e}")),
        };
        match self.heal(path, &salvage) {
            Ok(fate) => fate,
            Err(reason) => self.quarantine(path, reason),
        }
    }

    /// Re-capture the damaged records of a salvaged store and rewrite it
    /// bit-identically. Returns `Err(reason)` when healing is unsafe.
    fn heal(&mut self, path: &Path, salvage: &StoreSalvage) -> Result<RecordFate, String> {
        let meta = &salvage.meta;
        let scheme = *Scheme::ALL
            .iter()
            .find(|s| s.label() == meta.name)
            .ok_or_else(|| format!("unknown implementation {:?}", meta.name))?;
        if meta.samples as usize != self.config.protocol.sampling.samples {
            return Err(format!(
                "sample count {} does not match the current configuration ({})",
                meta.samples, self.config.protocol.sampling.samples
            ));
        }

        // Rebuild the protocol this store was captured under. Only the
        // seed and trace budget live in the header; everything else must
        // match the current configuration, which the config digest
        // proves.
        let mut protocol = ProtocolConfig {
            seed: meta.seed,
            ..self.config.protocol.clone()
        };
        let conditions = self.config.conditions.clone();
        if config_digest(&protocol, &conditions) != meta.config_digest {
            return Err(
                "config digest mismatch: this store was captured under a different \
                 simulator/sampling/aging configuration"
                    .to_string(),
            );
        }

        // The file name is the content address; a header that does not
        // reproduce it belongs to a renamed or tampered file.
        let key = CampaignKey {
            kind: meta.kind,
            implementation: meta.name.clone(),
            seed: meta.seed,
            traces: meta.traces,
            samples: meta.samples,
            age_months: meta.age_months,
            class_or_key: meta.class_or_key,
            config_digest: meta.config_digest,
        };
        if path.file_name().and_then(|n| n.to_str()) != Some(key.file_name().as_str()) {
            return Err("file name does not match its header's content address".to_string());
        }

        let circuit = SboxCircuit::build(scheme);
        let (schedule, base_seed): (Vec<Stimulus>, u64) = match meta.kind {
            StoreKind::Classified => {
                let classes = usize::from(meta.class_or_key);
                if classes == 0 || !(meta.traces as usize).is_multiple_of(classes) {
                    return Err(format!(
                        "trace count {} is not a multiple of {} classes",
                        meta.traces, classes
                    ));
                }
                protocol.traces_per_class = meta.traces as usize / classes;
                (classified_schedule(&circuit, &protocol), protocol.seed)
            }
            StoreKind::Cpa => (
                cpa_schedule(
                    &circuit,
                    &protocol,
                    meta.class_or_key as u8,
                    meta.traces as usize,
                ),
                cpa_seed(&protocol),
            ),
        };

        let derating = Self::derating_with(&protocol, &conditions, &circuit, meta.age_months);
        let sim = Simulator::with_derating(circuit.netlist(), &protocol.sim, &derating);

        // Resume from the clean records: only the damaged indices are
        // re-simulated, with the same per-trace seeds as the original
        // acquisition, so the healed store is bit-identical.
        let mut timer = StageTimer::new();
        timer.stage("scrub");
        let completed: Vec<(usize, Vec<f64>)> = salvage
            .clean
            .iter()
            .map(|(i, _label, samples)| (*i as usize, samples.clone()))
            .collect();
        let policy = ExecPolicy {
            budget: RunBudget::unlimited(),
            ..self.exec_policy()
        };
        let (raw, exec) = capture_schedule_with(
            &sim,
            &schedule,
            &protocol.sampling,
            base_seed,
            &policy,
            ResumeState {
                completed,
                checkpoint: None,
                sync_every: 0,
            },
        );
        if !exec.quarantined.is_empty() {
            return Err(format!(
                "re-capture quarantined {} record(s)",
                exec.quarantined.len()
            ));
        }

        // Swap the healed store in atomically with respect to failure:
        // the damaged original is kept aside until the replacement
        // verifies end to end.
        let backup = path.with_extension("sctr.bad");
        std::fs::rename(path, &backup)
            .map_err(|e| format!("cannot set damaged file aside: {e}"))?;
        let restore = |reason: String| {
            let _ = std::fs::rename(&backup, path);
            reason
        };
        let write = || -> Result<(), crate::store::StoreError> {
            let mut writer =
                StoreWriter::create_with(path, meta.clone(), self.config.faults.write_faults())?;
            for (stimulus, samples) in schedule.iter().zip(&raw) {
                writer.record(stimulus.label, samples)?;
            }
            writer.finish()
        };
        if let Err(e) = write() {
            return Err(restore(format!("rewriting the store failed: {e}")));
        }
        match StoreReader::open(path).and_then(|r| r.for_each_record(|_, _| {})) {
            Ok(_) => {}
            Err(e) => return Err(restore(format!("healed store failed verification: {e}"))),
        }
        let _ = std::fs::remove_file(&backup);

        let corrupt = salvage.corrupt.len();
        let torn = salvage.torn as usize;
        self.log_heal(meta, &exec, timer, corrupt + torn);
        Ok(RecordFate::Healed { corrupt, torn })
    }

    fn quarantine(&self, path: &Path, reason: String) -> RecordFate {
        let target = path.with_extension("sctr.quarantined");
        if let Err(e) = std::fs::rename(path, &target) {
            return RecordFate::Quarantined {
                reason: format!("{reason}; additionally, renaming it aside failed: {e}"),
            };
        }
        RecordFate::Quarantined { reason }
    }

    fn log_heal(
        &mut self,
        meta: &crate::store::StoreMeta,
        exec: &crate::executor::ExecutorReport,
        timer: StageTimer,
        healed: usize,
    ) {
        self.log.push(RunReport {
            implementation: meta.name.clone(),
            age_months: meta.age_months,
            traces: meta.traces as usize,
            workers: exec.workers,
            cache_hit: false,
            stats: exec.stats,
            worker_utilization: exec.utilization(),
            stages: timer.finish(),
            retried: exec.retried,
            quarantined: exec.quarantined.len(),
            resumed: exec.resumed,
            streamed: false,
            peak_resident: exec.peak_resident,
            merge_depth: exec.merge_depth,
            healed,
            backend: Some(exec.backend),
            lane_utilization: exec.lane_utilization,
            partial: None,
            warnings: exec.warnings.clone(),
        });
    }
}
