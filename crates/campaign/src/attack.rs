//! Campaign-scale key-recovery attacks: the streaming attack engine
//! wired through the sharded executor.
//!
//! [`Campaign::attack_aged`] runs an [`AttackPlan`] — one or more
//! distinguishers (CPA, DPA, MLPA), repeated over independent trials —
//! against one `(scheme, age)` cell. Each trial captures its own
//! CPA schedule (a per-trial derived seed; trial 0 uses the protocol
//! seed unchanged, so it shares cells with
//! [`Campaign::acquire_cpa`]) and folds every trace *once* into a
//! [`JointState`]: the per-guess co-moment state of every requested
//! distinguisher **plus** a 16-class spectral accumulator over the
//! plaintext nibbles, all accumulated in the same pass through
//! [`fold_schedule_into`](crate::fold_schedule_into). Nothing is
//! materialized; peak memory is O(guesses × samples), independent of
//! the trace budget.
//!
//! The executor's in-order chunk observer provides the evaluation
//! curves for free: after each 16-trace chunk the running merged state
//! is scored and the true key's rank recorded, so one streaming pass
//! yields the whole rank trajectory. Across trials these aggregate
//! into success-rate and guessing-entropy curves and the
//! measurements-to-disclosure figure — the metrics the paper's leakage
//! rankings predict.
//!
//! Determinism carries through from the executor: trial schedules and
//! per-trace seeds are derived (never sampled), chunk states merge in
//! a schedule-shaped tree, and in [`SumMode::Exact`] the final scores
//! are bit-identical to the batch reference at any worker count.
//! Trials resume from their `SCKP` checkpoints (refold-on-resume) and
//! serve from `SCTR` stores when a batch acquisition already captured
//! the same cell.

use std::collections::BTreeMap;

use acquisition::{cpa_schedule, cpa_seed, trace_seed, ProtocolConfig, NUM_CLASSES};
use gatesim::Simulator;
use leakage_core::online::{Merge, SpectrumAccumulator, SumMode, TreeReducer, FOLD_CHUNK};
use sbox_circuits::{SboxCircuit, Scheme};
use sca_attacks::{AttackAccumulator, CpaResult, Distinguisher, LeakageModel};

use crate::executor::{fold_schedule_into, FoldState, ResumeState};
use crate::store::{StoreError, StoreKind, StoreReader};
use crate::{config_digest, Campaign, CampaignError, CampaignKey, StageTimer};

/// Joint streaming state of one attack trial: every requested
/// distinguisher's per-guess co-moment accumulator plus the spectral
/// class statistics of the same traces, folded in a single pass.
#[derive(Debug, Clone)]
pub struct JointState {
    spectrum: SpectrumAccumulator,
    attacks: Vec<AttackAccumulator>,
}

impl JointState {
    /// Empty joint state for `samples`-point traces.
    pub fn new(distinguishers: &[Distinguisher], samples: usize, mode: SumMode) -> Self {
        Self {
            spectrum: SpectrumAccumulator::new(NUM_CLASSES, samples, mode),
            attacks: distinguishers
                .iter()
                .map(|&d| AttackAccumulator::new(d, samples, mode))
                .collect(),
        }
    }

    /// The attack accumulators, in plan order.
    pub fn attacks(&self) -> &[AttackAccumulator] {
        &self.attacks
    }

    /// The spectral state over plaintext-nibble classes.
    pub fn spectrum(&self) -> &SpectrumAccumulator {
        &self.spectrum
    }

    /// Traces folded so far.
    pub fn count(&self) -> u64 {
        self.attacks
            .first()
            .map_or_else(|| self.spectrum.len(), |a| a.count())
    }

    /// Merge a later shard into this one in place.
    fn merge_from(&mut self, later: &JointState) {
        // SpectrumAccumulator only merges by value; the clone is one
        // chunk's class statistics, not trace data.
        let taken = std::mem::replace(
            &mut self.spectrum,
            SpectrumAccumulator::new(1, 1, SumMode::Welford),
        );
        self.spectrum = taken.merge(later.spectrum.clone());
        assert_eq!(self.attacks.len(), later.attacks.len(), "plan mismatch");
        for (a, b) in self.attacks.iter_mut().zip(&later.attacks) {
            a.merge_from(b);
        }
    }
}

impl Merge for JointState {
    fn merge(mut self, later: Self) -> Self {
        self.merge_from(&later);
        self
    }
}

impl FoldState for JointState {
    fn fold(&mut self, label: u16, trace: &[f64]) {
        self.spectrum.fold(usize::from(label & 0xF), trace);
        for a in &mut self.attacks {
            a.fold(label as u8, trace);
        }
    }

    fn merge_depth(&self) -> usize {
        self.attacks
            .iter()
            .map(AttackAccumulator::merge_depth)
            .max()
            .unwrap_or_else(|| self.spectrum.merge_depth())
    }
}

/// One campaign-scale attack: which key to recover, how hard to try,
/// and how to score it.
#[derive(Debug, Clone)]
pub struct AttackPlan {
    /// The secret key nibble the traces are captured under.
    pub key: u8,
    /// Traces per trial.
    pub traces: usize,
    /// Independent trials (distinct derived schedule seeds; trial 0
    /// uses the protocol seed, sharing cells with batch CPA
    /// acquisitions).
    pub trials: usize,
    /// Distinguishers to accumulate, all in the same pass.
    pub distinguishers: Vec<Distinguisher>,
    /// Success-rate level that counts as disclosure for the MTD figure.
    pub sr_threshold: f64,
    /// Summation mode of the fold ([`SumMode::Exact`] is bit-identical
    /// to the batch reference at any worker count).
    pub mode: SumMode,
}

impl Default for AttackPlan {
    fn default() -> Self {
        Self {
            key: 0xB,
            traces: 256,
            trials: 4,
            distinguishers: vec![Distinguisher::Cpa(LeakageModel::OutputTransition)],
            sr_threshold: 0.8,
            mode: SumMode::Exact,
        }
    }
}

impl AttackPlan {
    fn validate(&self) {
        assert!(self.key < 16, "key nibble out of range");
        assert!(self.traces > 0, "empty trace budget");
        assert!(self.trials > 0, "no trials");
        assert!(!self.distinguishers.is_empty(), "no distinguishers");
        assert!(
            self.sr_threshold > 0.0 && self.sr_threshold <= 1.0,
            "threshold must be in (0, 1]"
        );
    }
}

/// Evaluation of one distinguisher across every trial of an attack.
#[derive(Debug, Clone)]
pub struct DistinguisherReport {
    /// The distinguisher evaluated.
    pub distinguisher: Distinguisher,
    /// `(traces, fraction of trials ranking the true key first)` at
    /// every chunk boundary reached by all trials, ascending.
    pub success_rate: Vec<(usize, f64)>,
    /// `(traces, mean rank of the true key)` on the same grid.
    pub guessing_entropy: Vec<(usize, f64)>,
    /// Measurements-to-disclosure: smallest evaluated budget where the
    /// success rate reaches the plan's threshold and stays there.
    pub mtd: Option<usize>,
    /// Majority-vote best guess over the trials' full-budget scores.
    pub recovered: u8,
    /// Trials whose full-budget scores rank the true key first.
    pub trials_recovered: usize,
    /// Full-budget scores of every trial, in trial order (trial 0 is
    /// the canonical cell shared with batch acquisitions).
    pub final_scores: Vec<CpaResult>,
}

/// The outcome of [`Campaign::attack_aged`] for one `(scheme, age)`
/// cell.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// The implementation attacked.
    pub scheme: Scheme,
    /// Device age in months (0.0 = fresh).
    pub age_months: f64,
    /// The true key nibble.
    pub key: u8,
    /// Traces per trial.
    pub traces_per_trial: usize,
    /// Trials run.
    pub trials: usize,
    /// One report per requested distinguisher, in plan order.
    pub reports: Vec<DistinguisherReport>,
    /// Trials served from an `SCTR` store instead of simulated.
    pub cache_hits: usize,
    /// Mean total leakage power of the per-trial plaintext-class
    /// spectra — the spectral metric of the very traces the attack
    /// consumed (plaintext classes a small random budget never drew
    /// contribute zero means).
    pub mean_total_leakage_power: f64,
}

impl AttackOutcome {
    /// The report of one distinguisher (`None` if it was not in the
    /// plan).
    pub fn report(&self, distinguisher: Distinguisher) -> Option<&DistinguisherReport> {
        self.reports
            .iter()
            .find(|r| r.distinguisher == distinguisher)
    }
}

/// Per-`n` aggregation of one distinguisher's rank trajectory across
/// trials.
#[derive(Debug, Default, Clone, Copy)]
struct NPoint {
    trials: usize,
    hits: usize,
    rank_sum: usize,
}

impl Campaign {
    /// Attack a fresh device (see [`Campaign::attack_aged`]).
    pub fn attack(&mut self, scheme: Scheme, plan: &AttackPlan) -> AttackOutcome {
        self.attack_aged(scheme, 0.0, plan)
    }

    /// Run `plan` against `scheme` at a device age, streaming every
    /// trial through the sharded executor.
    ///
    /// Each trial is one campaign cell: looked up in the trace store
    /// (a hit folds the stored records without simulating), resumed
    /// from its `SCKP` checkpoint when one exists, executed across the
    /// configured workers otherwise, and reported to the run log
    /// either way. Aging uses the same workload-derived derating as
    /// the spectral acquisitions, so attack difficulty and leakage
    /// metrics describe the same device.
    ///
    /// # Panics
    ///
    /// Panics if the plan is inconsistent (key ≥ 16, empty budget or
    /// distinguisher list, threshold outside `(0, 1]`).
    pub fn attack_aged(&mut self, scheme: Scheme, months: f64, plan: &AttackPlan) -> AttackOutcome {
        plan.validate();
        let samples = self.config.protocol.sampling.samples;
        let circuit = SboxCircuit::build(scheme);
        let derating = self.derating(&circuit, months);
        let sim = Simulator::with_derating(circuit.netlist(), &self.config.protocol.sim, &derating);

        let num_d = plan.distinguishers.len();
        let mut per_n: Vec<BTreeMap<usize, NPoint>> = vec![BTreeMap::new(); num_d];
        let mut final_scores: Vec<Vec<CpaResult>> = vec![Vec::with_capacity(plan.trials); num_d];
        let mut cache_hits = 0usize;
        let mut tlp_sum = 0.0f64;

        for trial in 0..plan.trials {
            let mut timer = StageTimer::new();
            let trial_protocol = self.trial_protocol(trial);
            let cell = self.attack_key(scheme, months, &trial_protocol, plan);
            let make = || JointState::new(&plan.distinguishers, samples, plan.mode);

            // The executor's in-order chunk tap keeps a running merge
            // whose rank is snapshotted at every chunk boundary — the
            // whole trajectory from the one streaming pass.
            let mut running: Vec<AttackAccumulator> = plan
                .distinguishers
                .iter()
                .map(|&d| AttackAccumulator::new(d, samples, plan.mode))
                .collect();
            let mut trajectory: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            let mut observer = |_seq: u64, chunk: &JointState| {
                for (run, part) in running.iter_mut().zip(chunk.attacks()) {
                    run.merge_from(part);
                }
                let n = running[0].count() as usize;
                if n > 0 {
                    let ranks = running
                        .iter()
                        .map(|a| a.scores().key_rank(plan.key))
                        .collect();
                    trajectory.insert(n, ranks);
                }
            };

            let state = 'trial: {
                if let Some(reader) = self.lookup(&cell, &mut timer) {
                    match fold_store_joint(reader, &make, &mut observer) {
                        Ok(state) => {
                            timer.stage("analyze");
                            let folded = state.count() as usize;
                            let depth = FoldState::merge_depth(&state);
                            self.push_hit_report(&cell, folded, timer, true, 1, depth);
                            cache_hits += 1;
                            break 'trial state;
                        }
                        Err(e) => eprintln!(
                            "campaign cache: {} failed mid-read ({e}); re-acquiring",
                            self.cache.path_for(&cell).display()
                        ),
                    }
                }

                timer.stage("acquire");
                let schedule = cpa_schedule(&circuit, &trial_protocol, plan.key, plan.traces);
                let policy = self.exec_policy();
                let (completed, mut writer, mut warnings) = self.open_checkpoint(&cell);
                let resume = ResumeState {
                    completed,
                    checkpoint: writer.as_mut(),
                    sync_every: self.config.checkpoint_every,
                };
                let (state, mut exec) = fold_schedule_into(
                    &sim,
                    &schedule,
                    &self.config.protocol.sampling,
                    cpa_seed(&trial_protocol),
                    &policy,
                    resume,
                    &make,
                    Some(&mut observer),
                );
                warnings.append(&mut exec.warnings);
                exec.warnings = warnings;
                if !exec.quarantined.is_empty() {
                    exec.warnings.push(
                        CampaignError::Incomplete {
                            quarantined: exec.quarantined.iter().map(|f| f.index).collect(),
                            scheduled: schedule.len(),
                        }
                        .to_string(),
                    );
                }
                timer.stage("analyze");
                self.push_exec_report(&cell, &exec, timer, true);
                state
            };

            for (d, acc) in state.attacks().iter().enumerate() {
                final_scores[d].push(acc.scores());
            }
            tlp_sum += state.spectrum().spectrum().total_leakage_power();
            for (n, ranks) in trajectory {
                for (d, &rank) in ranks.iter().enumerate() {
                    let point = per_n[d].entry(n).or_default();
                    point.trials += 1;
                    point.hits += usize::from(rank == 0);
                    point.rank_sum += rank;
                }
            }
        }

        let reports = plan
            .distinguishers
            .iter()
            .enumerate()
            .map(|(d, &distinguisher)| {
                // Curves only over budgets every trial reached, so the
                // denominator is the full trial count throughout.
                let complete: Vec<(usize, NPoint)> = per_n[d]
                    .iter()
                    .filter(|(_, p)| p.trials == plan.trials)
                    .map(|(&n, &p)| (n, p))
                    .collect();
                let success_rate: Vec<(usize, f64)> = complete
                    .iter()
                    .map(|&(n, p)| (n, p.hits as f64 / p.trials as f64))
                    .collect();
                let guessing_entropy = complete
                    .iter()
                    .map(|&(n, p)| (n, p.rank_sum as f64 / p.trials as f64))
                    .collect();
                let mtd = sca_attacks::measurements_to_disclosure(&success_rate, plan.sr_threshold);
                let scores = std::mem::take(&mut final_scores[d]);
                let trials_recovered = scores.iter().filter(|s| s.key_rank(plan.key) == 0).count();
                let recovered = majority_guess(scores.iter().map(CpaResult::best_guess));
                DistinguisherReport {
                    distinguisher,
                    success_rate,
                    guessing_entropy,
                    mtd,
                    recovered,
                    trials_recovered,
                    final_scores: scores,
                }
            })
            .collect();

        AttackOutcome {
            scheme,
            age_months: months,
            key: plan.key,
            traces_per_trial: plan.traces,
            trials: plan.trials,
            reports,
            cache_hits,
            mean_total_leakage_power: tlp_sum / plan.trials as f64,
        }
    }

    /// The aging sweep of one attack: [`Campaign::attack_aged`] per
    /// age, each cell independently cached and checkpointed.
    pub fn attack_sweep(
        &mut self,
        scheme: Scheme,
        ages_months: &[f64],
        plan: &AttackPlan,
    ) -> Vec<AttackOutcome> {
        ages_months
            .iter()
            .map(|&months| self.attack_aged(scheme, months, plan))
            .collect()
    }

    /// Trial 0 keeps the protocol verbatim (its schedule — and
    /// therefore its store cell — matches [`Campaign::acquire_cpa`]);
    /// later trials derive an independent schedule seed.
    fn trial_protocol(&self, trial: usize) -> ProtocolConfig {
        let mut protocol = self.config.protocol.clone();
        if trial > 0 {
            protocol.seed = trace_seed(protocol.seed, 0xA77A_C000 | trial as u64);
        }
        protocol
    }

    fn attack_key(
        &self,
        scheme: Scheme,
        months: f64,
        trial_protocol: &ProtocolConfig,
        plan: &AttackPlan,
    ) -> CampaignKey {
        CampaignKey {
            kind: StoreKind::Cpa,
            implementation: scheme.label().to_string(),
            seed: trial_protocol.seed,
            traces: plan.traces as u32,
            samples: self.config.protocol.sampling.samples as u32,
            age_months: months,
            class_or_key: u16::from(plan.key),
            config_digest: config_digest(trial_protocol, &self.config.conditions),
        }
    }
}

/// Fold a cached `SCTR` cell through the same chunk grid the executor
/// uses, one record resident at a time, reporting each chunk to the
/// observer in order — so a cache hit reproduces the miss path's
/// trajectory and (in exact mode) its bits.
fn fold_store_joint<F>(
    reader: StoreReader,
    make: &F,
    observer: &mut dyn FnMut(u64, &JointState),
) -> Result<JointState, StoreError>
where
    F: Fn() -> JointState,
{
    let mut reducer: TreeReducer<JointState> = TreeReducer::new();
    let mut leaf = make();
    let mut in_leaf = 0usize;
    let mut seq = 0u64;
    reader.for_each_record(|label, samples| {
        leaf.fold(label, samples);
        in_leaf += 1;
        if in_leaf == FOLD_CHUNK {
            let full = std::mem::replace(&mut leaf, make());
            observer(seq, &full);
            reducer.push(seq, full);
            seq += 1;
            in_leaf = 0;
        }
    })?;
    if in_leaf > 0 {
        observer(seq, &leaf);
        reducer.push(seq, leaf);
    }
    Ok(reducer.finish().unwrap_or_else(make))
}

/// Majority vote with deterministic ties (lowest guess wins).
fn majority_guess<I: Iterator<Item = u8>>(guesses: I) -> u8 {
    let mut counts = [0usize; 16];
    for g in guesses {
        counts[usize::from(g) & 0xF] += 1;
    }
    let best = counts.iter().copied().max().unwrap_or(0);
    counts.iter().position(|&c| c == best).unwrap_or(0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheMode, CampaignConfig};
    use std::path::{Path, PathBuf};

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("campaign-attack-{}-{name}", std::process::id()));
        p
    }

    fn campaign(dir: &Path, cache: CacheMode, workers: usize) -> Campaign {
        Campaign::new(CampaignConfig {
            workers,
            cache,
            store_dir: dir.to_path_buf(),
            log_path: dir.join("runs.jsonl"),
            ..CampaignConfig::default()
        })
    }

    fn small_plan() -> AttackPlan {
        AttackPlan {
            key: 0x7,
            traces: 48,
            trials: 2,
            distinguishers: vec![
                Distinguisher::Cpa(LeakageModel::OutputTransition),
                Distinguisher::Mlpa,
            ],
            sr_threshold: 1.0,
            mode: SumMode::Exact,
        }
    }

    #[test]
    fn streamed_attack_is_bit_identical_at_any_worker_count() {
        let dir = tmp_dir("workers");
        let plan = small_plan();
        let reference = campaign(&dir, CacheMode::Off, 1).attack(Scheme::Lut, &plan);
        for workers in [2, 8] {
            let outcome = campaign(&dir, CacheMode::Off, workers).attack(Scheme::Lut, &plan);
            for (a, b) in reference.reports.iter().zip(&outcome.reports) {
                assert_eq!(a.success_rate, b.success_rate, "workers = {workers}");
                for (ra, rb) in a.final_scores.iter().zip(&b.final_scores) {
                    for g in 0..16 {
                        assert_eq!(
                            ra.scores[g].to_bits(),
                            rb.scores[g].to_bits(),
                            "workers = {workers}, guess {g}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn attack_matches_the_batch_reference_on_the_same_cell() {
        // Trial 0 shares its schedule with `acquire_cpa`, so the
        // streamed fold must reproduce the batch attack bit for bit —
        // and serve from the store the batch acquisition wrote.
        let dir = tmp_dir("batch");
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = campaign(&dir, CacheMode::ReadWrite, 2);
        let plan = AttackPlan {
            trials: 1,
            ..small_plan()
        };
        let batch = c.acquire_cpa(Scheme::Lut, plan.key, plan.traces);
        let outcome = c.attack(Scheme::Lut, &plan);
        assert_eq!(outcome.cache_hits, 1, "must fold the stored cell");
        let want =
            sca_attacks::attack_batch(&batch.plaintexts, &batch.traces, plan.distinguishers[0])
                .scores();
        let got = &outcome.reports[0].final_scores[0];
        for g in 0..16 {
            assert_eq!(
                want.scores[g].to_bits(),
                got.scores[g].to_bits(),
                "guess {g}"
            );
        }
        let hit_report = c.log().reports().last().unwrap();
        assert_eq!(hit_report.stats.events, 0, "hit must not simulate");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unprotected_attack_discloses_and_curves_are_monotone_grids() {
        let dir = tmp_dir("curves");
        let plan = AttackPlan {
            key: 0xC,
            traces: 96,
            trials: 2,
            ..small_plan()
        };
        let outcome = campaign(&dir, CacheMode::Off, 2).attack(Scheme::Lut, &plan);
        // MLPA is the strongest distinguisher against the real LUT
        // netlist (the single-model CPAs stop a rank or two short).
        let report = outcome.report(Distinguisher::Mlpa).expect("in plan");
        assert!(!report.success_rate.is_empty());
        let ns: Vec<usize> = report.success_rate.iter().map(|&(n, _)| n).collect();
        assert!(ns.windows(2).all(|w| w[0] < w[1]), "grid ascends: {ns:?}");
        assert_eq!(*ns.last().unwrap(), plan.traces, "final budget evaluated");
        assert_eq!(report.recovered, plan.key);
        assert_eq!(report.trials_recovered, plan.trials);
        assert!(report.mtd.is_some(), "unprotected must disclose");
        assert!(outcome.mean_total_leakage_power > 0.0);
    }

    #[test]
    fn aged_attack_caches_independently_and_reports_aging() {
        let dir = tmp_dir("aged");
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = campaign(&dir, CacheMode::Off, 2);
        let plan = AttackPlan {
            trials: 1,
            traces: 32,
            ..small_plan()
        };
        let sweep = c.attack_sweep(Scheme::Lut, &[0.0, 24.0], &plan);
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[0].age_months, 0.0);
        assert_eq!(sweep[1].age_months, 24.0);
        let fresh = sweep[0].mean_total_leakage_power;
        let aged = sweep[1].mean_total_leakage_power;
        assert!(aged < fresh, "aging must reduce the attack set's leakage");
    }

    #[test]
    fn majority_vote_is_deterministic() {
        assert_eq!(majority_guess([3, 3, 7].into_iter()), 3);
        assert_eq!(majority_guess([7, 3].into_iter()), 3, "tie → lowest");
        assert_eq!(majority_guess(std::iter::empty()), 0);
    }

    #[test]
    #[should_panic(expected = "no distinguishers")]
    fn empty_plan_is_rejected() {
        let dir = tmp_dir("empty");
        let plan = AttackPlan {
            distinguishers: Vec::new(),
            ..AttackPlan::default()
        };
        campaign(&dir, CacheMode::Off, 1).attack(Scheme::Lut, &plan);
    }
}
