//! `SCTR` — the versioned binary trace-store format.
//!
//! One file holds one acquired trace set (the unit a campaign caches).
//! Layout, all integers and floats little-endian:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SCTR"
//! 4       2     format version (currently 2)
//! 6       2     kind: 0 = classified leakage protocol, 1 = CPA dataset
//! 8       2     num_classes (classified) / secret key nibble (CPA)
//! 10      2     implementation-name length n
//! 12      n     implementation name, UTF-8
//! 12+n    8     campaign seed (u64)
//! 20+n    8     device age in months (f64)
//! 28+n    8     acquisition-config digest (u64)
//! 36+n    4     trace count (u32)
//! 40+n    4     samples per trace (u32)
//! 44+n    8     FNV-1a/64 checksum of the header bytes above
//! 52+n    —     records: per trace a u16 label + samples × f64,
//!               each followed by its own FNV-1a/64 record checksum
//! end-8   8     FNV-1a/64 checksum of every preceding byte
//! ```
//!
//! Versioning rules: the magic and version are checked before anything
//! else is parsed; a reader never guesses at unknown versions (bump the
//! version on any layout change and keep old readers refusing new files
//! loudly). Version 2 added the header and per-record checksums; v1
//! files (single trailing checksum only) are refused and re-acquired.
//!
//! Three checksum scopes serve three failure modes:
//!
//! * the **header checksum** proves the metadata before any buffer is
//!   sized from it, and is what makes a damaged file *salvageable* —
//!   [`salvage_store`] trusts a verified header to locate every record;
//! * the **per-record checksums** localize damage: [`StoreReader`]
//!   verifies each record on every cache hit, and [`salvage_store`]
//!   classifies records as clean / corrupt (bad checksum) / torn
//!   (truncated tail) so a scrub pass re-captures only what was lost;
//! * the **trailing whole-file checksum** keeps the all-or-nothing
//!   cache-hit guarantee of version 1.
//!
//! Stores are written **atomically**: bytes stream to a `.tmp` sibling,
//! which is fsynced and renamed over the final path only on a complete,
//! checksummed [`StoreWriter::finish`]. A crash mid-write leaves at
//! worst a stale temp file, never a half-written store under a valid
//! name.
//!
//! The reader streams records through a fixed reusable buffer
//! ([`StoreReader::for_each_record`]) rather than materializing the file,
//! so consumers that only fold over traces (means, spectra) never hold
//! more than one record in memory.
//!
//! # Checkpoints (`SCKP`)
//!
//! A crashed or killed campaign must not lose hours of simulation, so
//! the executor periodically flushes completed traces to a sibling
//! *checkpoint* file (`<store>.ckpt`). Unlike `SCTR` — whose trailing
//! checksum makes a file all-or-nothing — a checkpoint is a sequence of
//! **self-delimiting frames**, each carrying its own FNV checksum:
//!
//! ```text
//! magic "SCKP", version, the SCTR header fields, header FNV-1a/64
//! frame*: index u32 | label u16 | samples × f64 | frame FNV-1a/64
//! ```
//!
//! Frames are fixed-length for a given header, so salvage can *resync*:
//! a corrupt frame anywhere in the file loses only itself —
//! [`resume_checkpoint`] validates every frame at its fixed boundary,
//! skips the damaged ones, truncates the torn tail back to the last
//! intact frame, and hands back both the salvaged records and a writer
//! positioned to append. Resumed runs re-derive the same per-trace
//! seeds for the missing indices, so the merged result is byte-identical
//! to an uninterrupted run. A fresh header is installed atomically
//! (temp file + rename) so a crash mid-reset cannot leave a half-header
//! that a later resume would misparse.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use leakage_core::ClassifiedTraces;

use crate::digest::Digest;
use crate::iofault::{FallibleWriter, WriteFaults};

/// A CPA dataset as read back from a store: the known key nibble, the
/// per-trace plaintext nibbles, and the traces themselves.
pub type CpaRecords = (u8, Vec<u8>, Vec<Vec<f64>>);

/// File magic.
pub const MAGIC: [u8; 4] = *b"SCTR";
/// Checkpoint-file magic.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"SCKP";
/// Current format version (shared by stores and checkpoints).
pub const VERSION: u16 = 2;

/// What protocol produced a store's records (decides how its `u16`
/// per-record labels and the `class_or_key` header field are read).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Class-balanced leakage protocol; labels are class indices.
    Classified,
    /// CPA attack dataset; labels are plaintext nibbles.
    Cpa,
}

impl StoreKind {
    fn to_u16(self) -> u16 {
        match self {
            StoreKind::Classified => 0,
            StoreKind::Cpa => 1,
        }
    }

    fn from_u16(v: u16) -> Result<Self, StoreError> {
        match v {
            0 => Ok(StoreKind::Classified),
            1 => Ok(StoreKind::Cpa),
            other => Err(StoreError::Format(format!("unknown store kind {other}"))),
        }
    }
}

/// Everything the header records about an acquisition.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMeta {
    /// Protocol that produced the records.
    pub kind: StoreKind,
    /// Implementation (netlist) name, e.g. `"ISW"`.
    pub name: String,
    /// Campaign seed the schedule and noise were derived from.
    pub seed: u64,
    /// Device age in months (0.0 = fresh).
    pub age_months: f64,
    /// Digest of the full acquisition configuration (see `cache`).
    pub config_digest: u64,
    /// Number of classes (classified) or the secret key nibble (CPA).
    pub class_or_key: u16,
    /// Number of trace records.
    pub traces: u32,
    /// Samples per trace.
    pub samples: u32,
}

/// Reading or writing a store failed.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid `SCTR` store (or an unsupported version).
    Format(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "trace store I/O error: {e}"),
            StoreError::Format(m) => write!(f, "trace store format error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The `.tmp` sibling a file is staged to before an atomic rename.
fn staging_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Best-effort fsync of `path`'s parent directory, so the rename that
/// published `path` is itself durable. Failures are ignored: directory
/// fsync is a durability nicety, not a correctness requirement (a lost
/// rename degrades to a cache miss).
fn sync_parent_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// Write `contents` to `path` atomically: stream to a `.tmp` sibling
/// through a [`FallibleWriter`], fsync, then rename over `path`. On any
/// failure the temp file is removed and the previous contents of `path`
/// (if any) survive untouched.
pub fn write_atomic_with(path: &Path, contents: &[u8], faults: WriteFaults) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = staging_path(path);
    let staged = (|| -> io::Result<()> {
        let mut out = FallibleWriter::new(File::create(&tmp)?, faults);
        out.write_all(contents)?;
        out.flush()?;
        out.get_ref().sync_all()?;
        Ok(())
    })();
    if let Err(e) = staged {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// [`write_atomic_with`] without fault injection — the call every
/// report/CSV writer should use instead of truncate-in-place.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    write_atomic_with(path, contents, WriteFaults::none())
}

/// A writer that checksums as it streams records to a staged temp file;
/// [`StoreWriter::finish`] fsyncs and atomically renames it into place.
///
/// The record count promised in `meta.traces` is enforced on
/// [`StoreWriter::finish`]; a mismatch is a format error, the temp file
/// is removed, and the final path is never touched. Dropping an
/// unfinished writer also removes its temp file.
#[derive(Debug)]
pub struct StoreWriter {
    path: PathBuf,
    tmp: PathBuf,
    out: Option<BufWriter<FallibleWriter<File>>>,
    digest: Digest,
    meta: StoreMeta,
    written: u32,
}

impl StoreWriter {
    /// Create the staging file for `path` (and its parent directories)
    /// and write the checksummed header.
    pub fn create(path: &Path, meta: StoreMeta) -> Result<Self, StoreError> {
        Self::create_with(path, meta, WriteFaults::none())
    }

    /// [`StoreWriter::create`] with injected write faults (chaos tests).
    pub fn create_with(
        path: &Path,
        meta: StoreMeta,
        faults: WriteFaults,
    ) -> Result<Self, StoreError> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = staging_path(path);
        let mut w = Self {
            path: path.to_path_buf(),
            out: Some(BufWriter::new(FallibleWriter::new(
                File::create(&tmp)?,
                faults,
            ))),
            tmp,
            digest: Digest::new(),
            meta: meta.clone(),
            written: 0,
        };
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&meta_bytes(&meta)?);
        let header_checksum = crate::digest::fnv1a(&header);
        header.extend_from_slice(&header_checksum.to_le_bytes());
        if let Err(e) = w.emit(&header) {
            w.discard();
            return Err(e);
        }
        Ok(w)
    }

    /// Append one labelled trace record with its own checksum.
    pub fn record(&mut self, label: u16, samples: &[f64]) -> Result<(), StoreError> {
        if samples.len() != self.meta.samples as usize {
            return Err(StoreError::Format(format!(
                "record has {} samples, header promises {}",
                samples.len(),
                self.meta.samples
            )));
        }
        if self.written == self.meta.traces {
            return Err(StoreError::Format(format!(
                "more than {} records written",
                self.meta.traces
            )));
        }
        let mut buf = Vec::with_capacity(2 + samples.len() * 8 + 8);
        buf.extend_from_slice(&label.to_le_bytes());
        for &s in samples {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        let record_checksum = crate::digest::fnv1a(&buf);
        buf.extend_from_slice(&record_checksum.to_le_bytes());
        self.emit(&buf)?;
        self.written += 1;
        Ok(())
    }

    /// Write the trailing checksum, fsync the staged file, and atomically
    /// rename it into place. Consumes the writer; on any failure the
    /// temp file is removed and the final path is untouched.
    pub fn finish(mut self) -> Result<(), StoreError> {
        let result = self.finish_inner();
        if result.is_err() {
            self.discard();
        }
        result
    }

    fn finish_inner(&mut self) -> Result<(), StoreError> {
        if self.written != self.meta.traces {
            return Err(StoreError::Format(format!(
                "{} records written, header promises {}",
                self.written, self.meta.traces
            )));
        }
        let checksum = self.digest.finish();
        let mut out = self.out.take().expect("unfinished writer has a sink");
        out.write_all(&checksum.to_le_bytes())?;
        let inner = out
            .into_inner()
            .map_err(|e| StoreError::Io(e.into_error()))?;
        inner.get_ref().sync_all()?;
        drop(inner);
        std::fs::rename(&self.tmp, &self.path)?;
        sync_parent_dir(&self.path);
        Ok(())
    }

    fn discard(&mut self) {
        self.out = None;
        let _ = std::fs::remove_file(&self.tmp);
    }

    fn emit(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.digest.bytes(bytes);
        self.out
            .as_mut()
            .expect("unfinished writer has a sink")
            .write_all(bytes)?;
        Ok(())
    }
}

impl Drop for StoreWriter {
    fn drop(&mut self) {
        if self.out.is_some() {
            self.discard();
        }
    }
}

/// A chunked reader: the header is parsed (and checksum-verified)
/// eagerly, records stream on demand through one reusable buffer with
/// their per-record checksums verified as they pass.
#[derive(Debug)]
pub struct StoreReader {
    meta: StoreMeta,
    input: BufReader<File>,
    digest: Digest,
    record_buf: Vec<u8>,
}

impl StoreReader {
    /// Open a store and validate its magic, version, length, and header
    /// checksum.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut input = BufReader::new(File::open(path)?);
        let mut digest = Digest::new();

        let magic = read_array::<4>(&mut input, &mut digest)?;
        if magic != MAGIC {
            return Err(StoreError::Format(format!(
                "bad magic {magic:02x?} (not an SCTR trace store)"
            )));
        }
        let version = u16::from_le_bytes(read_array(&mut input, &mut digest)?);
        if version != VERSION {
            return Err(StoreError::Format(format!(
                "unsupported store version {version} (this reader understands {VERSION})"
            )));
        }
        let meta = parse_meta(&mut input, &mut digest)?;

        // The running digest has absorbed exactly the header bytes, so
        // its state *is* the expected header checksum. Verifying it here
        // proves the metadata before any buffer is sized from it: a
        // corrupted trace or sample count must produce a format error,
        // not a multi-gigabyte allocation.
        let expect_header = digest.finish();
        let stored_header = u64::from_le_bytes(read_array(&mut input, &mut digest)?);
        if stored_header != expect_header {
            return Err(StoreError::Format(format!(
                "header checksum mismatch: stored {stored_header:#018x}, \
                 computed {expect_header:#018x}"
            )));
        }

        let expected = expected_len(&meta);
        let actual = u128::from(input.get_ref().metadata()?.len());
        if actual != expected {
            return Err(StoreError::Format(format!(
                "store is {actual} bytes but its header implies {expected}"
            )));
        }

        let record_bytes = 2 + 8 * meta.samples as usize;
        Ok(Self {
            meta,
            input,
            digest,
            record_buf: vec![0u8; record_bytes],
        })
    }

    /// The parsed header.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Stream every record through `f` as `(label, samples)`, verifying
    /// each record's checksum as it passes and the trailing whole-file
    /// checksum at the end. The samples slice borrows the reader's
    /// internal buffer and is only valid for the duration of the call.
    pub fn for_each_record(
        mut self,
        mut f: impl FnMut(u16, &[f64]),
    ) -> Result<StoreMeta, StoreError> {
        let mut samples = vec![0.0f64; self.meta.samples as usize];
        let mut tail = [0u8; 8];
        for index in 0..self.meta.traces {
            self.input.read_exact(&mut self.record_buf).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    StoreError::Format("store truncated mid-record".into())
                } else {
                    StoreError::Io(e)
                }
            })?;
            self.digest.bytes(&self.record_buf);
            let expect = crate::digest::fnv1a(&self.record_buf);
            self.input.read_exact(&mut tail).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    StoreError::Format("store truncated mid-record".into())
                } else {
                    StoreError::Io(e)
                }
            })?;
            self.digest.bytes(&tail);
            let stored = u64::from_le_bytes(tail);
            if stored != expect {
                return Err(StoreError::Format(format!(
                    "record {index} checksum mismatch: stored {stored:#018x}, \
                     computed {expect:#018x}"
                )));
            }
            let label = u16::from_le_bytes([self.record_buf[0], self.record_buf[1]]);
            for (slot, chunk) in samples.iter_mut().zip(self.record_buf[2..].chunks_exact(8)) {
                *slot = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            f(label, &samples);
        }
        let expect = self.digest.finish();
        self.input.read_exact(&mut tail).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                StoreError::Format("store truncated before checksum".into())
            } else {
                StoreError::Io(e)
            }
        })?;
        let stored = u64::from_le_bytes(tail);
        if stored != expect {
            return Err(StoreError::Format(format!(
                "checksum mismatch: stored {stored:#018x}, computed {expect:#018x}"
            )));
        }
        Ok(self.meta)
    }

    /// Read a classified store back into a [`ClassifiedTraces`] set
    /// (records keep their acquisition order).
    ///
    /// # Panics
    ///
    /// Panics if the store's kind is not [`StoreKind::Classified`].
    pub fn read_classified(self) -> Result<ClassifiedTraces, StoreError> {
        assert_eq!(
            self.meta.kind,
            StoreKind::Classified,
            "not a classified store"
        );
        let num_classes = usize::from(self.meta.class_or_key);
        let mut set = ClassifiedTraces::new(num_classes, self.meta.samples as usize);
        let mut bad_label = None;
        self.for_each_record(|label, samples| {
            if usize::from(label) < num_classes {
                set.push(usize::from(label), samples.to_vec());
            } else {
                bad_label.get_or_insert(label);
            }
        })?;
        if let Some(label) = bad_label {
            return Err(StoreError::Format(format!(
                "class label {label} out of range (< {num_classes})"
            )));
        }
        Ok(set)
    }

    /// Read a CPA store back as `(key, plaintexts, traces)`.
    ///
    /// # Panics
    ///
    /// Panics if the store's kind is not [`StoreKind::Cpa`].
    pub fn read_cpa(self) -> Result<CpaRecords, StoreError> {
        assert_eq!(self.meta.kind, StoreKind::Cpa, "not a CPA store");
        let key = self.meta.class_or_key as u8;
        let mut plaintexts = Vec::with_capacity(self.meta.traces as usize);
        let mut traces = Vec::with_capacity(self.meta.traces as usize);
        self.for_each_record(|label, samples| {
            plaintexts.push(label as u8);
            traces.push(samples.to_vec());
        })?;
        Ok((key, plaintexts, traces))
    }
}

/// The exact byte length a well-formed store with header `meta` has.
fn expected_len(meta: &StoreMeta) -> u128 {
    44u128
        + meta.name.len() as u128
        + 8
        + u128::from(meta.traces) * (2 + 8 * u128::from(meta.samples) + 8)
        + 8
}

fn read_array<const N: usize>(
    input: &mut impl Read,
    digest: &mut Digest,
) -> Result<[u8; N], StoreError> {
    let mut buf = [0u8; N];
    input.read_exact(&mut buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreError::Format("store truncated mid-header".into())
        } else {
            StoreError::Io(e)
        }
    })?;
    digest.bytes(&buf);
    Ok(buf)
}

/// The header fields after magic+version, in wire order.
fn meta_bytes(meta: &StoreMeta) -> Result<Vec<u8>, StoreError> {
    let name = meta.name.as_bytes();
    if name.len() > usize::from(u16::MAX) {
        return Err(StoreError::Format("implementation name too long".into()));
    }
    let mut buf = Vec::with_capacity(38 + name.len());
    buf.extend_from_slice(&meta.kind.to_u16().to_le_bytes());
    buf.extend_from_slice(&meta.class_or_key.to_le_bytes());
    buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
    buf.extend_from_slice(name);
    buf.extend_from_slice(&meta.seed.to_le_bytes());
    buf.extend_from_slice(&meta.age_months.to_le_bytes());
    buf.extend_from_slice(&meta.config_digest.to_le_bytes());
    buf.extend_from_slice(&meta.traces.to_le_bytes());
    buf.extend_from_slice(&meta.samples.to_le_bytes());
    Ok(buf)
}

/// Parse the header fields after magic+version, absorbing them into
/// `digest` exactly as [`meta_bytes`] emitted them.
fn parse_meta(input: &mut impl Read, digest: &mut Digest) -> Result<StoreMeta, StoreError> {
    let kind = StoreKind::from_u16(u16::from_le_bytes(read_array(input, digest)?))?;
    let class_or_key = u16::from_le_bytes(read_array(input, digest)?);
    let name_len = u16::from_le_bytes(read_array(input, digest)?);
    let mut name_bytes = vec![0u8; usize::from(name_len)];
    input.read_exact(&mut name_bytes).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreError::Format("store truncated mid-header".into())
        } else {
            StoreError::Io(e)
        }
    })?;
    digest.bytes(&name_bytes);
    let name = String::from_utf8(name_bytes)
        .map_err(|_| StoreError::Format("implementation name is not UTF-8".into()))?;
    let seed = u64::from_le_bytes(read_array(input, digest)?);
    let age_months = f64::from_le_bytes(read_array(input, digest)?);
    let config_digest = u64::from_le_bytes(read_array(input, digest)?);
    let traces = u32::from_le_bytes(read_array(input, digest)?);
    let samples = u32::from_le_bytes(read_array(input, digest)?);
    Ok(StoreMeta {
        kind,
        name,
        seed,
        age_months,
        config_digest,
        class_or_key,
        traces,
        samples,
    })
}

/// What a tolerant scan of a damaged store recovered (see
/// [`salvage_store`]).
#[derive(Debug)]
pub struct StoreSalvage {
    /// The parsed, checksum-verified header.
    pub meta: StoreMeta,
    /// Records whose per-record checksum verified: `(index, label,
    /// samples)`, in file order.
    pub clean: CheckpointRecords,
    /// Indices of records whose checksum failed (bit rot).
    pub corrupt: Vec<u32>,
    /// Number of records lost to a truncated tail.
    pub torn: u32,
}

impl StoreSalvage {
    /// Whether every promised record survived intact (damage, if any,
    /// is confined to the trailing whole-file checksum).
    pub fn is_intact(&self) -> bool {
        self.corrupt.is_empty() && self.torn == 0 && self.clean.len() == self.meta.traces as usize
    }
}

/// Tolerantly scan a (possibly damaged) store, classifying each record
/// slot as clean, corrupt, or torn. Because records are fixed-length
/// once the header is known, damage is localized: a flipped byte loses
/// one record, a truncated tail loses only the records past the tear.
///
/// Returns `Err` only when the file cannot be salvaged at all: missing,
/// wrong magic/version, or a header whose own checksum fails (without a
/// trusted header there is no record geometry to scan).
pub fn salvage_store(path: &Path) -> Result<StoreSalvage, StoreError> {
    let mut input = BufReader::new(File::open(path)?);
    let mut digest = Digest::new();

    let magic = read_array::<4>(&mut input, &mut digest)?;
    if magic != MAGIC {
        return Err(StoreError::Format(format!(
            "bad magic {magic:02x?} (not an SCTR trace store)"
        )));
    }
    let version = u16::from_le_bytes(read_array(&mut input, &mut digest)?);
    if version != VERSION {
        return Err(StoreError::Format(format!(
            "unsupported store version {version} (this reader understands {VERSION})"
        )));
    }
    let meta = parse_meta(&mut input, &mut digest)?;
    let expect_header = digest.finish();
    let mut tail = [0u8; 8];
    input.read_exact(&mut tail).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreError::Format("store truncated mid-header".into())
        } else {
            StoreError::Io(e)
        }
    })?;
    if u64::from_le_bytes(tail) != expect_header {
        return Err(StoreError::Format(
            "header checksum mismatch: nothing to trust, store is unsalvageable".into(),
        ));
    }

    let record_bytes = 2 + 8 * meta.samples as usize;
    let mut buf = vec![0u8; record_bytes];
    let mut clean = Vec::new();
    let mut corrupt = Vec::new();
    let mut torn = 0u32;
    for index in 0..meta.traces {
        if input.read_exact(&mut buf).is_err() || input.read_exact(&mut tail).is_err() {
            torn = meta.traces - index;
            break;
        }
        if crate::digest::fnv1a(&buf) != u64::from_le_bytes(tail) {
            corrupt.push(index);
            continue;
        }
        let label = u16::from_le_bytes([buf[0], buf[1]]);
        let samples: Vec<f64> = buf[2..]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte sample")))
            .collect();
        clean.push((index, label, samples));
    }
    Ok(StoreSalvage {
        meta,
        clean,
        corrupt,
        torn,
    })
}

/// Salvaged checkpoint records: `(schedule index, label, samples)`.
pub type CheckpointRecords = Vec<(u32, u16, Vec<f64>)>;

/// An appending writer of `SCKP` checkpoint frames. Obtain one via
/// [`resume_checkpoint`]; call [`CheckpointWriter::sync`] at whatever
/// durability cadence the campaign wants.
#[derive(Debug)]
pub struct CheckpointWriter {
    out: BufWriter<FallibleWriter<File>>,
    samples: usize,
    traces: u32,
}

impl CheckpointWriter {
    /// Append one completed trace as a self-checksummed frame.
    pub fn record(&mut self, index: u32, label: u16, samples: &[f64]) -> Result<(), StoreError> {
        if samples.len() != self.samples {
            return Err(StoreError::Format(format!(
                "checkpoint frame has {} samples, header promises {}",
                samples.len(),
                self.samples
            )));
        }
        if index >= self.traces {
            return Err(StoreError::Format(format!(
                "checkpoint frame index {index} out of range (< {})",
                self.traces
            )));
        }
        let mut frame = Vec::with_capacity(6 + samples.len() * 8);
        frame.extend_from_slice(&index.to_le_bytes());
        frame.extend_from_slice(&label.to_le_bytes());
        for &s in samples {
            frame.extend_from_slice(&s.to_le_bytes());
        }
        let checksum = crate::digest::fnv1a(&frame);
        self.out.write_all(&frame)?;
        self.out.write_all(&checksum.to_le_bytes())?;
        Ok(())
    }

    /// Flush buffered frames and push them to the device, so a kill
    /// after this call loses nothing written before it.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.out.flush()?;
        self.out.get_ref().get_ref().sync_data()?;
        Ok(())
    }
}

/// Open (or create) the checkpoint at `path` for the acquisition
/// described by `expect`.
///
/// Returns every intact frame already on disk plus a writer positioned
/// to append after them. Degradation rules:
///
/// * missing file → empty records, fresh header (installed atomically
///   via a temp file + rename, so a crash mid-reset cannot fake a
///   half-header);
/// * unreadable/mismatched header (a different run's checkpoint, a
///   corrupt byte, an unknown version) → the file is reset to a fresh
///   header and zero records — never trusted, never fatal;
/// * a corrupt frame **anywhere** → frames are fixed-length, so salvage
///   resyncs at the next frame boundary and loses only the damaged
///   frame, not its suffix;
/// * a torn tail → truncated back to the last intact frame, appending
///   resumes from there.
///
/// Only a real I/O error (permissions, disk) is returned as `Err`; the
/// caller then runs without checkpointing.
pub fn resume_checkpoint(
    path: &Path,
    expect: &StoreMeta,
) -> Result<(CheckpointRecords, CheckpointWriter), StoreError> {
    resume_checkpoint_with(path, expect, WriteFaults::none())
}

/// [`resume_checkpoint`] with injected write faults (chaos tests).
pub fn resume_checkpoint_with(
    path: &Path,
    expect: &StoreMeta,
    faults: WriteFaults,
) -> Result<(CheckpointRecords, CheckpointWriter), StoreError> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let header = checkpoint_header(expect)?;
    let frame_len = 4 + 2 + 8 * expect.samples as usize + 8;

    let (records, valid_len) = match File::open(path) {
        Ok(f) => salvage_frames(BufReader::new(f), &header, expect, frame_len),
        Err(e) if e.kind() == io::ErrorKind::NotFound => (Vec::new(), 0),
        Err(e) => return Err(StoreError::Io(e)),
    };

    let writer = |file: File| CheckpointWriter {
        out: BufWriter::new(FallibleWriter::new(file, faults)),
        samples: expect.samples as usize,
        traces: expect.traces,
    };

    if valid_len == 0 {
        // No trusted prefix: install a fresh header atomically, then
        // append to the published file.
        write_atomic_with(path, &header, faults)?;
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.seek(SeekFrom::End(0))?;
        Ok((records, writer(file)))
    } else {
        // Trim any torn tail (or trailing corrupt frame) back to the
        // last intact frame and append after it.
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok((records, writer(file)))
    }
}

/// The full `SCKP` header (magic, version, meta fields, header FNV).
fn checkpoint_header(meta: &StoreMeta) -> Result<Vec<u8>, StoreError> {
    let mut header = Vec::new();
    header.extend_from_slice(&CHECKPOINT_MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&meta_bytes(meta)?);
    let checksum = crate::digest::fnv1a(&header);
    header.extend_from_slice(&checksum.to_le_bytes());
    Ok(header)
}

/// Read everything trustworthy out of an existing checkpoint: if the
/// header matches `expect` byte for byte, every frame whose checksum
/// verifies. Frames are fixed-length, so a corrupt frame is *skipped*
/// and scanning resyncs at the next boundary — damage anywhere loses
/// only the damaged frame. Returns the records and the byte length of
/// the file up to its last intact frame (0 = header unusable, start
/// over); anything past that length (a torn tail) is untrusted.
fn salvage_frames(
    mut input: BufReader<File>,
    header: &[u8],
    expect: &StoreMeta,
    frame_len: usize,
) -> (CheckpointRecords, u64) {
    let mut on_disk = vec![0u8; header.len()];
    if input.read_exact(&mut on_disk).is_err() || on_disk != header {
        return (Vec::new(), 0);
    }
    let mut records = Vec::new();
    let mut valid_len = header.len() as u64;
    let mut offset = header.len() as u64;
    let mut frame = vec![0u8; frame_len];
    loop {
        if input.read_exact(&mut frame).is_err() {
            break; // EOF or torn tail: everything salvaged so far stands.
        }
        offset += frame_len as u64;
        let body = &frame[..frame_len - 8];
        let stored = u64::from_le_bytes(frame[frame_len - 8..].try_into().expect("8-byte tail"));
        if crate::digest::fnv1a(body) != stored {
            continue; // corrupt frame: skip it, resync at the next boundary.
        }
        let index = u32::from_le_bytes(body[..4].try_into().expect("4-byte index"));
        if index >= expect.traces {
            continue; // checksummed but nonsensical: treat like corruption.
        }
        let label = u16::from_le_bytes(body[4..6].try_into().expect("2-byte label"));
        let samples: Vec<f64> = body[6..]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte sample")))
            .collect();
        records.push((index, label, samples));
        valid_len = offset;
    }
    (records, valid_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(traces: u32, samples: u32) -> StoreMeta {
        StoreMeta {
            kind: StoreKind::Classified,
            name: "TESTIMPL".into(),
            seed: 0xD47E_2022,
            age_months: 12.0,
            config_digest: 0xABCD_EF01_2345_6789,
            class_or_key: 16,
            traces,
            samples,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sctr-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_meta_and_records() {
        let path = tmp("roundtrip.sctr");
        let m = meta(3, 4);
        let records: Vec<(u16, Vec<f64>)> = vec![
            (0, vec![1.0, -2.5, 3.25, 0.0]),
            (7, vec![f64::MIN_POSITIVE, 1e300, -0.0, 42.0]),
            (15, vec![0.125, 0.25, 0.5, 1.0]),
        ];
        let mut w = StoreWriter::create(&path, m.clone()).expect("create");
        for (label, samples) in &records {
            w.record(*label, samples).expect("record");
        }
        w.finish().expect("finish");

        let r = StoreReader::open(&path).expect("open");
        assert_eq!(r.meta(), &m);
        let mut back = Vec::new();
        r.for_each_record(|label, samples| back.push((label, samples.to_vec())))
            .expect("read");
        assert_eq!(back, records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stores_are_published_atomically() {
        let path = tmp("atomic.sctr");
        let _ = std::fs::remove_file(&path);
        let mut w = StoreWriter::create(&path, meta(1, 2)).expect("create");
        w.record(0, &[1.0, 2.0]).expect("record");
        assert!(
            !path.exists(),
            "final path must not exist before finish (bytes stage to .tmp)"
        );
        assert!(
            staging_path(&path).exists(),
            "staging file carries the bytes"
        );
        w.finish().expect("finish");
        assert!(path.exists(), "finish publishes the store");
        assert!(
            !staging_path(&path).exists(),
            "staging file is renamed away"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dropped_writer_leaves_no_debris() {
        let path = tmp("drop.sctr");
        let _ = std::fs::remove_file(&path);
        let mut w = StoreWriter::create(&path, meta(2, 1)).expect("create");
        w.record(0, &[1.0]).expect("record");
        drop(w);
        assert!(!path.exists());
        assert!(!staging_path(&path).exists(), "drop removes the temp file");
    }

    #[test]
    fn corruption_is_detected() {
        let path = tmp("corrupt.sctr");
        let mut w = StoreWriter::create(&path, meta(1, 2)).expect("create");
        w.record(3, &[1.0, 2.0]).expect("record");
        w.finish().expect("finish");
        // Flip one payload byte inside the record.
        let mut bytes = std::fs::read(&path).expect("read");
        let idx = bytes.len() - 20; // inside the last record's samples
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write");
        let err = StoreReader::open(&path)
            .expect("open")
            .for_each_record(|_, _| {})
            .expect_err("checksum must fail");
        assert!(matches!(err, StoreError::Format(m) if m.contains("checksum")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn per_record_checksums_name_the_damaged_record() {
        let path = tmp("record-checksum.sctr");
        let m = meta(3, 2);
        let mut w = StoreWriter::create(&path, m.clone()).expect("create");
        for i in 0..3u16 {
            w.record(i, &[f64::from(i), -f64::from(i)]).expect("record");
        }
        w.finish().expect("finish");
        // Flip a byte in the middle record's payload.
        let header_len = 44 + m.name.len() + 8;
        let record_len = 2 + 8 * m.samples as usize + 8;
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[header_len + record_len + 5] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write");
        let mut seen = 0usize;
        let err = StoreReader::open(&path)
            .expect("open")
            .for_each_record(|_, _| seen += 1)
            .expect_err("record checksum must fail");
        assert!(
            matches!(&err, StoreError::Format(m) if m.contains("record 1 checksum")),
            "{err}"
        );
        assert_eq!(seen, 1, "damage stops the stream at the bad record");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn header_corruption_is_its_own_checksum_failure() {
        let path = tmp("header-checksum.sctr");
        let mut w = StoreWriter::create(&path, meta(1, 2)).expect("create");
        w.record(0, &[1.0, 2.0]).expect("record");
        w.finish().expect("finish");
        // Flip a bit inside the stored seed (byte 20 of the header for
        // an 8-byte name).
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[21] ^= 0x04;
        std::fs::write(&path, &bytes).expect("write");
        let err = StoreReader::open(&path).expect_err("header checksum must fail");
        assert!(
            matches!(&err, StoreError::Format(m) if m.contains("header checksum")),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_is_detected() {
        let path = tmp("truncated.sctr");
        let mut w = StoreWriter::create(&path, meta(2, 2)).expect("create");
        w.record(0, &[1.0, 2.0]).expect("record");
        w.record(1, &[3.0, 4.0]).expect("record");
        w.finish().expect("finish");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 20]).expect("write");
        // The length sanity check refuses the file before any record is
        // parsed (or any buffer sized from its header).
        let err = StoreReader::open(&path).expect_err("truncation must fail");
        assert!(matches!(err, StoreError::Format(m) if m.contains("header implies")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_magic_and_version_are_refused() {
        let path = tmp("magic.sctr");
        std::fs::write(&path, b"NOPE0000000000000000").expect("write");
        assert!(matches!(
            StoreReader::open(&path),
            Err(StoreError::Format(m)) if m.contains("magic")
        ));
        // Valid magic, future version.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&99u16.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            StoreReader::open(&path),
            Err(StoreError::Format(m)) if m.contains("version")
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writer_enforces_promised_record_count() {
        let path = tmp("count.sctr");
        let mut w = StoreWriter::create(&path, meta(2, 1)).expect("create");
        w.record(0, &[1.0]).expect("record");
        assert!(w.finish().is_err(), "missing record must fail finish");
        assert!(!path.exists(), "no store is published");
        assert!(!staging_path(&path).exists(), "temp file is removed");

        let mut w = StoreWriter::create(&path, meta(1, 1)).expect("create");
        w.record(0, &[1.0]).expect("record");
        assert!(w.record(1, &[2.0]).is_err(), "extra record must fail");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn salvage_classifies_clean_corrupt_and_torn_records() {
        let path = tmp("salvage.sctr");
        let m = meta(4, 2);
        let mut w = StoreWriter::create(&path, m.clone()).expect("create");
        for i in 0..4u16 {
            w.record(i, &[f64::from(i) + 0.5, -f64::from(i)])
                .expect("record");
        }
        w.finish().expect("finish");

        let intact = salvage_store(&path).expect("salvage clean file");
        assert!(intact.is_intact());
        assert_eq!(intact.clean.len(), 4);

        // Corrupt record 1's payload and tear record 3 in half.
        let header_len = 44 + m.name.len() + 8;
        let record_len = 2 + 8 * m.samples as usize + 8;
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[header_len + record_len + 4] ^= 0x20;
        bytes.truncate(header_len + 3 * record_len + record_len / 2);
        std::fs::write(&path, &bytes).expect("write");

        let s = salvage_store(&path).expect("salvage damaged file");
        assert!(!s.is_intact());
        assert_eq!(s.meta, m);
        assert_eq!(
            s.clean.iter().map(|r| r.0).collect::<Vec<_>>(),
            vec![0, 2],
            "records 0 and 2 survive"
        );
        assert_eq!(s.clean[0].1, 0);
        assert_eq!(s.clean[1].2, vec![2.5, -2.0]);
        assert_eq!(s.corrupt, vec![1]);
        assert_eq!(s.torn, 1, "record 3 lost to the tear");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn salvage_refuses_a_store_with_a_damaged_header() {
        let path = tmp("salvage-header.sctr");
        let mut w = StoreWriter::create(&path, meta(1, 2)).expect("create");
        w.record(0, &[1.0, 2.0]).expect("record");
        w.finish().expect("finish");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[14] ^= 0x08; // inside the implementation name
        std::fs::write(&path, &bytes).expect("write");
        let err = salvage_store(&path).expect_err("untrusted header");
        assert!(
            matches!(&err, StoreError::Format(m) if m.contains("unsalvageable")),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_round_trips_and_appends() {
        let path = tmp("ckpt-roundtrip.sckp");
        let _ = std::fs::remove_file(&path);
        let m = meta(8, 3);
        let (records, mut w) = resume_checkpoint(&path, &m).expect("fresh");
        assert!(records.is_empty());
        w.record(2, 7, &[1.0, 2.0, 3.0]).expect("r");
        w.record(5, 1, &[-4.0, 0.0, f64::MIN_POSITIVE]).expect("r");
        w.sync().expect("sync");
        drop(w);

        let (records, mut w) = resume_checkpoint(&path, &m).expect("resume");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], (2, 7, vec![1.0, 2.0, 3.0]));
        assert_eq!(records[1].0, 5);
        w.record(7, 0, &[9.0, 9.5, 10.0]).expect("append");
        w.sync().expect("sync");
        drop(w);
        let (records, _) = resume_checkpoint(&path, &m).expect("reread");
        assert_eq!(
            records.iter().map(|r| r.0).collect::<Vec<_>>(),
            vec![2, 5, 7]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_salvages_everything_before_a_torn_tail() {
        let path = tmp("ckpt-torn.sckp");
        let _ = std::fs::remove_file(&path);
        let m = meta(8, 2);
        let (_, mut w) = resume_checkpoint(&path, &m).expect("fresh");
        for i in 0..4u32 {
            w.record(i, i as u16, &[i as f64, -(i as f64)]).expect("r");
        }
        w.sync().expect("sync");
        drop(w);

        // Tear mid-way through the last frame.
        let full = std::fs::read(&path).expect("read");
        std::fs::write(&path, &full[..full.len() - 5]).expect("tear");
        let (records, mut w) = resume_checkpoint(&path, &m).expect("salvage");
        assert_eq!(records.len(), 3, "intact frames survive the tear");
        assert_eq!(records.last().expect("last").0, 2);

        // Appending after the tear must not resurrect the torn frame.
        w.record(6, 6, &[60.0, -60.0]).expect("append");
        w.sync().expect("sync");
        drop(w);
        let (records, _) = resume_checkpoint(&path, &m).expect("reread");
        assert_eq!(
            records.iter().map(|r| r.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 6]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_corrupt_frame_loses_only_itself() {
        let path = tmp("ckpt-corrupt.sckp");
        let _ = std::fs::remove_file(&path);
        let m = meta(8, 2);
        let (_, mut w) = resume_checkpoint(&path, &m).expect("fresh");
        for i in 0..3u32 {
            w.record(i, 0, &[1.0, 2.0]).expect("r");
        }
        w.sync().expect("sync");
        drop(w);
        let mut bytes = std::fs::read(&path).expect("read");
        let frame_len = 4 + 2 + 16 + 8;
        let second_frame_start = bytes.len() - 2 * frame_len;
        bytes[second_frame_start + 7] ^= 0x01;
        std::fs::write(&path, &bytes).expect("corrupt");
        let (records, mut w) = resume_checkpoint(&path, &m).expect("salvage");
        assert_eq!(
            records.iter().map(|r| r.0).collect::<Vec<_>>(),
            vec![0, 2],
            "fixed frame boundaries resync past the corrupt frame"
        );
        // The lost index can be re-captured and appended; a later resume
        // sees the union, with the corrupt slot still skipped.
        w.record(1, 0, &[1.0, 2.0]).expect("append");
        w.sync().expect("sync");
        drop(w);
        let (records, _) = resume_checkpoint(&path, &m).expect("reread");
        assert_eq!(
            records.iter().map(|r| r.0).collect::<Vec<_>>(),
            vec![0, 2, 1]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_for_a_different_run_is_reset_not_resumed() {
        let path = tmp("ckpt-mismatch.sckp");
        let _ = std::fs::remove_file(&path);
        let (_, mut w) = resume_checkpoint(&path, &meta(4, 2)).expect("fresh");
        w.record(0, 0, &[1.0, 2.0]).expect("r");
        w.sync().expect("sync");
        drop(w);

        // Same path, different seed: the old frames must not leak in.
        let mut other = meta(4, 2);
        other.seed ^= 1;
        let (records, _) = resume_checkpoint(&path, &other).expect("reset");
        assert!(records.is_empty(), "mismatched checkpoint must reset");
        let (records, _) = resume_checkpoint(&path, &other).expect("fresh again");
        assert!(records.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_writer_rejects_malformed_frames() {
        let path = tmp("ckpt-shape.sckp");
        let _ = std::fs::remove_file(&path);
        let (_, mut w) = resume_checkpoint(&path, &meta(4, 2)).expect("fresh");
        assert!(w.record(0, 0, &[1.0]).is_err(), "short frame");
        assert!(w.record(4, 0, &[1.0, 2.0]).is_err(), "index out of range");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_atomic_never_damages_the_previous_contents() {
        let path = tmp("atomic-report.txt");
        write_atomic(&path, b"good report").expect("first write");
        let err = write_atomic_with(
            &path,
            b"half-written replacement",
            WriteFaults::none().with_enospc_after(4),
        )
        .expect_err("injected ENOSPC");
        assert!(err.to_string().contains("ENOSPC"));
        assert_eq!(
            std::fs::read(&path).expect("read"),
            b"good report",
            "failed rewrite leaves the old contents intact"
        );
        assert!(!staging_path(&path).exists(), "temp file cleaned up");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn classified_round_trip_preserves_order_and_classes() {
        let path = tmp("classified.sctr");
        let mut m = meta(4, 2);
        m.class_or_key = 4;
        let mut w = StoreWriter::create(&path, m).expect("create");
        for (label, v) in [(2u16, 1.0), (0, 2.0), (3, 3.0), (2, 4.0)] {
            w.record(label, &[v, v + 0.5]).expect("record");
        }
        w.finish().expect("finish");
        let set = StoreReader::open(&path)
            .expect("open")
            .read_classified()
            .expect("classified");
        assert_eq!(set.len(), 4);
        assert_eq!(set.class_counts(), vec![1, 0, 2, 1]);
        let order: Vec<usize> = set.iter().map(|(c, _)| c).collect();
        assert_eq!(order, vec![2, 0, 3, 2]);
        let _ = std::fs::remove_file(&path);
    }
}
