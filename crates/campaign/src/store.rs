//! `SCTR` — the versioned binary trace-store format.
//!
//! One file holds one acquired trace set (the unit a campaign caches).
//! Layout, all integers and floats little-endian:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SCTR"
//! 4       2     format version (currently 1)
//! 6       2     kind: 0 = classified leakage protocol, 1 = CPA dataset
//! 8       2     num_classes (classified) / secret key nibble (CPA)
//! 10      2     implementation-name length n
//! 12      n     implementation name, UTF-8
//! 12+n    8     campaign seed (u64)
//! 20+n    8     device age in months (f64)
//! 28+n    8     acquisition-config digest (u64)
//! 36+n    4     trace count (u32)
//! 40+n    4     samples per trace (u32)
//! 44+n    —     records: per trace a u16 label + samples × f64
//! end-8   8     FNV-1a/64 checksum of every preceding byte
//! ```
//!
//! Versioning rules: the magic and version are checked before anything
//! else is parsed; a reader never guesses at unknown versions (bump the
//! version on any layout change and keep old readers refusing new files
//! loudly). The checksum covers header *and* records, so truncation and
//! bit-rot are both detected.
//!
//! The reader streams records through a fixed reusable buffer
//! ([`StoreReader::for_each_record`]) rather than materializing the file,
//! so consumers that only fold over traces (means, spectra) never hold
//! more than one record in memory.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use leakage_core::ClassifiedTraces;

use crate::digest::Digest;

/// A CPA dataset as read back from a store: the known key nibble, the
/// per-trace plaintext nibbles, and the traces themselves.
pub type CpaRecords = (u8, Vec<u8>, Vec<Vec<f64>>);

/// File magic.
pub const MAGIC: [u8; 4] = *b"SCTR";
/// Current format version.
pub const VERSION: u16 = 1;

/// What protocol produced a store's records (decides how its `u16`
/// per-record labels and the `class_or_key` header field are read).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Class-balanced leakage protocol; labels are class indices.
    Classified,
    /// CPA attack dataset; labels are plaintext nibbles.
    Cpa,
}

impl StoreKind {
    fn to_u16(self) -> u16 {
        match self {
            StoreKind::Classified => 0,
            StoreKind::Cpa => 1,
        }
    }

    fn from_u16(v: u16) -> Result<Self, StoreError> {
        match v {
            0 => Ok(StoreKind::Classified),
            1 => Ok(StoreKind::Cpa),
            other => Err(StoreError::Format(format!("unknown store kind {other}"))),
        }
    }
}

/// Everything the header records about an acquisition.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMeta {
    /// Protocol that produced the records.
    pub kind: StoreKind,
    /// Implementation (netlist) name, e.g. `"ISW"`.
    pub name: String,
    /// Campaign seed the schedule and noise were derived from.
    pub seed: u64,
    /// Device age in months (0.0 = fresh).
    pub age_months: f64,
    /// Digest of the full acquisition configuration (see `cache`).
    pub config_digest: u64,
    /// Number of classes (classified) or the secret key nibble (CPA).
    pub class_or_key: u16,
    /// Number of trace records.
    pub traces: u32,
    /// Samples per trace.
    pub samples: u32,
}

/// Reading or writing a store failed.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid `SCTR` store (or an unsupported version).
    Format(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "trace store I/O error: {e}"),
            StoreError::Format(m) => write!(f, "trace store format error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// A writer that checksums as it streams records to disk.
///
/// The record count promised in `meta.traces` is enforced on
/// [`StoreWriter::finish`]; a mismatch is a format error and the partial
/// file is removed.
#[derive(Debug)]
pub struct StoreWriter {
    path: PathBuf,
    out: BufWriter<File>,
    digest: Digest,
    meta: StoreMeta,
    written: u32,
}

impl StoreWriter {
    /// Create `path` (and its parent directories) and write the header.
    pub fn create(path: &Path, meta: StoreMeta) -> Result<Self, StoreError> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut w = Self {
            path: path.to_path_buf(),
            out: BufWriter::new(File::create(path)?),
            digest: Digest::new(),
            meta: meta.clone(),
            written: 0,
        };
        let name = meta.name.as_bytes();
        if name.len() > usize::from(u16::MAX) {
            return Err(StoreError::Format("implementation name too long".into()));
        }
        w.emit(&MAGIC)?;
        w.emit(&VERSION.to_le_bytes())?;
        w.emit(&meta.kind.to_u16().to_le_bytes())?;
        w.emit(&meta.class_or_key.to_le_bytes())?;
        w.emit(&(name.len() as u16).to_le_bytes())?;
        w.emit(name)?;
        w.emit(&meta.seed.to_le_bytes())?;
        w.emit(&meta.age_months.to_le_bytes())?;
        w.emit(&meta.config_digest.to_le_bytes())?;
        w.emit(&meta.traces.to_le_bytes())?;
        w.emit(&meta.samples.to_le_bytes())?;
        Ok(w)
    }

    /// Append one labelled trace record.
    pub fn record(&mut self, label: u16, samples: &[f64]) -> Result<(), StoreError> {
        if samples.len() != self.meta.samples as usize {
            return Err(StoreError::Format(format!(
                "record has {} samples, header promises {}",
                samples.len(),
                self.meta.samples
            )));
        }
        if self.written == self.meta.traces {
            return Err(StoreError::Format(format!(
                "more than {} records written",
                self.meta.traces
            )));
        }
        self.emit(&label.to_le_bytes())?;
        let mut buf = Vec::with_capacity(samples.len() * 8);
        for &s in samples {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        self.emit(&buf)?;
        self.written += 1;
        Ok(())
    }

    /// Write the trailing checksum and flush. Consumes the writer.
    pub fn finish(mut self) -> Result<(), StoreError> {
        if self.written != self.meta.traces {
            let _ = std::fs::remove_file(&self.path);
            return Err(StoreError::Format(format!(
                "{} records written, header promises {}",
                self.written, self.meta.traces
            )));
        }
        let checksum = self.digest.finish();
        self.out.write_all(&checksum.to_le_bytes())?;
        self.out.flush()?;
        Ok(())
    }

    fn emit(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.digest.bytes(bytes);
        self.out.write_all(bytes)?;
        Ok(())
    }
}

/// A chunked reader: the header is parsed eagerly, records stream on
/// demand through one reusable buffer.
#[derive(Debug)]
pub struct StoreReader {
    meta: StoreMeta,
    input: BufReader<File>,
    digest: Digest,
    record_buf: Vec<u8>,
}

impl StoreReader {
    /// Open a store and validate its magic, version, and header shape.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut input = BufReader::new(File::open(path)?);
        let mut digest = Digest::new();

        let magic = read_array::<4>(&mut input, &mut digest)?;
        if magic != MAGIC {
            return Err(StoreError::Format(format!(
                "bad magic {magic:02x?} (not an SCTR trace store)"
            )));
        }
        let version = u16::from_le_bytes(read_array(&mut input, &mut digest)?);
        if version != VERSION {
            return Err(StoreError::Format(format!(
                "unsupported store version {version} (this reader understands {VERSION})"
            )));
        }
        let kind = StoreKind::from_u16(u16::from_le_bytes(read_array(&mut input, &mut digest)?))?;
        let class_or_key = u16::from_le_bytes(read_array(&mut input, &mut digest)?);
        let name_len = u16::from_le_bytes(read_array(&mut input, &mut digest)?);
        let mut name_bytes = vec![0u8; usize::from(name_len)];
        input.read_exact(&mut name_bytes)?;
        digest.bytes(&name_bytes);
        let name = String::from_utf8(name_bytes)
            .map_err(|_| StoreError::Format("implementation name is not UTF-8".into()))?;
        let seed = u64::from_le_bytes(read_array(&mut input, &mut digest)?);
        let age_months = f64::from_le_bytes(read_array(&mut input, &mut digest)?);
        let config_digest = u64::from_le_bytes(read_array(&mut input, &mut digest)?);
        let traces = u32::from_le_bytes(read_array(&mut input, &mut digest)?);
        let samples = u32::from_le_bytes(read_array(&mut input, &mut digest)?);

        let record_bytes = 2 + 8 * samples as usize;
        Ok(Self {
            meta: StoreMeta {
                kind,
                name,
                seed,
                age_months,
                config_digest,
                class_or_key,
                traces,
                samples,
            },
            input,
            digest,
            record_buf: vec![0u8; record_bytes],
        })
    }

    /// The parsed header.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Stream every record through `f` as `(label, samples)`, then verify
    /// the trailing checksum. The samples slice borrows the reader's
    /// internal buffer and is only valid for the duration of the call.
    pub fn for_each_record(
        mut self,
        mut f: impl FnMut(u16, &[f64]),
    ) -> Result<StoreMeta, StoreError> {
        let mut samples = vec![0.0f64; self.meta.samples as usize];
        for _ in 0..self.meta.traces {
            self.input.read_exact(&mut self.record_buf).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    StoreError::Format("store truncated mid-record".into())
                } else {
                    StoreError::Io(e)
                }
            })?;
            self.digest.bytes(&self.record_buf);
            let label = u16::from_le_bytes([self.record_buf[0], self.record_buf[1]]);
            for (slot, chunk) in samples.iter_mut().zip(self.record_buf[2..].chunks_exact(8)) {
                *slot = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            f(label, &samples);
        }
        let expect = self.digest.finish();
        let mut trailer = [0u8; 8];
        self.input.read_exact(&mut trailer).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                StoreError::Format("store truncated before checksum".into())
            } else {
                StoreError::Io(e)
            }
        })?;
        let stored = u64::from_le_bytes(trailer);
        if stored != expect {
            return Err(StoreError::Format(format!(
                "checksum mismatch: stored {stored:#018x}, computed {expect:#018x}"
            )));
        }
        Ok(self.meta)
    }

    /// Read a classified store back into a [`ClassifiedTraces`] set
    /// (records keep their acquisition order).
    ///
    /// # Panics
    ///
    /// Panics if the store's kind is not [`StoreKind::Classified`].
    pub fn read_classified(self) -> Result<ClassifiedTraces, StoreError> {
        assert_eq!(
            self.meta.kind,
            StoreKind::Classified,
            "not a classified store"
        );
        let num_classes = usize::from(self.meta.class_or_key);
        let mut set = ClassifiedTraces::new(num_classes, self.meta.samples as usize);
        let mut bad_label = None;
        self.for_each_record(|label, samples| {
            if usize::from(label) < num_classes {
                set.push(usize::from(label), samples.to_vec());
            } else {
                bad_label.get_or_insert(label);
            }
        })?;
        if let Some(label) = bad_label {
            return Err(StoreError::Format(format!(
                "class label {label} out of range (< {num_classes})"
            )));
        }
        Ok(set)
    }

    /// Read a CPA store back as `(key, plaintexts, traces)`.
    ///
    /// # Panics
    ///
    /// Panics if the store's kind is not [`StoreKind::Cpa`].
    pub fn read_cpa(self) -> Result<CpaRecords, StoreError> {
        assert_eq!(self.meta.kind, StoreKind::Cpa, "not a CPA store");
        let key = self.meta.class_or_key as u8;
        let mut plaintexts = Vec::with_capacity(self.meta.traces as usize);
        let mut traces = Vec::with_capacity(self.meta.traces as usize);
        self.for_each_record(|label, samples| {
            plaintexts.push(label as u8);
            traces.push(samples.to_vec());
        })?;
        Ok((key, plaintexts, traces))
    }
}

fn read_array<const N: usize>(
    input: &mut BufReader<File>,
    digest: &mut Digest,
) -> Result<[u8; N], StoreError> {
    let mut buf = [0u8; N];
    input.read_exact(&mut buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreError::Format("store truncated mid-header".into())
        } else {
            StoreError::Io(e)
        }
    })?;
    digest.bytes(&buf);
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(traces: u32, samples: u32) -> StoreMeta {
        StoreMeta {
            kind: StoreKind::Classified,
            name: "TESTIMPL".into(),
            seed: 0xD47E_2022,
            age_months: 12.0,
            config_digest: 0xABCD_EF01_2345_6789,
            class_or_key: 16,
            traces,
            samples,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sctr-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_meta_and_records() {
        let path = tmp("roundtrip.sctr");
        let m = meta(3, 4);
        let records: Vec<(u16, Vec<f64>)> = vec![
            (0, vec![1.0, -2.5, 3.25, 0.0]),
            (7, vec![f64::MIN_POSITIVE, 1e300, -0.0, 42.0]),
            (15, vec![0.125, 0.25, 0.5, 1.0]),
        ];
        let mut w = StoreWriter::create(&path, m.clone()).expect("create");
        for (label, samples) in &records {
            w.record(*label, samples).expect("record");
        }
        w.finish().expect("finish");

        let r = StoreReader::open(&path).expect("open");
        assert_eq!(r.meta(), &m);
        let mut back = Vec::new();
        r.for_each_record(|label, samples| back.push((label, samples.to_vec())))
            .expect("read");
        assert_eq!(back, records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_is_detected() {
        let path = tmp("corrupt.sctr");
        let mut w = StoreWriter::create(&path, meta(1, 2)).expect("create");
        w.record(3, &[1.0, 2.0]).expect("record");
        w.finish().expect("finish");
        // Flip one payload byte.
        let mut bytes = std::fs::read(&path).expect("read");
        let idx = bytes.len() - 12; // inside the last record's samples
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write");
        let err = StoreReader::open(&path)
            .expect("open")
            .for_each_record(|_, _| {})
            .expect_err("checksum must fail");
        assert!(matches!(err, StoreError::Format(m) if m.contains("checksum")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_is_detected() {
        let path = tmp("truncated.sctr");
        let mut w = StoreWriter::create(&path, meta(2, 2)).expect("create");
        w.record(0, &[1.0, 2.0]).expect("record");
        w.record(1, &[3.0, 4.0]).expect("record");
        w.finish().expect("finish");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 20]).expect("write");
        let err = StoreReader::open(&path)
            .expect("open")
            .for_each_record(|_, _| {})
            .expect_err("truncation must fail");
        assert!(matches!(err, StoreError::Format(m) if m.contains("truncated")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_magic_and_version_are_refused() {
        let path = tmp("magic.sctr");
        std::fs::write(&path, b"NOPE0000000000000000").expect("write");
        assert!(matches!(
            StoreReader::open(&path),
            Err(StoreError::Format(m)) if m.contains("magic")
        ));
        // Valid magic, future version.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&99u16.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            StoreReader::open(&path),
            Err(StoreError::Format(m)) if m.contains("version")
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writer_enforces_promised_record_count() {
        let path = tmp("count.sctr");
        let mut w = StoreWriter::create(&path, meta(2, 1)).expect("create");
        w.record(0, &[1.0]).expect("record");
        assert!(w.finish().is_err(), "missing record must fail finish");
        assert!(!path.exists(), "partial file must be removed");

        let mut w = StoreWriter::create(&path, meta(1, 1)).expect("create");
        w.record(0, &[1.0]).expect("record");
        assert!(w.record(1, &[2.0]).is_err(), "extra record must fail");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn classified_round_trip_preserves_order_and_classes() {
        let path = tmp("classified.sctr");
        let mut m = meta(4, 2);
        m.class_or_key = 4;
        let mut w = StoreWriter::create(&path, m).expect("create");
        for (label, v) in [(2u16, 1.0), (0, 2.0), (3, 3.0), (2, 4.0)] {
            w.record(label, &[v, v + 0.5]).expect("record");
        }
        w.finish().expect("finish");
        let set = StoreReader::open(&path)
            .expect("open")
            .read_classified()
            .expect("classified");
        assert_eq!(set.len(), 4);
        assert_eq!(set.class_counts(), vec![1, 0, 2, 1]);
        let order: Vec<usize> = set.iter().map(|(c, _)| c).collect();
        assert_eq!(order, vec![2, 0, 3, 2]);
        let _ = std::fs::remove_file(&path);
    }
}
