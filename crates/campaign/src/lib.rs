//! The trace-acquisition campaign engine: the single entry point for
//! acquiring, persisting, and reusing the paper's trace sets.
//!
//! A [`Campaign`] composes four pieces:
//!
//! * the **sharded executor** ([`capture_schedule`]) — a `std::thread`
//!   worker pool over the two-stage protocol split in `acquisition`
//!   (schedule first, capture per trace), bit-identical for any worker
//!   count including 1;
//! * the **trace store** ([`StoreWriter`]/[`StoreReader`]) — the
//!   versioned, checksummed `SCTR` binary format under
//!   `results/traces/`;
//! * the **content-addressed cache** ([`TraceCache`]) — acquisitions
//!   keyed by everything that determines their values, so re-running an
//!   experiment (or a later experiment sharing a cell) reads the store
//!   instead of simulating;
//! * **run observability** ([`RunLog`]) — per-stage timings, simulator
//!   event counts, cache hit/miss counters and worker utilization,
//!   printed as a table and appended to `results/campaign_runs.jsonl`.
//!
//! The engine is fault-tolerant end to end: per-trace capture panics are
//! isolated (`catch_unwind`), retried with the same re-derived seed
//! (bit-identical recovery), and quarantined into the run report when
//! they keep failing; completed traces stream to an `SCKP` checkpoint so
//! a killed run resumes instead of restarting; and store / cache /
//! run-log write failures degrade to warnings in the report — the
//! figures are the primary artifact, so persistence problems never abort
//! an acquisition. The [`FaultPlan`] harness (armed via `SCA_FAULTS`)
//! injects capture panics, store I/O errors, and torn writes
//! deterministically so these paths are tested rather than trusted.
//!
//! # Example
//!
//! ```no_run
//! use campaign::{Campaign, CampaignConfig};
//! use sbox_circuits::Scheme;
//!
//! let mut campaign = Campaign::new(CampaignConfig::default());
//! let isw = campaign.acquire(Scheme::Isw);
//! println!("TLP = {}", isw.spectrum.total_leakage_power());
//! println!("{}", campaign.log().summary_table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod cache;
mod digest;
mod error;
mod executor;
mod fault;
mod iofault;
mod report;
mod scrub;
mod store;

pub use attack::{AttackOutcome, AttackPlan, DistinguisherReport, JointState};
pub use cache::{config_digest, CacheMode, CampaignKey, TraceCache};
pub use digest::{fnv1a, Digest};
pub use error::CampaignError;
pub use executor::{
    capture_schedule, capture_schedule_with, fold_schedule_into, fold_schedule_with,
    resolve_workers, CancelToken, CaptureFailure, ChunkObserver, ExecPolicy, ExecutorReport,
    FoldState, Interruption, ResumeState, RunBudget, StopCause, StreamPolicy, WorkerLoad,
};
pub use fault::{FaultPlan, InjectedFault};
pub use iofault::{FallibleWriter, WriteFaults};
pub use report::{RunLog, RunReport, Stage, StageTimer};
pub use scrub::{RecordFate, ScrubOutcome, ScrubReport};
pub use store::{
    resume_checkpoint, resume_checkpoint_with, salvage_store, write_atomic, write_atomic_with,
    CheckpointRecords, CheckpointWriter, CpaRecords, StoreError, StoreKind, StoreMeta, StoreReader,
    StoreSalvage, StoreWriter, CHECKPOINT_MAGIC, MAGIC, VERSION,
};

use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Duration;

pub use acquisition::Backend;
use acquisition::{
    classified_schedule, cpa_schedule, cpa_seed, CpaAcquisition, LeakageStudy, ProtocolConfig,
    Stimulus, NUM_CLASSES,
};
pub use leakage_core::online::{SpectrumAccumulator, SpectrumStream, SumMode};
pub use sca_attacks::{AttackAccumulator, CpaResult, Distinguisher, LeakageModel};

use aging::AgingConditions;
use gatesim::{CaptureStats, Derating, SamplingConfig, Simulator};
use leakage_core::{ClassifiedTraces, LeakageSpectrum};
use sbox_circuits::{SboxCircuit, Scheme};

/// Everything a campaign needs to know: the acquisition protocol, the
/// device conditions, and the execution/persistence policy.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The acquisition protocol (trace budget, sampling, power model,
    /// seed).
    pub protocol: ProtocolConfig,
    /// Aging stress conditions (used for any age > 0).
    pub conditions: AgingConditions,
    /// Worker threads for the sharded executor; 0 means all cores.
    pub workers: usize,
    /// Cache policy.
    pub cache: CacheMode,
    /// Directory of `SCTR` store files.
    pub store_dir: PathBuf,
    /// JSONL sink for run reports.
    pub log_path: PathBuf,
    /// Retries per failing trace index after its first attempt (retries
    /// re-derive the same per-trace seed, so recovery is bit-identical).
    pub max_retries: u32,
    /// Flush completed traces to an `SCKP` checkpoint every this many
    /// captures, so a killed run resumes instead of restarting. `0`
    /// disables checkpointing; it is also off whenever the cache cannot
    /// write ([`CacheMode::Off`]).
    pub checkpoint_every: usize,
    /// Deterministic fault injection (inert by default; the default
    /// config arms it from `SCA_FAULTS` so CI can exercise the
    /// degradation paths across the whole suite).
    pub faults: FaultPlan,
    /// Run `acquire_spectrum*` calls as a bounded-memory streaming fold
    /// (traces are folded into online accumulators instead of
    /// materialized). Batch `acquire*` calls are unaffected.
    pub streaming: bool,
    /// Summation mode of the streaming fold. The default,
    /// [`SumMode::Exact`], makes streamed spectra bit-identical to the
    /// batch path; [`SumMode::Welford`] trades that for a cheaper fold
    /// while staying bit-stable across worker counts.
    pub stream_mode: SumMode,
    /// Run budget (wall-clock deadline, new-trace cap, cancellation),
    /// unlimited by default. An expiring budget stops the run at a chunk
    /// boundary, flushes the checkpoint, and surfaces a typed
    /// [`Interruption`] in the outcome — resuming reproduces the
    /// uninterrupted run bit for bit.
    pub budget: RunBudget,
    /// Per-capture watchdog limit: a capture attempt observed to exceed
    /// it is discarded and retried (then quarantined), instead of
    /// silently stretching the run. `None` disables the watchdog.
    pub capture_timeout: Option<Duration>,
    /// Capture engine ([`Backend::Event`] by default; the experiment
    /// binaries arm it from `SCA_BACKEND`). The bit-sliced backend
    /// produces bit-identical traces on every netlist it supports and
    /// degrades to the event engine — with a recorded warning under
    /// [`Backend::Bitsliced`], silently under [`Backend::Auto`] — on
    /// netlists its static support check rejects.
    pub backend: Backend,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            protocol: ProtocolConfig::default(),
            conditions: AgingConditions::default(),
            workers: 0,
            cache: CacheMode::ReadWrite,
            store_dir: PathBuf::from("results/traces"),
            log_path: PathBuf::from("results/campaign_runs.jsonl"),
            max_retries: 2,
            checkpoint_every: 64,
            faults: FaultPlan::from_env().clone(),
            streaming: false,
            stream_mode: SumMode::Exact,
            budget: RunBudget::unlimited(),
            capture_timeout: None,
            backend: Backend::Event,
        }
    }
}

impl CampaignConfig {
    /// A campaign with a specific protocol and the default policy.
    pub fn with_protocol(protocol: ProtocolConfig) -> Self {
        Self {
            protocol,
            ..Self::default()
        }
    }
}

/// One acquired (or cache-served) classified trace set with its
/// Walsh–Hadamard projection.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The implementation measured.
    pub scheme: Scheme,
    /// Device age in months (0.0 = fresh).
    pub age_months: f64,
    /// The class-balanced trace set.
    pub traces: ClassifiedTraces,
    /// The leakage spectrum of the class means.
    pub spectrum: LeakageSpectrum,
    /// Whether this outcome was read from the store.
    pub cache_hit: bool,
    /// `Some` when the run budget expired before the schedule finished:
    /// the traces cover only the completed prefix, the checkpoint holds
    /// it durably, and re-running the same acquisition resumes to a
    /// bit-identical complete set.
    pub partial: Option<Interruption>,
}

/// What [`Campaign::open_checkpoint`] hands back to an executor run:
/// already-completed `(index, samples)` records, the live checkpoint
/// writer (if checkpointing), and any degradation warnings.
type CheckpointState = (
    Vec<(usize, Vec<f64>)>,
    Option<CheckpointWriter>,
    Vec<String>,
);

/// One spectral analysis produced without materializing the trace set:
/// the Walsh–Hadamard spectrum plus the class statistics of the online
/// accumulator that was folded (streamed from the simulator or from a
/// cached `SCTR` store, one trace resident at a time).
#[derive(Debug, Clone)]
pub struct SpectrumOutcome {
    /// The implementation measured.
    pub scheme: Scheme,
    /// Device age in months (0.0 = fresh).
    pub age_months: f64,
    /// The leakage spectrum of the class means.
    pub spectrum: LeakageSpectrum,
    /// Traces folded per class (balanced unless captures were
    /// quarantined).
    pub class_counts: Vec<usize>,
    /// Total traces folded into the spectrum.
    pub traces_analyzed: usize,
    /// Whether the traces came from the store instead of the simulator.
    pub cache_hit: bool,
    /// Whether the analysis ran as a bounded-memory streaming fold.
    pub streamed: bool,
    /// `Some` when the run budget expired mid-schedule (see
    /// [`CampaignOutcome::partial`]).
    pub partial: Option<Interruption>,
}

/// The campaign engine. Owns the cache and the run log; each
/// `acquire*` call is one observed, cacheable unit.
#[derive(Debug)]
pub struct Campaign {
    config: CampaignConfig,
    cache: TraceCache,
    log: RunLog,
}

impl Campaign {
    /// A campaign with the given configuration.
    pub fn new(config: CampaignConfig) -> Self {
        let cache = TraceCache::new(config.store_dir.clone(), config.cache);
        Self {
            config,
            cache,
            log: RunLog::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The run log accumulated so far.
    pub fn log(&self) -> &RunLog {
        &self.log
    }

    /// Acquire the classified set for a fresh device.
    pub fn acquire(&mut self, scheme: Scheme) -> CampaignOutcome {
        self.acquire_aged(scheme, 0.0)
    }

    /// Acquire the classified set at a device age in months.
    ///
    /// Age 0 uses identity derating and is bit-identical to the
    /// sequential `acquisition::acquire` path; ages > 0 match
    /// `LeakageStudy::run_aged` (the device is aged by its own protocol
    /// workload).
    pub fn acquire_aged(&mut self, scheme: Scheme, months: f64) -> CampaignOutcome {
        let circuit = SboxCircuit::build(scheme);
        self.acquire_circuit_aged(&circuit, scheme.label(), months)
    }

    /// Acquire the classified set for an explicit circuit under an
    /// explicit cache label.
    ///
    /// This is the substrate the scheme-keyed paths delegate to, and the
    /// entry point for *imported* designs: the caller labels the cell by
    /// netlist content (e.g. `import-isw-<digest>`), so re-importing the
    /// same file hits the trace store while any structural edit misses
    /// it. The outcome's `scheme` is the circuit's bound scheme.
    pub fn acquire_circuit_aged(
        &mut self,
        circuit: &SboxCircuit,
        implementation: &str,
        months: f64,
    ) -> CampaignOutcome {
        let scheme = circuit.scheme();
        let mut timer = StageTimer::new();
        let key = self.classified_key(implementation, months);

        if let Some(reader) = self.lookup(&key, &mut timer) {
            match reader.read_classified() {
                Ok(traces) => return self.classified_hit(&key, scheme, months, traces, timer),
                Err(e) => eprintln!(
                    "campaign cache: {} failed mid-read ({e}); re-acquiring",
                    self.cache.path_for(&key).display()
                ),
            }
        }

        timer.stage("age");
        let derating = self.derating(circuit, months);
        let sim = Simulator::with_derating(circuit.netlist(), &self.config.protocol.sim, &derating);

        timer.stage("acquire");
        let schedule = classified_schedule(circuit, &self.config.protocol);
        let (raw, mut exec) = self.execute(&key, &sim, &schedule, self.config.protocol.seed);

        // Quarantined indices — and, after a budget interruption, the
        // never-claimed tail — have empty slots; the surviving traces
        // still form a usable (if slightly unbalanced) classified set.
        let dropped: HashSet<usize> = exec.quarantined.iter().map(|f| f.index).collect();
        let mut traces = ClassifiedTraces::new(NUM_CLASSES, self.config.protocol.sampling.samples);
        for (index, (stimulus, trace)) in schedule.iter().zip(raw).enumerate() {
            if !dropped.contains(&index) && !trace.is_empty() {
                traces.push(usize::from(stimulus.label), trace);
            }
        }

        if let Some(interruption) = exec.interrupted {
            // A budget-stopped run is a valid prefix, not a failure: the
            // checkpoint already holds every captured trace, so the next
            // run resumes instead of restarting. It must never be cached
            // as a complete set.
            exec.warnings.push(
                CampaignError::Interrupted {
                    cause: interruption.cause.to_string(),
                    remaining: interruption.remaining,
                    scheduled: schedule.len(),
                }
                .to_string(),
            );
        } else if exec.quarantined.is_empty() {
            let warning = self.persist(&key, schedule.iter().map(|s| s.label), &traces, &mut timer);
            exec.warnings.extend(warning);
        } else {
            // An incomplete set must never be cached as complete; the
            // checkpoint keeps the survivors so the next run only
            // re-simulates the missing indices.
            exec.warnings.push(
                CampaignError::Incomplete {
                    quarantined: exec.quarantined.iter().map(|f| f.index).collect(),
                    scheduled: schedule.len(),
                }
                .to_string(),
            );
        }

        timer.stage("analyze");
        let spectrum = LeakageSpectrum::from_class_means(&traces.class_means());
        self.report(&key, &exec, timer);
        CampaignOutcome {
            scheme,
            age_months: months,
            traces,
            spectrum,
            cache_hit: false,
            partial: exec.interrupted,
        }
    }

    /// Acquire one scheme over a sequence of device ages (the Fig. 7
    /// sweep), each cell independently cached.
    pub fn run_aged(&mut self, scheme: Scheme, ages_months: &[f64]) -> Vec<CampaignOutcome> {
        ages_months
            .iter()
            .map(|&months| self.acquire_aged(scheme, months))
            .collect()
    }

    /// The leakage spectrum for a fresh device, without retaining the
    /// trace set (see [`Campaign::acquire_spectrum_aged`]).
    pub fn acquire_spectrum(&mut self, scheme: Scheme) -> SpectrumOutcome {
        self.acquire_spectrum_aged(scheme, 0.0)
    }

    /// The leakage spectrum at a device age, analyzed in bounded memory
    /// when [`CampaignConfig::streaming`] is set.
    ///
    /// In streaming mode each worker folds its shard of the schedule
    /// into a local [`SpectrumAccumulator`] and the shards merge in a
    /// deterministic tree, so peak memory is O(classes × samples) — not
    /// O(traces) — and the result is identical for any worker count. In
    /// the default [`SumMode::Exact`] the spectrum is bit-identical to
    /// the batch [`Campaign::acquire_aged`] path. Cache hits fold the
    /// stored records one at a time instead of materializing the set;
    /// misses simulate but keep no raw traces, so nothing is written to
    /// the `SCTR` store (the `SCKP` checkpoint, when enabled, remains
    /// the durable per-trace artifact and seeds a later batch run).
    ///
    /// With `streaming` off this simply delegates to the batch path and
    /// summarizes its outcome.
    pub fn acquire_spectrum_aged(&mut self, scheme: Scheme, months: f64) -> SpectrumOutcome {
        let circuit = SboxCircuit::build(scheme);
        self.acquire_circuit_spectrum_aged(&circuit, scheme.label(), months)
    }

    /// The spectrum counterpart of [`Campaign::acquire_circuit_aged`]:
    /// an explicit circuit under an explicit cache label, streamed in
    /// bounded memory when the campaign is configured for it.
    pub fn acquire_circuit_spectrum_aged(
        &mut self,
        circuit: &SboxCircuit,
        implementation: &str,
        months: f64,
    ) -> SpectrumOutcome {
        let scheme = circuit.scheme();
        if !self.config.streaming {
            let outcome = self.acquire_circuit_aged(circuit, implementation, months);
            let mut class_counts = vec![0usize; NUM_CLASSES];
            for (class, _) in outcome.traces.iter() {
                class_counts[class] += 1;
            }
            return SpectrumOutcome {
                scheme,
                age_months: months,
                spectrum: outcome.spectrum,
                class_counts,
                traces_analyzed: outcome.traces.len(),
                cache_hit: outcome.cache_hit,
                streamed: false,
                partial: outcome.partial,
            };
        }

        let mut timer = StageTimer::new();
        let key = self.classified_key(implementation, months);

        if let Some(reader) = self.lookup(&key, &mut timer) {
            match Self::fold_store(reader, self.config.stream_mode) {
                Ok(acc) => return self.spectrum_hit(&key, scheme, months, acc, timer),
                Err(e) => eprintln!(
                    "campaign cache: {} failed mid-read ({e}); re-acquiring",
                    self.cache.path_for(&key).display()
                ),
            }
        }

        timer.stage("age");
        let derating = self.derating(circuit, months);
        let sim = Simulator::with_derating(circuit.netlist(), &self.config.protocol.sim, &derating);

        timer.stage("acquire");
        let schedule = classified_schedule(circuit, &self.config.protocol);
        let (acc, mut exec) =
            self.execute_streaming(&key, &sim, &schedule, self.config.protocol.seed);

        if let Some(interruption) = exec.interrupted {
            exec.warnings.push(
                CampaignError::Interrupted {
                    cause: interruption.cause.to_string(),
                    remaining: interruption.remaining,
                    scheduled: schedule.len(),
                }
                .to_string(),
            );
        } else if !exec.quarantined.is_empty() {
            exec.warnings.push(
                CampaignError::Incomplete {
                    quarantined: exec.quarantined.iter().map(|f| f.index).collect(),
                    scheduled: schedule.len(),
                }
                .to_string(),
            );
        }

        timer.stage("analyze");
        let spectrum = acc.spectrum();
        let class_counts = acc.class_counts();
        let traces_analyzed = acc.len() as usize;
        self.report_streamed(&key, &exec, timer);
        SpectrumOutcome {
            scheme,
            age_months: months,
            spectrum,
            class_counts,
            traces_analyzed,
            cache_hit: false,
            streamed: true,
            partial: exec.interrupted,
        }
    }

    /// The Fig. 7 age sweep as streamed spectra: one
    /// [`Campaign::acquire_spectrum_aged`] per age, each cell
    /// independently cached.
    pub fn run_aged_spectra(
        &mut self,
        scheme: Scheme,
        ages_months: &[f64],
    ) -> Vec<SpectrumOutcome> {
        ages_months
            .iter()
            .map(|&months| self.acquire_spectrum_aged(scheme, months))
            .collect()
    }

    /// Acquire a CPA attack dataset (known key nibble, random
    /// plaintexts), cached like any other campaign cell.
    ///
    /// # Panics
    ///
    /// Panics if `key >= 16` or `traces == 0`.
    pub fn acquire_cpa(&mut self, scheme: Scheme, key: u8, traces: usize) -> CpaAcquisition {
        assert!(key < 16);
        assert!(traces > 0);
        let mut timer = StageTimer::new();
        let cache_key = self.cpa_key(scheme, key, traces);

        if let Some(reader) = self.lookup(&cache_key, &mut timer) {
            match reader.read_cpa() {
                Ok((key, plaintexts, traces)) => {
                    let n = traces.len();
                    self.report_hit(&cache_key, n, timer);
                    return CpaAcquisition {
                        key,
                        plaintexts,
                        traces,
                    };
                }
                Err(e) => eprintln!(
                    "campaign cache: {} failed mid-read ({e}); re-acquiring",
                    self.cache.path_for(&cache_key).display()
                ),
            }
        }

        timer.stage("build");
        let circuit = SboxCircuit::build(scheme);
        let sim = Simulator::new(circuit.netlist(), &self.config.protocol.sim);

        timer.stage("acquire");
        let schedule = cpa_schedule(&circuit, &self.config.protocol, key, traces);
        let (raw, mut exec) =
            self.execute(&cache_key, &sim, &schedule, cpa_seed(&self.config.protocol));

        if let Some(interruption) = exec.interrupted {
            exec.warnings.push(
                CampaignError::Interrupted {
                    cause: interruption.cause.to_string(),
                    remaining: interruption.remaining,
                    scheduled: schedule.len(),
                }
                .to_string(),
            );
        } else if exec.quarantined.is_empty() {
            if self.cache.writes_enabled() {
                timer.stage("store");
                let records = schedule
                    .iter()
                    .map(|s| s.label)
                    .zip(raw.iter().map(Vec::as_slice));
                if let Err(e) = self.write_store(&cache_key, records) {
                    exec.warnings.push(format!(
                        "persisting CPA set failed ({e}); continuing uncached"
                    ));
                } else {
                    let _ = std::fs::remove_file(self.cache.checkpoint_path(&cache_key));
                }
            }
        } else {
            exec.warnings.push(
                CampaignError::Incomplete {
                    quarantined: exec.quarantined.iter().map(|f| f.index).collect(),
                    scheduled: schedule.len(),
                }
                .to_string(),
            );
        }

        self.report(&cache_key, &exec, timer);
        CpaAcquisition {
            key,
            plaintexts: schedule.iter().map(|s| s.label as u8).collect(),
            traces: raw,
        }
    }

    /// Print the summary table and append the run reports to the JSONL
    /// log. Returns the number of lines appended.
    pub fn finish(&self) -> std::io::Result<usize> {
        print!("{}", self.log.summary_table());
        self.log
            .append_jsonl_with(&self.config.log_path, self.config.faults.write_faults())
    }

    fn classified_key(&self, implementation: &str, months: f64) -> CampaignKey {
        CampaignKey {
            kind: StoreKind::Classified,
            implementation: implementation.to_string(),
            seed: self.config.protocol.seed,
            traces: (self.config.protocol.traces_per_class * NUM_CLASSES) as u32,
            samples: self.config.protocol.sampling.samples as u32,
            age_months: months,
            class_or_key: NUM_CLASSES as u16,
            config_digest: config_digest(&self.config.protocol, &self.config.conditions),
        }
    }

    fn cpa_key(&self, scheme: Scheme, key: u8, traces: usize) -> CampaignKey {
        CampaignKey {
            kind: StoreKind::Cpa,
            implementation: scheme.label().to_string(),
            seed: self.config.protocol.seed,
            traces: traces as u32,
            samples: self.config.protocol.sampling.samples as u32,
            age_months: 0.0,
            class_or_key: u16::from(key),
            config_digest: config_digest(&self.config.protocol, &self.config.conditions),
        }
    }

    fn derating(&self, circuit: &SboxCircuit, months: f64) -> Derating {
        Self::derating_with(
            &self.config.protocol,
            &self.config.conditions,
            circuit,
            months,
        )
    }

    /// The derating for `circuit` at `months` under an explicit protocol
    /// and conditions — shared by acquisitions and the scrub's seed-stable
    /// re-captures (which reconstruct the protocol from a store header).
    pub(crate) fn derating_with(
        protocol: &ProtocolConfig,
        conditions: &AgingConditions,
        circuit: &SboxCircuit,
        months: f64,
    ) -> Derating {
        if months == 0.0 {
            // Identical to derating_at_months(0.0), without profiling the
            // stress workload.
            Derating::fresh(circuit.netlist())
        } else {
            LeakageStudy::new(protocol.clone())
                .with_conditions(conditions.clone())
                .aged_device(circuit)
                .derating_at_months(months)
        }
    }

    fn lookup(&mut self, key: &CampaignKey, timer: &mut StageTimer) -> Option<StoreReader> {
        timer.stage("load");
        self.cache.lookup(key)
    }

    /// Run the executor for one campaign cell, resuming from (and
    /// streaming progress to) the cell's `SCKP` checkpoint when
    /// checkpointing is enabled. Checkpoint problems never fail the
    /// acquisition — they degrade to warnings in the report.
    fn execute(
        &mut self,
        key: &CampaignKey,
        sim: &Simulator<'_>,
        schedule: &[Stimulus],
        base_seed: u64,
    ) -> (Vec<Vec<f64>>, ExecutorReport) {
        let policy = self.exec_policy();
        let (completed, mut writer, mut warnings) = self.open_checkpoint(key);
        let sampling: &SamplingConfig = &self.config.protocol.sampling;
        let resume = ResumeState {
            completed,
            checkpoint: writer.as_mut(),
            sync_every: self.config.checkpoint_every,
        };
        let (raw, mut exec) =
            capture_schedule_with(sim, schedule, sampling, base_seed, &policy, resume);
        drop(writer);
        self.maybe_tear_checkpoint(key);
        warnings.append(&mut exec.warnings);
        exec.warnings = warnings;
        (raw, exec)
    }

    /// The streaming counterpart of [`Campaign::execute`]: identical
    /// checkpoint resume/flush wiring, but each worker folds its shard
    /// into an accumulator instead of returning raw traces.
    fn execute_streaming(
        &mut self,
        key: &CampaignKey,
        sim: &Simulator<'_>,
        schedule: &[Stimulus],
        base_seed: u64,
    ) -> (SpectrumAccumulator, ExecutorReport) {
        let policy = self.exec_policy();
        let stream = StreamPolicy {
            num_classes: NUM_CLASSES,
            mode: self.config.stream_mode,
        };
        let (completed, mut writer, mut warnings) = self.open_checkpoint(key);
        let sampling: &SamplingConfig = &self.config.protocol.sampling;
        let resume = ResumeState {
            completed,
            checkpoint: writer.as_mut(),
            sync_every: self.config.checkpoint_every,
        };
        let (acc, mut exec) =
            fold_schedule_with(sim, schedule, sampling, base_seed, &policy, resume, &stream);
        drop(writer);
        self.maybe_tear_checkpoint(key);
        warnings.append(&mut exec.warnings);
        exec.warnings = warnings;
        (acc, exec)
    }

    fn exec_policy(&self) -> ExecPolicy {
        ExecPolicy {
            workers: self.config.workers,
            max_retries: self.config.max_retries,
            faults: self.config.faults.clone(),
            budget: self.config.budget.clone(),
            capture_timeout: self.config.capture_timeout,
            backend: self.config.backend,
        }
    }

    /// Apply the `torn-checkpoint` fault: after a run finishes writing
    /// its checkpoint, tear the last few bytes off the file — the crash
    /// exactly mid-flush that the salvage scan must absorb on resume.
    fn maybe_tear_checkpoint(&self, key: &CampaignKey) {
        if !self.config.faults.torn_checkpoint() {
            return;
        }
        let path = self.cache.checkpoint_path(key);
        if let Ok(meta) = std::fs::metadata(&path) {
            let torn = meta.len().saturating_sub(5);
            let _ = std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .and_then(|f| f.set_len(torn));
        }
    }

    /// Open (or resume) the cell's `SCKP` checkpoint. Returns the
    /// already-completed records, the live writer, and any degradation
    /// warnings; checkpoint problems never fail an acquisition.
    fn open_checkpoint(&mut self, key: &CampaignKey) -> CheckpointState {
        let checkpointing = self.cache.writes_enabled() && self.config.checkpoint_every > 0;
        let path = self.cache.checkpoint_path(key);
        let mut warnings = Vec::new();
        let mut writer: Option<CheckpointWriter> = None;
        let mut completed = Vec::new();
        if checkpointing {
            if !self.cache.reads_enabled() {
                // Refresh mode (`SCA_CACHE=refresh`) must re-simulate, so
                // a stale checkpoint cannot be resumed from.
                let _ = std::fs::remove_file(&path);
            }
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match resume_checkpoint_with(
                &path,
                &key.expected_meta(),
                self.config.faults.write_faults(),
            ) {
                Ok((records, w)) => {
                    completed = records
                        .into_iter()
                        .map(|(index, _label, samples)| (index as usize, samples))
                        .collect();
                    writer = Some(w);
                }
                Err(e) => warnings.push(format!(
                    "checkpoint {} unavailable ({e}); running without checkpoints",
                    path.display()
                )),
            }
        }
        (completed, writer, warnings)
    }

    /// Fold every record of a cached store into an accumulator, one
    /// record resident at a time.
    fn fold_store(reader: StoreReader, mode: SumMode) -> Result<SpectrumAccumulator, StoreError> {
        let meta = reader.meta();
        let mut stream =
            SpectrumStream::new(usize::from(meta.class_or_key), meta.samples as usize, mode);
        reader.for_each_record(|label, samples| stream.fold(usize::from(label), samples))?;
        Ok(stream.finish())
    }

    /// Write the finished classified set to the store and retire its
    /// checkpoint. Returns a warning instead of an error: persistence
    /// failures degrade (the traces are already in memory).
    fn persist<I: Iterator<Item = u16>>(
        &mut self,
        key: &CampaignKey,
        labels: I,
        traces: &ClassifiedTraces,
        timer: &mut StageTimer,
    ) -> Option<String> {
        if !self.cache.writes_enabled() {
            return None;
        }
        timer.stage("store");
        // `ClassifiedTraces` preserves acquisition order, so zipping the
        // schedule's labels back over its records reconstructs them.
        let records = labels.zip(traces.iter().map(|(_, t)| t));
        match self.write_store(key, records) {
            Ok(()) => {
                let _ = std::fs::remove_file(self.cache.checkpoint_path(key));
                None
            }
            Err(e) => Some(format!(
                "persisting trace set failed ({e}); continuing uncached"
            )),
        }
    }

    fn write_store<'a, I>(&self, key: &CampaignKey, records: I) -> Result<(), StoreError>
    where
        I: Iterator<Item = (u16, &'a [f64])>,
    {
        if let Some(e) = self.config.faults.store_write_error() {
            return Err(e);
        }
        let path = self.cache.path_for(key);
        let mut writer = StoreWriter::create_with(
            &path,
            key.expected_meta(),
            self.config.faults.write_faults(),
        )?;
        for (label, samples) in records {
            writer.record(label, samples)?;
        }
        writer.finish()?;
        if let Some(bytes) = self.config.faults.torn_store_bytes() {
            // A torn write: the writer reported success but the file is
            // short. The next lookup must degrade to a miss.
            std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .and_then(|f| f.set_len(bytes))
                .map_err(StoreError::Io)?;
        }
        Ok(())
    }

    fn classified_hit(
        &mut self,
        key: &CampaignKey,
        scheme: Scheme,
        months: f64,
        traces: ClassifiedTraces,
        mut timer: StageTimer,
    ) -> CampaignOutcome {
        timer.stage("analyze");
        let spectrum = LeakageSpectrum::from_class_means(&traces.class_means());
        self.report_hit(key, traces.len(), timer);
        CampaignOutcome {
            scheme,
            age_months: months,
            traces,
            spectrum,
            cache_hit: true,
            partial: None,
        }
    }

    fn report_hit(&mut self, key: &CampaignKey, traces: usize, timer: StageTimer) {
        self.push_hit_report(key, traces, timer, false, 0, 0);
    }

    fn spectrum_hit(
        &mut self,
        key: &CampaignKey,
        scheme: Scheme,
        months: f64,
        acc: SpectrumAccumulator,
        mut timer: StageTimer,
    ) -> SpectrumOutcome {
        timer.stage("analyze");
        // A cache-hit fold keeps one record resident at a time.
        self.push_hit_report(key, acc.len() as usize, timer, true, 1, acc.merge_depth());
        SpectrumOutcome {
            scheme,
            age_months: months,
            spectrum: acc.spectrum(),
            class_counts: acc.class_counts(),
            traces_analyzed: acc.len() as usize,
            cache_hit: true,
            streamed: true,
            partial: None,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_hit_report(
        &mut self,
        key: &CampaignKey,
        traces: usize,
        timer: StageTimer,
        streamed: bool,
        peak_resident: usize,
        merge_depth: usize,
    ) {
        self.log.push(RunReport {
            implementation: key.implementation.clone(),
            age_months: key.age_months,
            traces,
            workers: 1,
            cache_hit: true,
            stats: CaptureStats::default(),
            worker_utilization: 1.0,
            stages: timer.finish(),
            retried: 0,
            quarantined: 0,
            resumed: 0,
            streamed,
            peak_resident,
            merge_depth,
            healed: 0,
            // A cache hit simulates nothing, so no capture engine ran.
            backend: None,
            lane_utilization: None,
            partial: None,
            warnings: Vec::new(),
        });
    }

    fn report(&mut self, key: &CampaignKey, exec: &ExecutorReport, timer: StageTimer) {
        self.push_exec_report(key, exec, timer, false);
    }

    fn report_streamed(&mut self, key: &CampaignKey, exec: &ExecutorReport, timer: StageTimer) {
        self.push_exec_report(key, exec, timer, true);
    }

    fn push_exec_report(
        &mut self,
        key: &CampaignKey,
        exec: &ExecutorReport,
        timer: StageTimer,
        streamed: bool,
    ) {
        self.log.push(RunReport {
            implementation: key.implementation.clone(),
            age_months: key.age_months,
            traces: key.traces as usize,
            workers: exec.workers,
            cache_hit: false,
            stats: exec.stats,
            worker_utilization: exec.utilization(),
            stages: timer.finish(),
            retried: exec.retried,
            quarantined: exec.quarantined.len(),
            resumed: exec.resumed,
            streamed,
            peak_resident: exec.peak_resident,
            merge_depth: exec.merge_depth,
            healed: 0,
            backend: Some(exec.backend),
            lane_utilization: exec.lane_utilization,
            partial: exec.interrupted.map(|i| i.cause.to_string()),
            warnings: exec.warnings.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("campaign-test-{}-{name}", std::process::id()));
        p
    }

    fn small_campaign(dir: &Path, cache: CacheMode) -> Campaign {
        Campaign::new(CampaignConfig {
            protocol: ProtocolConfig {
                traces_per_class: 2,
                ..ProtocolConfig::default()
            },
            workers: 2,
            cache,
            store_dir: dir.to_path_buf(),
            log_path: dir.join("runs.jsonl"),
            ..CampaignConfig::default()
        })
    }

    #[test]
    fn matches_sequential_acquisition_exactly() {
        let dir = tmp_dir("seq");
        let mut campaign = small_campaign(&dir, CacheMode::Off);
        let outcome = campaign.acquire(Scheme::Opt);
        let circuit = SboxCircuit::build(Scheme::Opt);
        let reference = acquisition::acquire(&circuit, &campaign.config().protocol);
        assert_eq!(outcome.traces, reference);
        assert!(!outcome.cache_hit);
    }

    #[test]
    fn second_acquisition_hits_the_cache_with_zero_sim_events() {
        let dir = tmp_dir("hit");
        let _ = std::fs::remove_dir_all(&dir);
        let mut campaign = small_campaign(&dir, CacheMode::ReadWrite);
        let first = campaign.acquire(Scheme::Rsm);
        let second = campaign.acquire(Scheme::Rsm);
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(first.traces, second.traces);
        assert_eq!(
            first.spectrum.total_leakage_power(),
            second.spectrum.total_leakage_power()
        );
        let reports = campaign.log().reports();
        assert_eq!(reports.len(), 2);
        assert!(reports[0].stats.events > 0);
        assert_eq!(reports[1].stats.events, 0, "hit must not simulate");
        assert_eq!(campaign.log().cache_hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn aged_cells_cache_independently_of_fresh() {
        let dir = tmp_dir("aged");
        let _ = std::fs::remove_dir_all(&dir);
        let mut campaign = small_campaign(&dir, CacheMode::ReadWrite);
        let sweep = campaign.run_aged(Scheme::Opt, &[0.0, 24.0]);
        assert_eq!(sweep.len(), 2);
        assert!(sweep.iter().all(|o| !o.cache_hit));
        assert!(
            sweep[1].spectrum.total_leakage_power() < sweep[0].spectrum.total_leakage_power(),
            "aging must reduce leakage"
        );
        // A fresh acquire now hits the age-0 cell written by the sweep.
        assert!(campaign.acquire(Scheme::Opt).cache_hit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cpa_round_trips_through_the_cache() {
        let dir = tmp_dir("cpa");
        let _ = std::fs::remove_dir_all(&dir);
        let mut campaign = small_campaign(&dir, CacheMode::ReadWrite);
        let first = campaign.acquire_cpa(Scheme::Opt, 0xB, 24);
        let second = campaign.acquire_cpa(Scheme::Opt, 0xB, 24);
        assert_eq!(first, second);
        assert_eq!(first.key, 0xB);
        assert_eq!(first.traces.len(), 24);
        let circuit = SboxCircuit::build(Scheme::Opt);
        let reference = acquisition::acquire_cpa(&circuit, &campaign.config().protocol, 0xB, 24);
        assert_eq!(first, reference);
        assert_eq!(campaign.log().cache_hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_spectrum_is_bit_identical_to_batch() {
        let dir = tmp_dir("stream-exact");
        let batch = small_campaign(&dir, CacheMode::Off).acquire(Scheme::Glut);
        for workers in [1, 2, 8] {
            let mut campaign = small_campaign(&dir, CacheMode::Off);
            campaign.config.streaming = true;
            campaign.config.workers = workers;
            let streamed = campaign.acquire_spectrum(Scheme::Glut);
            assert!(streamed.streamed);
            assert!(!streamed.cache_hit);
            assert_eq!(streamed.spectrum, batch.spectrum, "workers = {workers}");
            assert_eq!(streamed.traces_analyzed, batch.traces.len());
            assert!(streamed.class_counts.iter().all(|&c| c == 2));
            let report = campaign.log().reports().last().unwrap().clone();
            assert!(report.streamed);
            assert!(report.peak_resident >= 1);
            assert!(
                report.peak_resident <= workers,
                "uncheckpointed fold must keep at most one trace per worker"
            );
        }
    }

    #[test]
    fn streamed_cache_hit_folds_the_store_without_materializing() {
        let dir = tmp_dir("stream-hit");
        let _ = std::fs::remove_dir_all(&dir);
        let batch = small_campaign(&dir, CacheMode::ReadWrite).acquire(Scheme::Ti);
        let mut campaign = small_campaign(&dir, CacheMode::ReadWrite);
        campaign.config.streaming = true;
        let hit = campaign.acquire_spectrum(Scheme::Ti);
        assert!(hit.cache_hit);
        assert!(hit.streamed);
        assert_eq!(hit.spectrum, batch.spectrum);
        assert_eq!(hit.traces_analyzed, batch.traces.len());
        let report = campaign.log().reports().last().unwrap();
        assert_eq!(report.stats.events, 0, "hit must not simulate");
        assert_eq!(report.peak_resident, 1, "fold keeps one record resident");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spectrum_without_streaming_delegates_to_batch() {
        let dir = tmp_dir("stream-off");
        let mut campaign = small_campaign(&dir, CacheMode::Off);
        let outcome = campaign.acquire_spectrum(Scheme::Lut);
        assert!(!outcome.streamed);
        let batch = small_campaign(&dir, CacheMode::Off).acquire(Scheme::Lut);
        assert_eq!(outcome.spectrum, batch.spectrum);
        assert_eq!(
            outcome.traces_analyzed,
            outcome.class_counts.iter().sum::<usize>()
        );
    }

    #[test]
    fn finish_appends_one_line_per_run() {
        let dir = tmp_dir("finish");
        let _ = std::fs::remove_dir_all(&dir);
        let mut campaign = small_campaign(&dir, CacheMode::ReadWrite);
        campaign.acquire(Scheme::Lut);
        campaign.acquire(Scheme::Lut);
        assert_eq!(campaign.finish().expect("finish"), 2);
        let text = std::fs::read_to_string(dir.join("runs.jsonl")).expect("read");
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"cache_hit\":true"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
