//! Deterministic I/O fault injection for the durability layer.
//!
//! [`FallibleWriter`] wraps any [`Write`] sink and injects two classes
//! of failure the chaos harness cares about:
//!
//! * **ENOSPC** — the byte budget runs out: every write that would push
//!   the total past `enospc_after` bytes fails, exactly like a full
//!   disk. Deterministic per content (same bytes, same failure point).
//! * **EIO** — each write *operation* fails with a seeded probability,
//!   modelling flaky media. The coin is derived with the same SplitMix64
//!   finalizer as the capture-fault coins, so two runs with the same
//!   plan fail the same writes.
//!
//! The store and checkpoint writers (and the JSONL run log) route all
//! bytes through this wrapper; with the default [`WriteFaults::none`]
//! plan the cost is one branch per write. Injected failures surface as
//! ordinary [`std::io::Error`]s, so they exercise exactly the error
//! paths a real full disk would.

use std::io::{self, Write};

use acquisition::trace_seed;

/// Domain separation between capture-fault coins and write-fault coins.
const IO_FAULT_SALT: u64 = 0x10FA_5EED_10FA_5EED;

/// Which injected write failures are armed (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WriteFaults {
    enospc_after: Option<u64>,
    eio_rate: f64,
    seed: u64,
}

impl WriteFaults {
    /// No injected write failures (the production default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Fail every write that would push the cumulative byte count past
    /// `bytes` (an injected full disk).
    pub fn with_enospc_after(mut self, bytes: u64) -> Self {
        self.enospc_after = Some(bytes);
        self
    }

    /// Fail each write operation with probability `rate`, decided by a
    /// per-operation coin derived from `seed`.
    pub fn with_eio_rate(mut self, seed: u64, rate: f64) -> Self {
        self.seed = seed;
        self.eio_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.enospc_after.is_some() || self.eio_rate > 0.0
    }
}

/// A [`Write`] adapter that injects [`WriteFaults`] deterministically.
#[derive(Debug)]
pub struct FallibleWriter<W> {
    inner: W,
    faults: WriteFaults,
    written: u64,
    ops: u64,
}

impl<W> FallibleWriter<W> {
    /// Wrap `inner`; a [`WriteFaults::none`] plan is pass-through.
    pub fn new(inner: W, faults: WriteFaults) -> Self {
        Self {
            inner,
            faults,
            written: 0,
            ops: 0,
        }
    }

    /// The wrapped sink (e.g. to `sync_data` the underlying file).
    pub fn get_ref(&self) -> &W {
        &self.inner
    }
}

impl<W: Write> Write for FallibleWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let op = self.ops;
        self.ops += 1;
        if let Some(limit) = self.faults.enospc_after {
            if self.written.saturating_add(buf.len() as u64) > limit {
                return Err(io::Error::other(
                    "injected write fault: no space left on device (ENOSPC)",
                ));
            }
        }
        if self.faults.eio_rate > 0.0 {
            let coin = trace_seed(self.faults.seed ^ IO_FAULT_SALT, op);
            if (coin as f64 / u64::MAX as f64) < self.faults.eio_rate {
                return Err(io::Error::other(
                    "injected write fault: input/output error (EIO)",
                ));
            }
        }
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_passes_bytes_through() {
        let mut w = FallibleWriter::new(Vec::new(), WriteFaults::none());
        assert!(!WriteFaults::none().is_active());
        w.write_all(b"hello").expect("write");
        w.write_all(b" world").expect("write");
        w.flush().expect("flush");
        assert_eq!(w.get_ref(), b"hello world");
    }

    #[test]
    fn enospc_fires_exactly_at_the_byte_budget() {
        let faults = WriteFaults::none().with_enospc_after(8);
        assert!(faults.is_active());
        let mut w = FallibleWriter::new(Vec::new(), faults);
        w.write_all(b"12345678").expect("fits the budget");
        let err = w.write_all(b"x").expect_err("budget exhausted");
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        // Nothing past the budget ever lands in the sink.
        assert_eq!(w.get_ref(), b"12345678");
    }

    #[test]
    fn eio_is_deterministic_and_seed_sensitive() {
        let run = |seed: u64| -> Vec<bool> {
            let mut w =
                FallibleWriter::new(io::sink(), WriteFaults::none().with_eio_rate(seed, 0.3));
            (0..200).map(|_| w.write(b"x").is_err()).collect()
        };
        let a = run(1);
        assert_eq!(a, run(1), "same seed, same failing writes");
        assert_ne!(a, run(2), "seed must move the failures");
        let failures = a.iter().filter(|&&f| f).count();
        assert!((20..120).contains(&failures), "30% of 200 ~ 60: {failures}");
    }
}
