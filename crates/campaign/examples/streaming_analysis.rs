//! Memory-bounded leakage analysis: fold every trace into online
//! accumulators instead of materializing the set.
//!
//! Run with `cargo run --release -p sca-campaign --example
//! streaming_analysis`. The streamed spectrum is bit-identical to the
//! batch path (the default `SumMode::Exact` fold is order- and
//! merge-invariant), but peak memory is O(classes × samples) instead of
//! O(traces): the run report's `peak_resident` counts the traces that
//! were ever simultaneously in flight — at most one per worker.

use campaign::{CacheMode, Campaign, CampaignConfig};
use sbox_circuits::Scheme;

fn main() {
    let config = CampaignConfig {
        streaming: true,       // default SumMode::Exact: bit-identical
        cache: CacheMode::Off, // demo: always simulate
        ..CampaignConfig::default()
    };
    let workers = config.workers;
    let mut campaign = Campaign::new(config);

    println!("scheme     traces      TLP            peak-resident  merge-depth");
    for scheme in [Scheme::Lut, Scheme::Glut, Scheme::Isw] {
        let outcome = campaign.acquire_spectrum(scheme);
        let report = campaign.log().reports().last().expect("one report per run");
        println!(
            "{:10} {:>6}      {:.6e}   {:>13} {:>12}",
            scheme.label(),
            outcome.traces_analyzed,
            outcome.spectrum.total_leakage_power(),
            report.peak_resident,
            report.merge_depth,
        );
    }
    println!(
        "\n(workers = {}; a batch run would have held all traces of a cell in memory)",
        if workers == 0 {
            "all cores".to_string()
        } else {
            workers.to_string()
        }
    );
}
