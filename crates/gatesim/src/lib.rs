//! Event-driven gate-level timing simulation with an analog power model.
//!
//! This crate is the workspace's substitute for the paper's transistor-level
//! HSpice runs. It reproduces the *logical* leakage mechanisms the paper
//! studies:
//!
//! * **Races and glitches** — every gate has a nominal propagation delay
//!   plus a seeded per-instance process-variation jitter; unequal arrival
//!   times create genuine spurious output transitions. An inertial-delay
//!   rule absorbs pulses narrower than a gate's delay, but absorbed pulses
//!   still dissipate a configurable fraction of a full swing's energy (a
//!   partial output excursion costs current in real CMOS too).
//! * **Additive power** — each output transition injects a triangular
//!   current pulse whose charge comes from the cell's intrinsic switching
//!   energy plus the fanout load capacitance at the configured Vdd. The sum
//!   of all pulses, sampled at 50 GS/s over a 2 ns window, is the power
//!   trace — the additive Hamming-weight-like leakage on which the paper's
//!   Theorem 1 and Walsh–Hadamard analysis rest.
//! * **Aging hooks** — a [`Derating`] table (produced by the `aging` crate)
//!   scales per-gate delay and drive current, slowing edges and shrinking
//!   trace amplitude exactly as threshold-voltage drift does.
//!
//! # Example
//!
//! ```
//! use sbox_netlist::NetlistBuilder;
//! use gatesim::{SamplingConfig, SimConfig, Simulator};
//!
//! # fn main() -> Result<(), sbox_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("chain");
//! let a = b.input("a");
//! let x = b.not(a);
//! let y = b.not(x);
//! b.output("y", y);
//! let netlist = b.finish()?;
//!
//! let sim = Simulator::new(&netlist, &SimConfig::default());
//! let record = sim.transition(&[false], &[true]);
//! assert_eq!(record.events.len(), 2); // both inverters switch
//!
//! let trace = sim.capture(&[false], &[true], &SamplingConfig::default());
//! assert_eq!(trace.len(), 100);
//! assert!(trace.iter().sum::<f64>() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitsliced;
mod config;
mod derating;
mod engine;
mod power;
mod profile;
mod session;
pub mod vcd;

pub use bitsliced::{BitsliceUnsupported, BitslicedSession, LaneStimulus, LANES};
pub use config::{SamplingConfig, SimConfig};
pub use derating::Derating;
pub use engine::{CaptureStats, Simulator, SwitchEvent, TransitionRecord};
pub use power::{sample_waveform, sample_waveform_into, PulseShape};
pub use profile::ActivityProfile;
pub use session::CaptureSession;
