//! Rendering switch events into sampled power waveforms.

use rand::Rng;
use sbox_netlist::GateId;

use crate::{SamplingConfig, SwitchEvent};

/// Shape of the current pulse a transition injects into the supply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PulseShape {
    /// Isoceles triangle (default; resembles a CMOS charging current).
    #[default]
    Triangular,
    /// Flat-top pulse of the same charge (ablation variant).
    Rectangular,
}

/// Render `events` into a power trace in milliwatts.
///
/// Each event becomes a pulse starting at its `time_ps`, of width
/// `pulse_width_factor ×` the switching gate's delay (queried through
/// `gate_delay_ps`), carrying the event's full energy. Sample `k` is the
/// *bin-averaged* power over `[k·dt, (k+1)·dt)` — a band-limited
/// acquisition, so no pulse can fall between samples and the trace
/// integrates exactly to the total switching energy (power is additive,
/// the physical premise of the paper's Theorem 1).
pub fn sample_waveform(
    events: &[SwitchEvent],
    sampling: &SamplingConfig,
    pulse_width_factor: f64,
    gate_delay_ps: impl Fn(GateId) -> f64,
    shape: PulseShape,
) -> Vec<f64> {
    let mut samples = Vec::new();
    sample_waveform_into(
        &mut samples,
        events,
        sampling,
        pulse_width_factor,
        gate_delay_ps,
        shape,
    );
    samples
}

/// [`sample_waveform`] into a caller-owned buffer (cleared and resized
/// to `sampling.samples`), so capture loops reuse one allocation.
///
/// Each event touches only the `[first, last)` bins its pulse overlaps
/// — a narrow pulse late in the window costs a handful of bins, not a
/// scan of the whole buffer.
pub fn sample_waveform_into(
    out: &mut Vec<f64>,
    events: &[SwitchEvent],
    sampling: &SamplingConfig,
    pulse_width_factor: f64,
    gate_delay_ps: impl Fn(GateId) -> f64,
    shape: PulseShape,
) {
    let dt = sampling.period_ps();
    out.clear();
    out.resize(sampling.samples, 0.0);
    for e in events {
        let width = (pulse_width_factor * gate_delay_ps(e.gate)).max(1e-3);
        let start = e.time_ps;
        let end = start + width;
        let first = (((start / dt).floor().max(0.0)) as usize).min(sampling.samples);
        let last = ((end / dt).ceil() as usize).min(sampling.samples);
        for (k, slot) in out[first..last.max(first)].iter_mut().enumerate() {
            let k = k + first;
            let bin_lo = k as f64 * dt;
            let bin_hi = bin_lo + dt;
            let xa = ((bin_lo - start) / width).clamp(0.0, 1.0);
            let xb = ((bin_hi - start) / width).clamp(0.0, 1.0);
            let frac = pulse_cdf(shape, xb) - pulse_cdf(shape, xa);
            if frac > 0.0 {
                *slot += e.energy_fj * frac / dt; // fJ / ps = mW
            }
        }
    }
}

/// Fraction of a unit-energy pulse's charge delivered before normalized
/// time `x ∈ [0, 1]`.
pub(crate) fn pulse_cdf(shape: PulseShape, x: f64) -> f64 {
    match shape {
        PulseShape::Rectangular => x,
        PulseShape::Triangular => {
            if x < 0.5 {
                2.0 * x * x
            } else {
                1.0 - 2.0 * (1.0 - x) * (1.0 - x)
            }
        }
    }
}

/// A standard normal sample via Box–Muller (avoids a `rand_distr`
/// dependency).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn event(t: f64, e: f64) -> SwitchEvent {
        SwitchEvent {
            gate: gate_id(),
            time_ps: t,
            rising: true,
            energy_fj: e,
            absorbed: false,
        }
    }

    fn gate_id() -> GateId {
        // Build a 1-gate netlist just to mint a GateId.
        use sbox_netlist::NetlistBuilder;
        let mut b = NetlistBuilder::new("g");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        nl.net(y).driver().expect("driven")
    }

    #[test]
    fn pulse_integrates_to_its_energy() {
        let sampling = SamplingConfig {
            window_ps: 400.0,
            samples: 400, // 1 ps resolution for an accurate integral
        };
        for shape in [PulseShape::Triangular, PulseShape::Rectangular] {
            let samples = sample_waveform(&[event(50.0, 10.0)], &sampling, 4.0, |_| 10.0, shape);
            let integral: f64 = samples.iter().sum::<f64>() * sampling.period_ps();
            assert!(
                (integral - 10.0).abs() < 0.8,
                "{shape:?}: integral {integral}"
            );
        }
    }

    #[test]
    fn overlapping_pulses_add() {
        let sampling = SamplingConfig {
            window_ps: 100.0,
            samples: 100,
        };
        let one = sample_waveform(
            &[event(10.0, 5.0)],
            &sampling,
            2.0,
            |_| 10.0,
            PulseShape::Triangular,
        );
        let two = sample_waveform(
            &[event(10.0, 5.0), event(10.0, 5.0)],
            &sampling,
            2.0,
            |_| 10.0,
            PulseShape::Triangular,
        );
        for (a, b) in one.iter().zip(&two) {
            assert!((2.0 * a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn events_outside_the_window_are_clipped() {
        let sampling = SamplingConfig {
            window_ps: 100.0,
            samples: 100,
        };
        let samples = sample_waveform(
            &[event(500.0, 5.0)],
            &sampling,
            2.0,
            |_| 10.0,
            PulseShape::Triangular,
        );
        assert!(samples.iter().all(|&s| s == 0.0));
    }

    /// The pre-fix implementation (iterator `.take(last).skip(first)`
    /// over the whole buffer), kept verbatim as the reference for the
    /// slice-indexing rewrite.
    fn reference_sample_waveform(
        events: &[SwitchEvent],
        sampling: &SamplingConfig,
        pulse_width_factor: f64,
        gate_delay_ps: impl Fn(GateId) -> f64,
        shape: PulseShape,
    ) -> Vec<f64> {
        let dt = sampling.period_ps();
        let mut samples = vec![0.0f64; sampling.samples];
        for e in events {
            let width = (pulse_width_factor * gate_delay_ps(e.gate)).max(1e-3);
            let start = e.time_ps;
            let end = start + width;
            let first = ((start / dt).floor().max(0.0)) as usize;
            let last = ((end / dt).ceil() as usize).min(sampling.samples);
            for (k, slot) in samples
                .iter_mut()
                .enumerate()
                .take(last)
                .skip(first.min(sampling.samples))
            {
                let bin_lo = k as f64 * dt;
                let bin_hi = bin_lo + dt;
                let xa = ((bin_lo - start) / width).clamp(0.0, 1.0);
                let xb = ((bin_hi - start) / width).clamp(0.0, 1.0);
                let frac = pulse_cdf(shape, xb) - pulse_cdf(shape, xa);
                if frac > 0.0 {
                    *slot += e.energy_fj * frac / dt;
                }
            }
        }
        samples
    }

    #[test]
    fn sliced_indexing_matches_the_old_path_on_random_event_sets() {
        let gate = gate_id();
        let mut rng = SmallRng::seed_from_u64(0xFACE);
        for case in 0..50 {
            let sampling = SamplingConfig {
                window_ps: 500.0,
                samples: 1 + (rng.gen::<usize>() % 400),
            };
            let n = rng.gen::<usize>() % 40;
            let events: Vec<SwitchEvent> = (0..n)
                .map(|_| SwitchEvent {
                    gate,
                    // Include events before, inside, at the edge of, and
                    // beyond the sampling window.
                    time_ps: rng.gen::<f64>() * 700.0 - 50.0,
                    rising: rng.gen(),
                    energy_fj: rng.gen::<f64>() * 10.0,
                    absorbed: rng.gen(),
                })
                .collect();
            let delay = 1.0 + rng.gen::<f64>() * 20.0;
            for shape in [PulseShape::Triangular, PulseShape::Rectangular] {
                let new = sample_waveform(&events, &sampling, 1.5, |_| delay, shape);
                let old = reference_sample_waveform(&events, &sampling, 1.5, |_| delay, shape);
                assert_eq!(new, old, "case {case} {shape:?}");
            }
        }
    }

    #[test]
    fn narrow_pulse_near_the_window_end_touches_only_its_bins() {
        let sampling = SamplingConfig {
            window_ps: 1000.0,
            samples: 1000, // 1 ps bins
        };
        // A 2 ps pulse starting at 995 ps: only the last handful of bins
        // may be nonzero — the slice rewrite never visits bins [0, 995).
        let samples = sample_waveform(
            &[event(995.0, 4.0)],
            &sampling,
            2.0,
            |_| 1.0,
            PulseShape::Rectangular,
        );
        assert!(samples[..995].iter().all(|&s| s == 0.0));
        assert!(samples[995..].iter().any(|&s| s > 0.0));
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
