//! Workload activity profiling — the bridge from simulation to aging.
//!
//! BTI stress depends on how long each transistor sits in its stressed
//! state (≈ signal probability of the gate output), HCI on how often it
//! switches. [`ActivityProfile`] accumulates both over a representative
//! stimulus sequence.

use sbox_netlist::Netlist;

use crate::Simulator;

/// Per-gate activity statistics accumulated over a stimulus sequence.
///
/// # Example
///
/// ```
/// use sbox_netlist::NetlistBuilder;
/// use gatesim::{ActivityProfile, SimConfig, Simulator};
///
/// # fn main() -> Result<(), sbox_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("inv");
/// let a = b.input("a");
/// let y = b.not(a);
/// b.output("y", y);
/// let nl = b.finish()?;
/// let sim = Simulator::new(&nl, &SimConfig::default());
/// let vectors = vec![vec![false], vec![true], vec![false], vec![true]];
/// let profile = ActivityProfile::collect(&sim, &vectors);
/// // The inverter output toggles on every vector change.
/// assert!((profile.toggle_rate(0) - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityProfile {
    /// Fraction of settled cycles each gate's output spends high.
    signal_probability: Vec<f64>,
    /// Average full output transitions per applied vector.
    toggle_rate: Vec<f64>,
    /// Number of vectors profiled.
    vectors: usize,
}

impl ActivityProfile {
    /// Simulate the vector sequence (each vector applied after the
    /// previous one settles) and accumulate per-gate statistics.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or any vector has the wrong width.
    pub fn collect(sim: &Simulator<'_>, vectors: &[Vec<bool>]) -> Self {
        assert!(!vectors.is_empty(), "need at least one stimulus vector");
        let netlist = sim.netlist();
        let n_gates = netlist.gates().len();
        let mut high_cycles = vec![0usize; n_gates];
        let mut toggles = vec![0usize; n_gates];
        let mut prev = vectors[0].clone();
        // Count the settled state of the first vector too.
        let first = netlist.evaluate_nets(&prev);
        for (g, gate) in netlist.gates().iter().enumerate() {
            if first[gate.output().index()] {
                high_cycles[g] += 1;
            }
        }
        let mut session = sim.session();
        for v in &vectors[1..] {
            let (events, settled) = session.simulate(&prev, v);
            for e in events {
                if !e.absorbed {
                    toggles[e.gate.index()] += 1;
                }
            }
            for (g, gate) in netlist.gates().iter().enumerate() {
                if settled[gate.output().index()] {
                    high_cycles[g] += 1;
                }
            }
            prev = v.clone();
        }
        let n = vectors.len() as f64;
        let transitions = (vectors.len() - 1).max(1) as f64;
        Self {
            signal_probability: high_cycles.iter().map(|&h| h as f64 / n).collect(),
            toggle_rate: toggles.iter().map(|&t| t as f64 / transitions).collect(),
            vectors: vectors.len(),
        }
    }

    /// Uniform default profile (every output high half the time, toggling
    /// once per two vectors) for a netlist — used when no workload is
    /// available.
    pub fn uniform(netlist: &Netlist) -> Self {
        let n = netlist.gates().len();
        Self {
            signal_probability: vec![0.5; n],
            toggle_rate: vec![0.5; n],
            vectors: 0,
        }
    }

    /// Fraction of settled cycles gate `g`'s output spends high.
    pub fn signal_probability(&self, g: usize) -> f64 {
        self.signal_probability[g]
    }

    /// Average full transitions of gate `g` per applied vector.
    pub fn toggle_rate(&self, g: usize) -> f64 {
        self.toggle_rate[g]
    }

    /// Number of gates profiled.
    pub fn len(&self) -> usize {
        self.signal_probability.len()
    }

    /// Whether the profile covers zero gates.
    pub fn is_empty(&self) -> bool {
        self.signal_probability.is_empty()
    }

    /// Number of stimulus vectors profiled.
    pub fn vectors(&self) -> usize {
        self.vectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use sbox_netlist::NetlistBuilder;

    #[test]
    fn signal_probability_counts_settled_highs() {
        let mut b = NetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let sim = Simulator::new(&nl, &SimConfig::default());
        // Inputs: 0,0,0,1 → output high for 3 of 4 settled cycles.
        let vecs = vec![vec![false], vec![false], vec![false], vec![true]];
        let p = ActivityProfile::collect(&sim, &vecs);
        assert!((p.signal_probability(0) - 0.75).abs() < 1e-12);
        assert_eq!(p.vectors(), 4);
    }

    #[test]
    fn uniform_profile_is_half() {
        let mut b = NetlistBuilder::new("two");
        let a = b.input("a");
        let x = b.not(a);
        let y = b.not(x);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let p = ActivityProfile::uniform(&nl);
        assert_eq!(p.len(), 2);
        assert_eq!(p.signal_probability(1), 0.5);
    }
}
