//! Per-gate derating produced by aging (or any other wearout/corner model).

use sbox_netlist::Netlist;

/// Multiplicative per-gate derating factors applied on top of the nominal
/// cell parameters.
///
/// * `delay_factor[g] ≥ 1` stretches gate `g`'s propagation delay (and its
///   current pulse), as a higher threshold voltage does.
/// * `current_factor[g] ≤ 1` scales the charge it draws per transition
///   (reduced drive / short-circuit current).
///
/// A fresh (unaged) device is [`Derating::fresh`]. The `aging` crate builds
/// aged tables from stress profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Derating {
    delay_factor: Vec<f64>,
    current_factor: Vec<f64>,
}

impl Derating {
    /// Identity derating (fresh silicon) for a netlist's gates.
    pub fn fresh(netlist: &Netlist) -> Self {
        let n = netlist.gates().len();
        Self {
            delay_factor: vec![1.0; n],
            current_factor: vec![1.0; n],
        }
    }

    /// Build from explicit per-gate factors.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths or contain
    /// non-positive values.
    pub fn from_factors(delay_factor: Vec<f64>, current_factor: Vec<f64>) -> Self {
        assert_eq!(delay_factor.len(), current_factor.len());
        assert!(
            delay_factor
                .iter()
                .chain(&current_factor)
                .all(|&f| f > 0.0 && f.is_finite()),
            "derating factors must be positive and finite"
        );
        Self {
            delay_factor,
            current_factor,
        }
    }

    /// Number of gates covered.
    pub fn len(&self) -> usize {
        self.delay_factor.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.delay_factor.is_empty()
    }

    /// Delay stretch factor of gate `g`.
    pub fn delay_factor(&self, g: usize) -> f64 {
        self.delay_factor[g]
    }

    /// Drive-current scale factor of gate `g`.
    pub fn current_factor(&self, g: usize) -> f64 {
        self.current_factor[g]
    }

    /// Mean delay factor across all gates (a quick ageing indicator).
    pub fn mean_delay_factor(&self) -> f64 {
        if self.delay_factor.is_empty() {
            return 1.0;
        }
        self.delay_factor.iter().sum::<f64>() / self.delay_factor.len() as f64
    }

    /// Mean current factor across all gates.
    pub fn mean_current_factor(&self) -> f64 {
        if self.current_factor.is_empty() {
            return 1.0;
        }
        self.current_factor.iter().sum::<f64>() / self.current_factor.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_netlist::NetlistBuilder;

    #[test]
    fn fresh_is_identity() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let d = Derating::fresh(&nl);
        assert_eq!(d.len(), 1);
        assert_eq!(d.delay_factor(0), 1.0);
        assert_eq!(d.current_factor(0), 1.0);
        assert_eq!(d.mean_delay_factor(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_factors() {
        let _ = Derating::from_factors(vec![0.0], vec![1.0]);
    }
}
