//! The bit-sliced capture backend: [`LANES`] traces per levelized pass.
//!
//! A [`BitslicedSession`] levelizes the netlist once into a flat
//! straight-line program (structure-of-arrays node storage, packed
//! 16-bit truth tables evaluated as bitwise multiplexer folds over
//! `u64` lane words) and captures up to [`LANES`] stimuli per pass.
//! Unlike the classic zero-delay levelized simulators, the backend does
//! not approximate glitching: it replays the *event-driven* engine
//! exactly, coalescing the independent per-lane event streams into one
//! mask-carrying event queue.
//!
//! # Why coalescing is exact
//!
//! Gate delays and energies are per-gate constants of the `Simulator`
//! (process variation is sampled at construction), so they are
//! *lane-independent*: an event of gate `g` triggered at time `t`
//! commits at `t + delay(g)` in every lane alike. The coalesced queue
//! stores one entry per *push group* — `(time, seq, gate)` plus a lane
//! mask held in the gate's pending list — where a push group is the set
//! of lanes scheduled by one coalesced re-evaluation. Within any single
//! lane, push groups occur in exactly the order the scalar engine would
//! push that lane's events (the fan-out walk is the same CSR edge
//! order, and the inertial-delay keep/revoke rules are applied per lane
//! by mask algebra), and the global `(time, seq)` pop order restricted
//! to one lane therefore equals the scalar engine's `(time, seq)` order
//! for that lane. Since lanes never interact — net values are per-lane
//! bits — each lane's event log comes out identical to a scalar run.
//!
//! # Why the amortization works
//!
//! The number of *distinct* `(gate, commit-time)` groups a batch excites
//! is bounded by the netlist's activated path-delay sums, not by the
//! lane count: on the paper's ISW netlist, 64-lane batches pop ~14
//! groups per trace but 1024-lane batches pop ~1 — the per-group queue,
//! evaluation, and pulse-rendering costs are shared by every lane in
//! the group's mask. The pulse math amortizes twice over: the charge
//! fractions per sample bin depend only on the pop's `(time, width)`,
//! so they are computed once per pop and reused — bit-exactly — by
//! every commit entry the pop emits, whatever its swing energy. All
//! remaining per-lane work lives in the renderer: the event loop
//! appends `(time, contribution, lane list)` records to one global log
//! in pop order, a single stable sort by time reproduces every lane's
//! scalar insertion-sort order simultaneously (the scalar per-lane log
//! order *is* the pop order restricted to that lane), and the
//! precomputed per-bin contributions are then accumulated bin-major —
//! one lane-indexed `+=` per (event, lane, bin), the exact add
//! sequence, in the exact order, the scalar renderer performs.
//!
//! # The static support check
//!
//! The induction above needs commit times to be *strictly greater* than
//! their trigger times: `t + delay > t` in `f64`. [`Simulator`] derated
//! delays are positive by construction, but an extreme derating factor
//! can push a delay below the f64 resolution of ps-scale timestamps
//! (`t + delay == t`), collapsing a gate's commit onto its trigger and
//! voiding the ordering argument. [`BitslicedSession::try_new`] rejects
//! such netlists with a typed [`BitsliceUnsupported`] error — so
//! callers (the `auto` backend) route them to the event-driven path
//! instead of risking silent divergence.
//!
//! [`CaptureSession`]: crate::CaptureSession

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::engine::CaptureStats;
use crate::power::{gaussian, pulse_cdf, PulseShape};
use crate::{SamplingConfig, Simulator};

/// `u64` words per lane mask. 16 words (1024 lanes) is past the knee
/// where the distinct `(gate, time)` group count saturates structurally
/// on the paper's netlists, so the per-group costs amortize to ~one pop
/// per trace.
const W: usize = 16;

/// Number of traces captured per bit-sliced pass (64 per mask word).
pub const LANES: usize = 64 * W;

/// A lane mask: one bit per trace in the batch.
type Mask = [u64; W];

const ZERO_MASK: Mask = [0u64; W];

#[inline]
fn mask_is_zero(m: &Mask) -> bool {
    m.iter().all(|&w| w == 0)
}

/// Delays below this (in ps) can make `t + delay` round to `t` at
/// ps-scale event times, which breaks the cross-lane ordering proof —
/// the static support check rejects them.
const MIN_DELAY_PS: f64 = 1e-6;

/// A netlist/derating combination the bit-sliced backend cannot replay
/// exactly; route it to the event-driven engine instead.
#[derive(Debug, Clone, PartialEq)]
pub struct BitsliceUnsupported {
    /// Index of the offending gate.
    pub gate: usize,
    /// Its derated delay in ps.
    pub delay_ps: f64,
}

impl std::fmt::Display for BitsliceUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bit-sliced backend unsupported: gate {} has derated delay {} ps \
             (< {MIN_DELAY_PS} ps); glitch order may depend on f64 time ties, \
             use the event-driven backend",
            self.gate, self.delay_ps
        )
    }
}

impl std::error::Error for BitsliceUnsupported {}

/// One lane's stimulus for a bit-sliced batch capture.
#[derive(Debug, Clone, Copy)]
pub struct LaneStimulus<'s> {
    /// Primary-input values the circuit settles into before t = 0.
    pub initial: &'s [bool],
    /// Primary-input values applied at t = 0.
    pub final_inputs: &'s [bool],
    /// Seed for this lane's measurement-noise generator (only used when
    /// `SimConfig::noise_mw > 0`), matching the per-trace `SmallRng`
    /// the scalar acquisition path seeds.
    pub noise_seed: u64,
}

/// A queue entry: one coalesced push group. The group's lane mask lives
/// in the gate's pending list (looked up by `seq` on pop), keeping
/// queue entries small and revocation free of queue surgery.
#[derive(Debug, Clone, Copy)]
struct QueuedGroup {
    time_ps: f64,
    seq: u32,
    gate: u32,
}

impl QueuedGroup {
    fn cmp_key(&self, other: &Self) -> std::cmp::Ordering {
        self.time_ps
            .total_cmp(&other.time_ps)
            .then(self.seq.cmp(&other.seq))
    }
}

/// A pending output change for a subset of lanes of one gate: pushed by
/// one coalesced `schedule`, awaiting its commit pop (or revocation).
#[derive(Debug, Clone, Copy)]
struct PendGroup {
    time_ps: f64,
    seq: u32,
    mask: Mask,
}

/// The global event log, structure-of-arrays, in pop (append) order.
///
/// Each record is one rendered pulse — a span of the shared
/// contribution arena — applied at `time` to the lanes of its span.
/// Lane lists are extracted from the group masks at append time — while
/// the mask is still register/L1-hot — so the render passes never
/// re-walk 128-byte masks. A stable sort by `time` reproduces the
/// scalar engine's per-lane log order in every lane at once.
#[derive(Debug, Default)]
struct EventLog {
    time: Vec<f64>,
    /// `contribution index << 1 | absorbed`.
    meta: Vec<u32>,
    /// `(offset, len)` spans into `lanes`.
    lanes_span: Vec<(u32, u32)>,
    lanes: Vec<u16>,
}

impl EventLog {
    fn clear(&mut self) {
        self.time.clear();
        self.meta.clear();
        self.lanes_span.clear();
        self.lanes.clear();
    }

    fn push(&mut self, t: f64, contrib: u32, absorbed: bool, mask: &Mask) {
        let off = self.lanes.len() as u32;
        for (w, &bits) in mask.iter().enumerate() {
            let mut bits = bits;
            let base = (w * 64) as u16;
            while bits != 0 {
                self.lanes.push(base + bits.trailing_zeros() as u16);
                bits &= bits - 1;
            }
        }
        self.time.push(t);
        self.meta.push(contrib << 1 | absorbed as u32);
        self.lanes_span.push((off, self.lanes.len() as u32 - off));
    }
}

/// Same cap and ordering contract as the scalar session's bucket queue.
const MAX_BUCKETS: usize = 1 << 16;

/// The scalar session's indexed bucket queue over coalesced push
/// groups. Pop order is `(time_ps, seq)` — see `session.rs` for the
/// ordering argument, which only relies on pushed times exceeding all
/// popped times (guaranteed by the `MIN_DELAY_PS` support check).
#[derive(Debug, Default)]
struct GroupQueue {
    inv_width: f64,
    buckets: Vec<Vec<QueuedGroup>>,
    current: usize,
    cursor: usize,
    open: bool,
    len: usize,
}

impl GroupQueue {
    fn new(width_ps: f64) -> Self {
        Self {
            inv_width: 1.0 / width_ps.max(1e-3),
            ..Self::default()
        }
    }

    fn reset(&mut self) {
        if self.len > 0 {
            for bucket in &mut self.buckets {
                bucket.clear();
            }
        }
        self.current = 0;
        self.cursor = 0;
        self.open = false;
        self.len = 0;
    }

    fn push(&mut self, ev: QueuedGroup) {
        let mut idx = ((ev.time_ps * self.inv_width) as usize).min(MAX_BUCKETS - 1);
        if idx <= self.current {
            if self.open {
                self.insert_into_open(ev);
                return;
            }
            idx = self.current;
        }
        if idx >= self.buckets.len() {
            self.buckets.resize_with(idx + 1, Vec::new);
        }
        self.buckets[idx].push(ev);
        self.len += 1;
    }

    fn insert_into_open(&mut self, ev: QueuedGroup) {
        let bucket = &mut self.buckets[self.current];
        let mut at = self.cursor;
        while at < bucket.len() && bucket[at].cmp_key(&ev).is_lt() {
            at += 1;
        }
        bucket.insert(at, ev);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<QueuedGroup> {
        if self.len == 0 {
            return None;
        }
        if !self.open {
            while self.buckets[self.current].is_empty() {
                self.current += 1;
            }
            self.buckets[self.current].sort_unstable_by(QueuedGroup::cmp_key);
            self.cursor = 0;
            self.open = true;
        }
        let ev = self.buckets[self.current][self.cursor];
        self.cursor += 1;
        self.len -= 1;
        if self.cursor == self.buckets[self.current].len() {
            self.buckets[self.current].clear();
            self.current += 1;
            self.cursor = 0;
            self.open = false;
        }
        Some(ev)
    }
}

/// A bit-sliced levelized capture arena bound to one [`Simulator`].
///
/// Create with [`Simulator::bitsliced_session`]; call
/// [`capture_batch`](Self::capture_batch) with up to [`LANES`] stimuli.
/// Each returned trace and [`CaptureStats`] is bit-for-bit identical to
/// what [`CaptureSession::capture_into`] produces for the same stimulus
/// and noise seed — the backends are interchangeable per trace.
///
/// [`CaptureSession::capture_into`]: crate::CaptureSession::capture_into
#[derive(Debug)]
pub struct BitslicedSession<'a> {
    sim: &'a Simulator<'a>,
    // --- the levelized straight-line program (built once) ---
    /// CSR fan-in: gate `g` reads nets
    /// `input_nets[input_offsets[g] .. input_offsets[g + 1]]` (≤ 4).
    input_offsets: Vec<u32>,
    input_nets: Vec<u32>,
    /// Per-gate truth table expanded to broadcast lane words:
    /// `tab_masks[tab_offsets[g] + p]` is all-ones iff output bit `p` of
    /// the table is set. The multiplexer fold consumes a copy per word.
    tab_offsets: Vec<u32>,
    tab_masks: Vec<u64>,
    output_nets: Vec<u32>,
    /// CSR fan-out as loading *gate* indices per net, one entry per
    /// connected pin in netlist load order — the scalar engine's exact
    /// scheduling order (duplicates are idempotent re-evaluations).
    load_offsets: Vec<u32>,
    load_gates: Vec<u32>,
    /// Topological order (raw gate indices): the levelized program.
    topo: Vec<u32>,
    delay_ps: Vec<f64>,
    energy_fj: Vec<f64>,
    absorbed_frac: f64,
    pulse_width_factor: f64,
    noise_mw: f64,
    // --- per-capture lane state ---
    /// Per-net lane values, one mask per net.
    values: Vec<Mask>,
    /// Per-gate pending push groups (disjoint masks, found by seq).
    pend: Vec<Vec<PendGroup>>,
    /// Per-gate union of pending-group masks.
    pend_mask: Vec<Mask>,
    /// Per-gate pending output value per lane (valid under `pend_mask`).
    pend_val: Vec<Mask>,
    /// Per-gate recent commit groups inside the 3·delay swing window,
    /// time-ascending; a lane's last switch time is the newest entry
    /// containing it (older-than-window commits mean a full swing, same
    /// as never having switched — `min(1.0)` saturates either way).
    recent: Vec<std::collections::VecDeque<(f64, Mask)>>,
    touched: Vec<u32>,
    queue: GroupQueue,
    seq: u32,
    // --- per-capture log and rendering ---
    log: EventLog,
    /// Log indices stably sorted by `time` for rendering.
    order: Vec<u32>,
    /// Scratch for the absorbed-entry side of the render merge.
    absorbed_order: Vec<u32>,
    /// Contribution arena: `contrib_index[c]` is an `(offset, len)` span
    /// of `(bin, Δpower)` pairs — one precomputed pulse rendering,
    /// shared by every lane the referencing log entries list.
    contrib_index: Vec<(u32, u32)>,
    contrib_pairs: Vec<(u32, f64)>,
    /// Per-pop charge-fraction cache: `(bin, frac)` for the pop's
    /// `(time, width)`, shared by all its commit entries.
    fracs: Vec<(u32, f64)>,
    /// Current capture's sampling bin width (ps) and bin count, so the
    /// event loop can render pulse contributions as it pops.
    dt: f64,
    samples: usize,
    /// Per-bin work lists for the accumulate pass: `(lane-span offset,
    /// lane-span len, Δpower)` in sorted log order, so each 8 KB
    /// accumulator row is filled while L1-resident instead of strided
    /// across the whole accumulator.
    bin_work: Vec<Vec<(u32, u32, f64)>>,
    /// Bin-major accumulator: `acc[bin * LANES + lane]`. Only rows with
    /// bin work are zeroed and accumulated; the transpose emits zeros
    /// for the rest without touching them.
    acc: Vec<f64>,
    counts_events: Vec<u32>,
    counts_absorbed: Vec<u32>,
    settle_seen: Vec<bool>,
    settle_buf: Vec<f64>,
    traces: Vec<Vec<f64>>,
    stats: Vec<CaptureStats>,
}

/// Compute the pulse charge fractions per overlapped sample bin — the
/// bin loop of `sample_waveform_into`, verbatim, with the event's
/// energy factored out. Only bins with positive fraction are stored,
/// matching the scalar renderer's `frac > 0.0` guard; a contribution
/// later derived as `energy * frac / dt` is therefore the exact value,
/// and the exact add, the scalar path performs for the same event.
fn compute_fracs(fracs: &mut Vec<(u32, f64)>, t: f64, raw_width: f64, dt: f64, samples: usize) {
    fracs.clear();
    let width = raw_width.max(1e-3);
    let start = t;
    let end = start + width;
    let first = (((start / dt).floor().max(0.0)) as usize).min(samples);
    let last = ((end / dt).ceil() as usize).min(samples);
    for k in first..last.max(first) {
        let bin_lo = k as f64 * dt;
        let bin_hi = bin_lo + dt;
        let xa = ((bin_lo - start) / width).clamp(0.0, 1.0);
        let xb = ((bin_hi - start) / width).clamp(0.0, 1.0);
        let frac = pulse_cdf(PulseShape::Triangular, xb) - pulse_cdf(PulseShape::Triangular, xa);
        if frac > 0.0 {
            fracs.push((k as u32, frac));
        }
    }
}

/// Materialize one event's contribution span from cached fractions.
fn push_contrib(
    index: &mut Vec<(u32, u32)>,
    pairs: &mut Vec<(u32, f64)>,
    fracs: &[(u32, f64)],
    energy: f64,
    dt: f64,
) -> u32 {
    let off = pairs.len() as u32;
    for &(k, frac) in fracs {
        pairs.push((k, energy * frac / dt));
    }
    let idx = index.len() as u32;
    index.push((off, pairs.len() as u32 - off));
    idx
}

impl<'a> Simulator<'a> {
    /// Start a bit-sliced capture session, or report why this
    /// netlist/derating combination must stay on the event-driven
    /// backend (see [`BitsliceUnsupported`]).
    pub fn bitsliced_session(&self) -> Result<BitslicedSession<'_>, BitsliceUnsupported> {
        BitslicedSession::try_new(self)
    }
}

impl<'a> BitslicedSession<'a> {
    /// Build the levelized program for `sim`'s netlist, checking the
    /// static support condition (every derated delay ≥ 1 µps and
    /// finite, so coalesced pop order provably matches the scalar
    /// engine in every lane).
    pub fn try_new(sim: &'a Simulator<'a>) -> Result<Self, BitsliceUnsupported> {
        let netlist = sim.netlist();
        let n_gates = netlist.gates().len();
        for g in 0..n_gates {
            let d = sim.delay_ps[g];
            if !(d.is_finite() && d >= MIN_DELAY_PS) {
                return Err(BitsliceUnsupported {
                    gate: g,
                    delay_ps: d,
                });
            }
        }
        let mut input_offsets = Vec::with_capacity(n_gates + 1);
        let mut input_nets: Vec<u32> = Vec::new();
        let mut tab_offsets = Vec::with_capacity(n_gates + 1);
        let mut tab_masks: Vec<u64> = Vec::new();
        let mut output_nets = Vec::with_capacity(n_gates);
        let mut per_net_gates: Vec<Vec<u32>> = vec![Vec::new(); netlist.nets().len()];
        input_offsets.push(0u32);
        tab_offsets.push(0u32);
        for (g, gate) in netlist.gates().iter().enumerate() {
            for net in gate.inputs() {
                input_nets.push(net.index() as u32);
                per_net_gates[net.index()].push(g as u32);
            }
            input_offsets.push(input_nets.len() as u32);
            let k = gate.inputs().len();
            let mut pins = [false; 4];
            for pattern in 0..(1u16 << k) {
                for (bit, slot) in pins.iter_mut().enumerate().take(k) {
                    *slot = (pattern >> bit) & 1 == 1;
                }
                tab_masks.push(if gate.cell().evaluate(&pins[..k]) {
                    !0u64
                } else {
                    0
                });
            }
            tab_offsets.push(tab_masks.len() as u32);
            output_nets.push(gate.output().index() as u32);
        }
        let mut load_offsets = Vec::with_capacity(netlist.nets().len() + 1);
        let mut load_gates = Vec::new();
        load_offsets.push(0u32);
        for gates in &per_net_gates {
            load_gates.extend_from_slice(gates);
            load_offsets.push(load_gates.len() as u32);
        }
        let min_delay = (0..n_gates)
            .map(|g| sim.delay_ps[g])
            .fold(f64::INFINITY, f64::min);
        let width = if min_delay.is_finite() {
            min_delay
        } else {
            1.0
        };
        Ok(Self {
            sim,
            input_offsets,
            input_nets,
            tab_offsets,
            tab_masks,
            output_nets,
            load_offsets,
            load_gates,
            topo: netlist
                .topo_order()
                .iter()
                .map(|g| g.index() as u32)
                .collect(),
            delay_ps: (0..n_gates).map(|g| sim.delay_ps[g]).collect(),
            energy_fj: (0..n_gates).map(|g| sim.energy_fj[g]).collect(),
            absorbed_frac: sim.config().absorbed_energy_fraction,
            pulse_width_factor: sim.config().pulse_width_factor,
            noise_mw: sim.config().noise_mw,
            values: vec![ZERO_MASK; netlist.nets().len()],
            pend: vec![Vec::new(); n_gates],
            pend_mask: vec![ZERO_MASK; n_gates],
            pend_val: vec![ZERO_MASK; n_gates],
            recent: vec![std::collections::VecDeque::new(); n_gates],
            touched: Vec::new(),
            queue: GroupQueue::new(width),
            seq: 0,
            log: EventLog::default(),
            order: Vec::new(),
            absorbed_order: Vec::new(),
            contrib_index: Vec::new(),
            contrib_pairs: Vec::new(),
            fracs: Vec::new(),
            dt: 1.0,
            samples: 0,
            bin_work: Vec::new(),
            acc: Vec::new(),
            counts_events: vec![0; LANES],
            counts_absorbed: vec![0; LANES],
            settle_seen: vec![false; LANES],
            settle_buf: vec![0.0; LANES],
            traces: (0..LANES).map(|_| Vec::new()).collect(),
            stats: vec![CaptureStats::default(); LANES],
        })
    }

    /// The simulator this session runs on.
    pub fn simulator(&self) -> &'a Simulator<'a> {
        self.sim
    }

    /// Capture up to [`LANES`] stimuli in one bit-sliced pass.
    ///
    /// Returns one power trace and one [`CaptureStats`] per stimulus,
    /// in stimulus order, borrowed from the session's reusable buffers.
    /// Trace `i` is bit-for-bit what
    /// `CaptureSession::capture_into(initial_i, final_i, sampling,
    /// &mut SmallRng::seed_from_u64(noise_seed_i), ..)` produces.
    /// Unused lanes carry a no-toggle stimulus and cost nothing.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty or longer than [`LANES`], or if any
    /// stimulus width differs from the netlist's primary input count.
    pub fn capture_batch(
        &mut self,
        lanes: &[LaneStimulus<'_>],
        sampling: &SamplingConfig,
    ) -> (&[Vec<f64>], &[CaptureStats]) {
        assert!(
            !lanes.is_empty() && lanes.len() <= LANES,
            "batch of {} stimuli does not fit {} lanes",
            lanes.len(),
            LANES
        );
        let netlist = self.sim.netlist();
        for lane in lanes {
            assert_eq!(lane.final_inputs.len(), netlist.num_inputs());
            assert_eq!(
                lane.initial.len(),
                netlist.num_inputs(),
                "netlist `{}` has {} inputs, got {}",
                netlist.name(),
                netlist.num_inputs(),
                lane.initial.len()
            );
        }
        self.dt = sampling.period_ps();
        self.samples = sampling.samples;
        self.run_batch(lanes);
        self.render(lanes, sampling);
        (&self.traces[..lanes.len()], &self.stats[..lanes.len()])
    }

    /// Bit-sliced gate evaluation: a multiplexer fold of the expanded
    /// truth table over the gate's input words, specialized for the
    /// dominant 1- and 2-input cells.
    #[inline]
    fn eval_gate(&self, g: usize) -> Mask {
        let lo = self.input_offsets[g] as usize;
        let hi = self.input_offsets[g + 1] as usize;
        let k = hi - lo;
        let t0 = self.tab_offsets[g] as usize;
        let mut out = ZERO_MASK;
        match k {
            1 => {
                let va = &self.values[self.input_nets[lo] as usize];
                let t_lo = self.tab_masks[t0];
                let t_hi = self.tab_masks[t0 + 1];
                for w in 0..W {
                    out[w] = (!va[w] & t_lo) | (va[w] & t_hi);
                }
            }
            2 => {
                let va = &self.values[self.input_nets[lo] as usize];
                let vb = &self.values[self.input_nets[lo + 1] as usize];
                let t00 = self.tab_masks[t0];
                let t01 = self.tab_masks[t0 + 1];
                let t10 = self.tab_masks[t0 + 2];
                let t11 = self.tab_masks[t0 + 3];
                for w in 0..W {
                    let m0 = (!vb[w] & t00) | (vb[w] & t10);
                    let m1 = (!vb[w] & t01) | (vb[w] & t11);
                    out[w] = (!va[w] & m0) | (va[w] & m1);
                }
            }
            _ => {
                for (w, slot) in out.iter_mut().enumerate() {
                    let mut tab = [0u64; 16];
                    tab[..1 << k].copy_from_slice(&self.tab_masks[t0..t0 + (1 << k)]);
                    let mut width = 1usize << k;
                    for bit in (0..k).rev() {
                        width >>= 1;
                        let v = self.values[self.input_nets[lo + bit] as usize][w];
                        for p in 0..width {
                            tab[p] = (!v & tab[p]) | (v & tab[p + width]);
                        }
                    }
                    *slot = tab[0];
                }
            }
        }
        out
    }

    /// The coalesced event loop. Scratch is reset on entry (the same
    /// panic-retry contract as the scalar session).
    fn run_batch(&mut self, lanes: &[LaneStimulus<'_>]) {
        let netlist = self.sim.netlist();

        // Reset lane state. `pend_val` needs no clearing: it is only
        // read under `pend_mask`, which is rebuilt from zero.
        for p in &mut self.pend {
            p.clear();
        }
        for r in &mut self.recent {
            r.clear();
        }
        self.pend_mask.iter_mut().for_each(|m| *m = ZERO_MASK);
        self.queue.reset();
        self.seq = 0;
        self.touched.clear();
        self.log.clear();
        self.contrib_index.clear();
        self.contrib_pairs.clear();

        // Settle on the initial inputs (pure levelized evaluation —
        // exactly the scalar engine's topo walk, all lanes at once).
        for (j, net) in netlist.inputs().iter().enumerate() {
            let mut wbuf = ZERO_MASK;
            for (l, lane) in lanes.iter().enumerate() {
                wbuf[l >> 6] |= (lane.initial[j] as u64) << (l & 63);
            }
            self.values[net.index()] = wbuf;
        }
        for i in 0..self.topo.len() {
            let g = self.topo[i] as usize;
            let out = self.eval_gate(g);
            self.values[self.output_nets[g] as usize] = out;
        }

        // Apply the final inputs at t = 0: all net values flip before
        // any gate is re-evaluated, then the touched gates (any lane)
        // are scheduled once each in ascending index order — the scalar
        // engine's `sort_unstable + dedup` seeding. Lanes whose local
        // inputs did not change see a no-op re-evaluation.
        for (j, net) in netlist.inputs().iter().enumerate() {
            let mut wbuf = ZERO_MASK;
            for (l, lane) in lanes.iter().enumerate() {
                wbuf[l >> 6] |= (lane.final_inputs[j] as u64) << (l & 63);
            }
            if self.values[net.index()] != wbuf {
                self.values[net.index()] = wbuf;
                let lo = self.load_offsets[net.index()] as usize;
                let hi = self.load_offsets[net.index() + 1] as usize;
                for k in lo..hi {
                    self.touched.push(self.load_gates[k]);
                }
            }
        }
        self.touched.sort_unstable();
        self.touched.dedup();
        for i in 0..self.touched.len() {
            let g = self.touched[i] as usize;
            self.schedule(g, 0.0);
        }

        while let Some(ev) = self.queue.pop() {
            let g = ev.gate as usize;
            // The group's mask lives in the gate's pending list; a
            // fully revoked group was removed there, so its queue entry
            // finds no match and is skipped.
            let Some(pos) = self.pend[g].iter().position(|p| p.seq == ev.seq) else {
                continue;
            };
            let group = self.pend[g].swap_remove(pos);
            let m = group.mask;
            let t = ev.time_ps;
            let pm = &mut self.pend_mask[g];
            let vals = &mut self.values[self.output_nets[g] as usize];
            for w in 0..W {
                pm[w] &= !m[w];
                debug_assert_eq!((vals[w] ^ self.pend_val[g][w]) & m[w], m[w]);
                vals[w] ^= m[w];
            }

            // Commit events. A lane's swing fraction depends on its
            // previous commit of this gate: lanes whose last commit
            // fell out of the 3·delay window (or that never committed)
            // saturate to a full swing — `energy × 1.0 == energy`
            // exactly — and share one rendered pulse; lanes inside the
            // window share a pulse per (this group, previous group)
            // pair, since the elapsed time is a group property. The
            // charge fractions depend only on `(t, width)` and are
            // computed once for the whole pop.
            let energy = self.energy_fj[g];
            let delay = self.delay_ps[g];
            let swing_ps = 3.0 * delay;
            let width = self.pulse_width_factor * delay;
            compute_fracs(&mut self.fracs, t, width, self.dt, self.samples);
            while self.recent[g]
                .front()
                .is_some_and(|&(tp, _)| t - tp >= swing_ps)
            {
                self.recent[g].pop_front();
            }
            let mut remaining = m;
            for &(tp, ref pmask) in self.recent[g].iter().rev() {
                if mask_is_zero(&remaining) {
                    break;
                }
                let mut cand = ZERO_MASK;
                let mut any = 0u64;
                for w in 0..W {
                    cand[w] = remaining[w] & pmask[w];
                    any |= cand[w];
                    remaining[w] &= !pmask[w];
                }
                if any != 0 {
                    let elapsed = t - tp;
                    let swing_fraction = (elapsed / swing_ps).min(1.0);
                    let c = push_contrib(
                        &mut self.contrib_index,
                        &mut self.contrib_pairs,
                        &self.fracs,
                        energy * swing_fraction,
                        self.dt,
                    );
                    self.log.push(t, c, false, &cand);
                }
            }
            if !mask_is_zero(&remaining) {
                let c = push_contrib(
                    &mut self.contrib_index,
                    &mut self.contrib_pairs,
                    &self.fracs,
                    energy,
                    self.dt,
                );
                self.log.push(t, c, false, &remaining);
            }
            self.recent[g].push_back((t, m));

            // Fan-out: re-evaluate each loading gate, in the scalar
            // engine's per-pin edge order (duplicate entries for a gate
            // loading this net on several pins are idempotent: by then
            // its lanes are already heading to the re-evaluated value).
            let out_net = self.output_nets[g] as usize;
            let lo = self.load_offsets[out_net] as usize;
            let hi = self.load_offsets[out_net + 1] as usize;
            for k in lo..hi {
                let g2 = self.load_gates[k] as usize;
                self.schedule(g2, t);
            }
        }
    }

    /// Coalesced re-evaluation of gate `g` at `t_now`: the scalar
    /// engine's inertial-delay keep/revoke/push rules applied to all
    /// lanes by mask algebra, consuming one push-group seq when any
    /// lane pushes. Lanes already pending toward the re-evaluated
    /// value keep their earlier event, untouched.
    fn schedule(&mut self, g: usize, t_now: f64) {
        let new_v = self.eval_gate(g);
        let cur = &self.values[self.output_nets[g] as usize];
        let pm = &self.pend_mask[g];
        let pv = &self.pend_val[g];
        let mut revoke = ZERO_MASK;
        let mut push = ZERO_MASK;
        let mut any_revoke = 0u64;
        let mut any_push = 0u64;
        for w in 0..W {
            let r = pm[w] & (pv[w] ^ new_v[w]);
            revoke[w] = r;
            any_revoke |= r;
            let p = (new_v[w] ^ cur[w]) & (r | !pm[w]);
            push[w] = p;
            any_push |= p;
        }
        if any_revoke != 0 {
            // Revoked swings become absorbed glitches at their
            // *scheduled* times. Energy is lane-independent, and lanes
            // revoked from the same push group share a scheduled time,
            // so each overlapped group shares one rendered pulse.
            let energy = self.energy_fj[g] * self.absorbed_frac;
            let width = self.pulse_width_factor * self.delay_ps[g];
            let emit = self.absorbed_frac > 0.0;
            let mut i = 0;
            while i < self.pend[g].len() {
                let mut overlap = ZERO_MASK;
                let mut any = 0u64;
                let mut left = 0u64;
                let gm = &self.pend[g][i].mask;
                for w in 0..W {
                    overlap[w] = gm[w] & revoke[w];
                    any |= overlap[w];
                    left |= gm[w] & !revoke[w];
                }
                if any != 0 {
                    if emit {
                        compute_fracs(
                            &mut self.fracs,
                            self.pend[g][i].time_ps,
                            width,
                            self.dt,
                            self.samples,
                        );
                        let c = push_contrib(
                            &mut self.contrib_index,
                            &mut self.contrib_pairs,
                            &self.fracs,
                            energy,
                            self.dt,
                        );
                        self.log.push(self.pend[g][i].time_ps, c, true, &overlap);
                    }
                    if left == 0 {
                        self.pend[g].swap_remove(i);
                        continue;
                    }
                    for (m, &r) in self.pend[g][i].mask.iter_mut().zip(revoke.iter()) {
                        *m &= !r;
                    }
                }
                i += 1;
            }
            let pmg = &mut self.pend_mask[g];
            for w in 0..W {
                pmg[w] &= !revoke[w];
            }
        }
        if any_push != 0 {
            self.seq += 1;
            let t = t_now + self.delay_ps[g];
            let pvg = &mut self.pend_val[g];
            let pmg = &mut self.pend_mask[g];
            for w in 0..W {
                pvg[w] = (pvg[w] & !push[w]) | (new_v[w] & push[w]);
                pmg[w] |= push[w];
            }
            self.pend[g].push(PendGroup {
                time_ps: t,
                seq: self.seq,
                mask: push,
            });
            self.queue.push(QueuedGroup {
                time_ps: t,
                seq: self.seq,
                gate: g as u32,
            });
        }
    }

    /// One stable sort of the global log by time reproduces the scalar
    /// engine's per-lane insertion-sort order in every lane at once
    /// (the log is appended in pop order, which *is* each lane's scalar
    /// append order); the precomputed pulse contributions are then
    /// accumulated bin-major, per-lane noise is added, and the stats
    /// come from per-lane event counters.
    fn render(&mut self, lanes: &[LaneStimulus<'_>], sampling: &SamplingConfig) {
        let n = lanes.len();
        // The stable sort by time is a merge in disguise: commit
        // entries are appended in pop order, so their times are already
        // non-decreasing; only absorbed entries (appended when revoked,
        // which is strictly before their scheduled timestamp's pops)
        // are out of place. Stably sorting those few and merging —
        // absorbed first on time ties, matching their earlier append —
        // reproduces the full stable sort at a fraction of the cost.
        self.order.clear();
        self.absorbed_order.clear();
        let times = &self.log.time;
        for (i, &m) in self.log.meta.iter().enumerate() {
            if m & 1 == 1 {
                self.absorbed_order.push(i as u32);
            }
        }
        self.absorbed_order
            .sort_by(|&a, &b| times[a as usize].total_cmp(&times[b as usize]));
        let mut ai = 0;
        for (i, &m) in self.log.meta.iter().enumerate() {
            if m & 1 == 1 {
                continue;
            }
            while ai < self.absorbed_order.len()
                && times[self.absorbed_order[ai] as usize]
                    .total_cmp(&times[i])
                    .is_le()
            {
                self.order.push(self.absorbed_order[ai]);
                ai += 1;
            }
            self.order.push(i as u32);
        }
        self.order.extend_from_slice(&self.absorbed_order[ai..]);
        self.bin_work.resize_with(sampling.samples, Vec::new);

        // First pass over the sorted order: distribute each entry's
        // contribution pairs onto per-bin work lists (keeping sorted
        // order within each bin — adds to different bins commute, adds
        // to one (lane, bin) cell must run in the scalar engine's
        // sorted-log order) and tally per-lane event counts.
        self.counts_events[..n].fill(0);
        self.counts_absorbed[..n].fill(0);
        for &idx in &self.order {
            let i = idx as usize;
            let meta = self.log.meta[i];
            let (loff, llen) = self.log.lanes_span[i];
            let (off, len) = self.contrib_index[(meta >> 1) as usize];
            for &(bin, dp) in &self.contrib_pairs[off as usize..(off + len) as usize] {
                self.bin_work[bin as usize].push((loff, llen, dp));
            }
            let lanes_of = &self.log.lanes[loff as usize..(loff + llen) as usize];
            if meta & 1 == 1 {
                for &l in lanes_of {
                    self.counts_events[l as usize] += 1;
                    self.counts_absorbed[l as usize] += 1;
                }
            } else {
                for &l in lanes_of {
                    self.counts_events[l as usize] += 1;
                }
            }
        }
        // Second pass, bin-major: each 8 KB accumulator row is zeroed
        // and filled while cache-hot. Rows without work keep stale
        // values and are never read — the transpose writes zeros for
        // them directly.
        if self.acc.len() != sampling.samples * LANES {
            self.acc.clear();
            self.acc.resize(sampling.samples * LANES, 0.0);
        }
        let acc = &mut self.acc;
        let log_lanes = &self.log.lanes;
        for (k, work) in self.bin_work.iter().enumerate() {
            if work.is_empty() {
                continue;
            }
            let row = &mut acc[k * LANES..][..LANES];
            row.fill(0.0);
            for &(loff, llen, dp) in work {
                for &l in &log_lanes[loff as usize..(loff + llen) as usize] {
                    row[l as usize] += dp;
                }
            }
        }

        // Settle time: each lane's last (max-time) event, found by a
        // reverse walk over the sorted order.
        self.settle_buf[..n].fill(0.0);
        self.settle_seen[..n].fill(false);
        let mut unresolved = n;
        for &idx in self.order.iter().rev() {
            if unresolved == 0 {
                break;
            }
            let i = idx as usize;
            let (loff, llen) = self.log.lanes_span[i];
            for &l in &self.log.lanes[loff as usize..(loff + llen) as usize] {
                let l = l as usize;
                if !self.settle_seen[l] {
                    self.settle_seen[l] = true;
                    self.settle_buf[l] = self.log.time[i];
                    unresolved -= 1;
                }
            }
        }

        // Transpose the bin-major accumulator into per-lane traces,
        // eight lanes (one cache line of each row) at a time; rows
        // without bin work contribute zeros without being read.
        let acc = &self.acc;
        let bin_work = &self.bin_work;
        let traces = &mut self.traces;
        let mut lb = 0;
        while lb < n {
            let le = (lb + 8).min(n);
            for trace in traces[lb..le].iter_mut() {
                if trace.len() != sampling.samples {
                    trace.clear();
                    trace.resize(sampling.samples, 0.0);
                }
            }
            for (k, row) in acc.chunks_exact(LANES).enumerate() {
                if bin_work[k].is_empty() {
                    for trace in traces[lb..le].iter_mut() {
                        trace[k] = 0.0;
                    }
                } else {
                    for (l, trace) in traces[lb..le].iter_mut().enumerate() {
                        trace[k] = row[lb + l];
                    }
                }
            }
            lb = le;
        }
        for work in &mut self.bin_work {
            work.clear();
        }

        for (l, lane) in lanes.iter().enumerate() {
            if self.noise_mw > 0.0 {
                let mut rng = SmallRng::seed_from_u64(lane.noise_seed);
                for s in self.traces[l].iter_mut() {
                    *s += self.noise_mw * gaussian(&mut rng);
                }
            }
            let events = self.counts_events[l] as usize;
            let absorbed = self.counts_absorbed[l] as usize;
            self.stats[l] = CaptureStats {
                events,
                full_transitions: events - absorbed,
                absorbed_glitches: absorbed,
                settle_time_ps: self.settle_buf[l],
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use rand::Rng;
    use sbox_netlist::NetlistBuilder;

    fn racy_netlist() -> sbox_netlist::Netlist {
        let mut b = NetlistBuilder::new("racy");
        let x = b.input_bus("x", 4);
        let d0 = b.not(x[0]);
        let d1 = b.not(d0);
        let a = b.xor(d1, x[1]);
        let c = b.xor(x[2], x[3]);
        let y = b.xor(a, c);
        let z = b.and(&[a, c, d1]);
        b.output("y", y);
        b.output("z", z);
        b.finish().expect("valid")
    }

    fn noisy_config() -> SimConfig {
        SimConfig {
            process_sigma: 0.08,
            noise_mw: 0.02,
            ..SimConfig::default()
        }
    }

    #[test]
    fn full_batches_match_the_event_driven_session_bit_for_bit() {
        let nl = racy_netlist();
        let sim = Simulator::new(&nl, &noisy_config());
        let sampling = SamplingConfig::default();
        let mut scalar = sim.session();
        let mut sliced = sim.bitsliced_session().expect("supported");
        let mut rng = SmallRng::seed_from_u64(0xB175);
        for round in 0..2 {
            let stimuli: Vec<(Vec<bool>, Vec<bool>, u64)> = (0..LANES)
                .map(|_| {
                    (
                        (0..4).map(|_| rng.gen()).collect(),
                        (0..4).map(|_| rng.gen()).collect(),
                        rng.gen(),
                    )
                })
                .collect();
            let lanes: Vec<LaneStimulus<'_>> = stimuli
                .iter()
                .map(|(iv, fv, seed)| LaneStimulus {
                    initial: iv,
                    final_inputs: fv,
                    noise_seed: *seed,
                })
                .collect();
            let (traces, stats) = sliced.capture_batch(&lanes, &sampling);
            for (l, (iv, fv, seed)) in stimuli.iter().enumerate() {
                let mut lane_rng = SmallRng::seed_from_u64(*seed);
                let mut want = Vec::new();
                let want_stats = scalar.capture_into(iv, fv, &sampling, &mut lane_rng, &mut want);
                assert_eq!(traces[l], want, "round {round} lane {l}");
                assert_eq!(stats[l], want_stats, "round {round} lane {l}");
            }
        }
    }

    #[test]
    fn partial_batches_use_dead_lanes_for_free() {
        let nl = racy_netlist();
        let sim = Simulator::new(&nl, &noisy_config());
        let sampling = SamplingConfig::default();
        let mut scalar = sim.session();
        let mut sliced = sim.bitsliced_session().expect("supported");
        for n in [1usize, 3, 17, 63, 64, 65, 100, 1023] {
            let stimuli: Vec<(Vec<bool>, Vec<bool>)> = (0..n)
                .map(|i| {
                    (
                        (0..4).map(|b| (i >> b) & 1 == 1).collect(),
                        (0..4).map(|b| ((i * 5 + 3) >> b) & 1 == 1).collect(),
                    )
                })
                .collect();
            let lanes: Vec<LaneStimulus<'_>> = stimuli
                .iter()
                .enumerate()
                .map(|(i, (iv, fv))| LaneStimulus {
                    initial: iv,
                    final_inputs: fv,
                    noise_seed: i as u64,
                })
                .collect();
            let (traces, stats) = sliced.capture_batch(&lanes, &sampling);
            assert_eq!(traces.len(), n);
            for (l, (iv, fv)) in stimuli.iter().enumerate() {
                let mut lane_rng = SmallRng::seed_from_u64(l as u64);
                let mut want = Vec::new();
                let want_stats = scalar.capture_into(iv, fv, &sampling, &mut lane_rng, &mut want);
                assert_eq!(traces[l], want, "n {n} lane {l}");
                assert_eq!(stats[l], want_stats, "n {n} lane {l}");
            }
        }
    }

    #[test]
    fn sub_resolution_delays_are_rejected() {
        let nl = racy_netlist();
        let n = nl.gates().len();
        let mut factors = vec![1.0; n];
        factors[2] = 1e-12; // passes Derating's positivity check, but
                            // the derated delay rounds away at ps scale
        let derating = crate::Derating::from_factors(factors, vec![1.0; n]);
        let sim = Simulator::with_derating(&nl, &noisy_config(), &derating);
        let err = sim.bitsliced_session().expect_err("must be rejected");
        assert_eq!(err.gate, 2);
        assert!(err.to_string().contains("event-driven"));
        // The event-driven engine still handles it.
        let _ = sim.capture(&[false; 4], &[true; 4], &SamplingConfig::default());
    }

    #[test]
    fn session_is_reusable_and_state_free_across_batches() {
        let nl = racy_netlist();
        let sim = Simulator::new(&nl, &noisy_config());
        let sampling = SamplingConfig::default();
        let mut sliced = sim.bitsliced_session().expect("supported");
        let mk = |i: usize| {
            (
                (0..4).map(|b| (i >> b) & 1 == 1).collect::<Vec<bool>>(),
                (0..4)
                    .map(|b| ((i ^ 9) >> b) & 1 == 1)
                    .collect::<Vec<bool>>(),
            )
        };
        let (iv, fv) = mk(6);
        let lane = [LaneStimulus {
            initial: &iv,
            final_inputs: &fv,
            noise_seed: 42,
        }];
        let first = sliced.capture_batch(&lane, &sampling).0[0].clone();
        // Interleave a different, busier batch, then repeat the first.
        let (iv2, fv2) = mk(1);
        let busy: Vec<LaneStimulus<'_>> = (0..LANES)
            .map(|_| LaneStimulus {
                initial: &iv2,
                final_inputs: &fv2,
                noise_seed: 7,
            })
            .collect();
        let _ = sliced.capture_batch(&busy, &sampling);
        let again = sliced.capture_batch(&lane, &sampling).0[0].clone();
        assert_eq!(first, again);
    }
}
