//! Reusable capture sessions — the simulator's allocation-free hot path.
//!
//! A [`CaptureSession`] is a simulation arena created once per
//! [`Simulator`] and reused across captures: every scratch buffer the
//! event loop needs (net values, the pending-event table, the event
//! queue, the `last_switch` array, the touched-gate seed list, the event
//! log) lives in the session and is cleared — not reallocated — between
//! traces. Gate fan-out is flattened into a CSR adjacency so the inner
//! scheduling loop walks contiguous slices instead of chasing per-net
//! `Vec`s, and the `BinaryHeap` of the original engine is replaced by an
//! indexed bucket queue keyed on time quantized by the minimum gate
//! delay.
//!
//! # Determinism
//!
//! The session path is bit-identical to [`Simulator::transition`] — in
//! fact [`Simulator::transition`] *is* a session (a temporary one), so
//! there is exactly one event-loop implementation to trust. Within the
//! engine, events are popped in `(time_ps, seq)` order (`seq` is the
//! per-transition push counter, so ties resolve in schedule order). The
//! bucket queue preserves that order exactly:
//!
//! * the bucket index `⌊t / w⌋` is monotone in `t`, so no later-popping
//!   bucket can hold an earlier event;
//! * a bucket is sorted by `(time_ps, seq)` when it is first opened;
//! * events pushed *while a bucket drains* carry times strictly greater
//!   than every already-popped time (an event scheduled at `t` fires at
//!   `t + delay`, `delay > 0`), so inserting them at their sorted
//!   position in the still-undrained tail (or any later bucket) keeps
//!   the global pop order intact for **any** bucket width — the width,
//!   chosen as the minimum derated gate delay, is purely a density
//!   knob.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sbox_netlist::GateId;

use crate::engine::{stimulus_noise_seed, CaptureStats, SwitchEvent, TransitionRecord};
use crate::power::{gaussian, sample_waveform_into, PulseShape};
use crate::{SamplingConfig, Simulator};

/// An event waiting in the bucket queue. Packed to 16 bytes (raw gate
/// index, `u32` push counter — a single transition settles in far fewer
/// than 2³² events) to halve queue memory traffic.
#[derive(Debug, Clone, Copy)]
struct QueuedEvent {
    time_ps: f64,
    seq: u32,
    gate: u32,
}

impl QueuedEvent {
    /// The global pop order: earliest time first, push order on ties.
    fn cmp_key(&self, other: &Self) -> std::cmp::Ordering {
        self.time_ps
            .total_cmp(&other.time_ps)
            .then(self.seq.cmp(&other.seq))
    }
}

/// A gate's scheduled-but-uncommitted output change (`seq == 0`: none).
#[derive(Debug, Clone, Copy, Default)]
struct Pending {
    time_ps: f64,
    seq: u32,
    val: bool,
}

/// Hard cap on the bucket array. Quiescence bounds event times to a few
/// thousand ps (≈ hundreds of buckets at gate-delay width); clamping the
/// index is a monotone map, so even a pathological time cannot break pop
/// order — it only degrades that one bucket's density.
const MAX_BUCKETS: usize = 1 << 16;

/// An indexed bucket queue over event time. Pushes append to a bucket
/// (amortized allocation-free once warm); pops advance a cursor through
/// the current bucket, sorting each bucket once when it is opened.
#[derive(Debug)]
struct EventQueue {
    /// Reciprocal of the bucket width (a few derated gate delays):
    /// events scheduled while bucket `b` drains land, up to float
    /// rounding, in `b` or later. The rounding edge is handled by
    /// sorted insertion into the draining bucket's tail, so the width —
    /// and using a multiply instead of a divide to quantize — affect
    /// density only, never pop order.
    inv_width: f64,
    buckets: Vec<Vec<QueuedEvent>>,
    /// The bucket being drained (or the next one to open).
    current: usize,
    /// Next entry to pop within the open bucket.
    cursor: usize,
    /// Whether `buckets[current]` has been sorted and is draining.
    open: bool,
    len: usize,
}

impl EventQueue {
    fn new(width_ps: f64) -> Self {
        Self {
            inv_width: 1.0 / width_ps.max(1e-3),
            buckets: Vec::new(),
            current: 0,
            cursor: 0,
            open: false,
            len: 0,
        }
    }

    /// Make the queue empty. O(1) after a fully drained run; clears
    /// every bucket when entries remain (a capture aborted mid-drain —
    /// the executor's panic-isolation path reuses sessions afterwards).
    fn reset(&mut self) {
        if self.len > 0 {
            for bucket in &mut self.buckets {
                bucket.clear();
            }
        }
        self.current = 0;
        self.cursor = 0;
        self.open = false;
        self.len = 0;
    }

    fn push(&mut self, ev: QueuedEvent) {
        let mut idx = ((ev.time_ps * self.inv_width) as usize).min(MAX_BUCKETS - 1);
        if idx <= self.current {
            if self.open {
                // Float-rounding edge: in exact arithmetic the event
                // belongs after the draining bucket; keep order by
                // inserting at its sorted position in the tail.
                self.insert_into_open(ev);
                return;
            }
            // `buckets[current]` is not yet sorted; it will be at open.
            idx = self.current;
        }
        if idx >= self.buckets.len() {
            self.buckets.resize_with(idx + 1, Vec::new);
        }
        self.buckets[idx].push(ev);
        self.len += 1;
    }

    /// Sorted insertion into the undrained tail of the open bucket.
    fn insert_into_open(&mut self, ev: QueuedEvent) {
        let bucket = &mut self.buckets[self.current];
        let mut at = self.cursor;
        while at < bucket.len() && bucket[at].cmp_key(&ev).is_lt() {
            at += 1;
        }
        bucket.insert(at, ev);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<QueuedEvent> {
        if self.len == 0 {
            return None;
        }
        if !self.open {
            while self.buckets[self.current].is_empty() {
                self.current += 1;
            }
            self.buckets[self.current].sort_unstable_by(QueuedEvent::cmp_key);
            self.cursor = 0;
            self.open = true;
        }
        let ev = self.buckets[self.current][self.cursor];
        self.cursor += 1;
        self.len -= 1;
        if self.cursor == self.buckets[self.current].len() {
            self.buckets[self.current].clear();
            self.current += 1;
            self.cursor = 0;
            self.open = false;
        }
        Some(ev)
    }
}

/// A reusable simulation arena bound to one [`Simulator`].
///
/// Create with [`Simulator::session`]; every capture method matches its
/// `Simulator` counterpart bit for bit (the simulator's own methods run
/// on a temporary session). Reuse a session across traces to skip all
/// per-capture allocation — the campaign executor keeps one per worker
/// thread for its whole shard.
///
/// A session holds no mutable reference to the simulator, so any number
/// of sessions (one per thread) can share one `Simulator`.
#[derive(Debug)]
pub struct CaptureSession<'a> {
    sim: &'a Simulator<'a>,
    /// CSR fan-out: the loads of net `n` are
    /// `load_edges[load_offsets[n] .. load_offsets[n + 1]]`, each packed
    /// as `(gate_index << 3) | pin_bit` — the pin lets a net toggle
    /// update the loading gate's cached input pattern with one XOR.
    load_offsets: Vec<u32>,
    load_edges: Vec<u32>,
    /// CSR fan-in: gate `g` reads nets
    /// `input_nets[input_offsets[g] .. input_offsets[g + 1]]` (≤ 4).
    input_offsets: Vec<u32>,
    input_nets: Vec<u32>,
    /// Per-gate truth table: bit `p` is the output for input pattern `p`
    /// (input `i` contributes bit `i` of `p`). Replaces the per-call
    /// `CellType` match dispatch in the scheduling hot loop.
    truth: Vec<u16>,
    /// Per-gate output net index.
    output_nets: Vec<u32>,
    /// Gate index → `GateId`, for the event records.
    gate_ids: Vec<GateId>,
    /// Derated per-gate delay and switching energy, copied from the
    /// simulator so the hot loop reads session-local arrays instead of
    /// chasing through the `Simulator` reference.
    delay_ps: Vec<f64>,
    energy_fj: Vec<f64>,
    /// `config().absorbed_energy_fraction`, cached for the revoke path.
    absorbed_frac: f64,
    /// Topological order as raw gate indices, for the settle walk.
    topo: Vec<u32>,
    /// Per-gate current input pattern, maintained incrementally as nets
    /// toggle — `schedule` never gathers input values.
    pattern: Vec<u8>,
    values: Vec<bool>,
    /// Pending scheduled output change per gate (`seq == 0` means none;
    /// the push counter starts at 1). One 16-byte record per gate: the
    /// three fields are always read together.
    pending: Vec<Pending>,
    last_switch: Vec<f64>,
    touched: Vec<u32>,
    events: Vec<SwitchEvent>,
    queue: EventQueue,
    seq: u32,
    samples: Vec<f64>,
}

impl<'a> CaptureSession<'a> {
    pub(crate) fn new(sim: &'a Simulator<'a>) -> Self {
        let netlist = sim.netlist();
        let n_gates = netlist.gates().len();
        let mut input_offsets = Vec::with_capacity(n_gates + 1);
        let mut input_nets: Vec<u32> = Vec::new();
        let mut truth = Vec::with_capacity(n_gates);
        let mut output_nets = Vec::with_capacity(n_gates);
        // Fan-out edges per net, in the exact order the netlist records
        // loads (gate-creation order, one entry per connected pin) — the
        // scheduling order, and with it the event tie-breaking, must
        // match the reference engine.
        let mut per_net_edges: Vec<Vec<u32>> = vec![Vec::new(); netlist.nets().len()];
        input_offsets.push(0u32);
        for (g, gate) in netlist.gates().iter().enumerate() {
            for (bit, net) in gate.inputs().iter().enumerate() {
                input_nets.push(net.index() as u32);
                per_net_edges[net.index()].push(((g as u32) << 3) | bit as u32);
            }
            input_offsets.push(input_nets.len() as u32);
            let k = gate.inputs().len();
            let mut table = 0u16;
            let mut pins = [false; 4];
            for pattern in 0..(1u16 << k) {
                for (bit, slot) in pins.iter_mut().enumerate().take(k) {
                    *slot = (pattern >> bit) & 1 == 1;
                }
                if gate.cell().evaluate(&pins[..k]) {
                    table |= 1 << pattern;
                }
            }
            truth.push(table);
            output_nets.push(gate.output().index() as u32);
        }
        let mut gate_ids: Vec<Option<GateId>> = vec![None; n_gates];
        for &g in netlist.topo_order() {
            gate_ids[g.index()] = Some(g);
        }
        let gate_ids: Vec<GateId> = gate_ids
            .into_iter()
            .map(|g| g.expect("topological order covers every gate"))
            .collect();
        let mut load_offsets = Vec::with_capacity(netlist.nets().len() + 1);
        let mut load_edges = Vec::new();
        load_offsets.push(0u32);
        for edges in &per_net_edges {
            load_edges.extend_from_slice(edges);
            load_offsets.push(load_edges.len() as u32);
        }
        let min_delay = (0..netlist.gates().len())
            .map(|g| sim.delay_ps[g])
            .fold(f64::INFINITY, f64::min);
        // One minimum gate delay per bucket: an event scheduled while
        // bucket `b` drains fires at least a full bucket width later, so
        // nearly every push is an O(1) append into a future bucket
        // rather than a sorted insert into the draining one. Order is
        // preserved for any width (see the module docs).
        let width = if min_delay.is_finite() {
            min_delay
        } else {
            1.0
        };
        Self {
            sim,
            load_offsets,
            load_edges,
            input_offsets,
            input_nets,
            truth,
            output_nets,
            gate_ids,
            delay_ps: (0..n_gates).map(|g| sim.delay_ps[g]).collect(),
            energy_fj: (0..n_gates).map(|g| sim.energy_fj[g]).collect(),
            absorbed_frac: sim.config().absorbed_energy_fraction,
            topo: netlist
                .topo_order()
                .iter()
                .map(|g| g.index() as u32)
                .collect(),
            pattern: vec![0; n_gates],
            values: Vec::new(),
            pending: Vec::new(),
            last_switch: Vec::new(),
            touched: Vec::new(),
            events: Vec::new(),
            queue: EventQueue::new(width),
            seq: 0,
            samples: Vec::new(),
        }
    }

    /// The simulator this session runs on.
    pub fn simulator(&self) -> &'a Simulator<'a> {
        self.sim
    }

    /// Run one input transition; the event log and settled net values
    /// stay borrowable from the session (no allocation) until the next
    /// run. Events are in non-decreasing time order.
    ///
    /// # Panics
    ///
    /// Panics if either input slice length differs from the netlist's
    /// primary input count.
    pub fn simulate(
        &mut self,
        initial: &[bool],
        final_inputs: &[bool],
    ) -> (&[SwitchEvent], &[bool]) {
        self.run(initial, final_inputs);
        (&self.events, &self.values)
    }

    /// Like [`Simulator::transition`], materializing an owned record.
    pub fn transition(&mut self, initial: &[bool], final_inputs: &[bool]) -> TransitionRecord {
        self.run(initial, final_inputs);
        TransitionRecord {
            events: self.events.clone(),
            settled: self.values.clone(),
        }
    }

    /// Like [`Simulator::capture`]: simulate and render the power trace,
    /// with noise (if configured) seeded deterministically from the
    /// stimulus.
    pub fn capture(
        &mut self,
        initial: &[bool],
        final_inputs: &[bool],
        sampling: &SamplingConfig,
    ) -> Vec<f64> {
        let seed = stimulus_noise_seed(self.sim.config().seed, initial, final_inputs);
        let mut rng = SmallRng::seed_from_u64(seed);
        self.capture_with_rng(initial, final_inputs, sampling, &mut rng)
    }

    /// Like [`Simulator::capture_with_rng`].
    pub fn capture_with_rng<R: Rng>(
        &mut self,
        initial: &[bool],
        final_inputs: &[bool],
        sampling: &SamplingConfig,
        rng: &mut R,
    ) -> Vec<f64> {
        self.capture_with_rng_stats(initial, final_inputs, sampling, rng)
            .0
    }

    /// Like [`Simulator::capture_with_rng_stats`]: the returned trace is
    /// the only per-capture allocation on this path.
    pub fn capture_with_rng_stats<R: Rng>(
        &mut self,
        initial: &[bool],
        final_inputs: &[bool],
        sampling: &SamplingConfig,
        rng: &mut R,
    ) -> (Vec<f64>, CaptureStats) {
        let mut out = Vec::new();
        let stats = self.capture_into(initial, final_inputs, sampling, rng, &mut out);
        (out, stats)
    }

    /// Fully allocation-free capture: render into the session's own
    /// sample buffer and borrow it. For callers that copy samples out
    /// (or reduce them in place) rather than keeping the trace.
    pub fn capture_trace<R: Rng>(
        &mut self,
        initial: &[bool],
        final_inputs: &[bool],
        sampling: &SamplingConfig,
        rng: &mut R,
    ) -> (&[f64], CaptureStats) {
        let mut out = std::mem::take(&mut self.samples);
        let stats = self.capture_into(initial, final_inputs, sampling, rng, &mut out);
        self.samples = out;
        (&self.samples, stats)
    }

    /// Capture into a caller-owned buffer (cleared and resized to the
    /// sample count), reusing its allocation across traces.
    pub fn capture_into<R: Rng>(
        &mut self,
        initial: &[bool],
        final_inputs: &[bool],
        sampling: &SamplingConfig,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) -> CaptureStats {
        self.run(initial, final_inputs);
        let sim = self.sim;
        let delay_ps = &self.delay_ps;
        sample_waveform_into(
            out,
            &self.events,
            sampling,
            sim.config().pulse_width_factor,
            |g| delay_ps[g.index()],
            PulseShape::Triangular,
        );
        if sim.config().noise_mw > 0.0 {
            for s in out.iter_mut() {
                *s += sim.config().noise_mw * gaussian(rng);
            }
        }
        CaptureStats::from_events(&self.events)
    }

    /// The event loop (see `Simulator::transition` for the physics).
    /// Scratch is reset on *entry*, not exit, so a capture that panicked
    /// mid-run (the executor's fault-injection path) leaves the session
    /// ready for its retry.
    fn run(&mut self, initial: &[bool], final_inputs: &[bool]) {
        let sim = self.sim;
        let netlist = sim.netlist();
        assert_eq!(final_inputs.len(), netlist.num_inputs());
        assert_eq!(
            initial.len(),
            netlist.num_inputs(),
            "netlist `{}` has {} inputs, got {}",
            netlist.name(),
            netlist.num_inputs(),
            initial.len()
        );
        let n_gates = netlist.gates().len();

        // Settle on `initial`, filling the per-gate input-pattern cache
        // the event loop maintains incrementally from here on.
        self.values.clear();
        self.values.resize(netlist.nets().len(), false);
        for (net, &v) in netlist.inputs().iter().zip(initial) {
            self.values[net.index()] = v;
        }
        for i in 0..self.topo.len() {
            let g = self.topo[i] as usize;
            let lo = self.input_offsets[g] as usize;
            let hi = self.input_offsets[g + 1] as usize;
            let mut p = 0u8;
            for (bit, &net) in self.input_nets[lo..hi].iter().enumerate() {
                p |= (self.values[net as usize] as u8) << bit;
            }
            self.pattern[g] = p;
            self.values[self.output_nets[g] as usize] = (self.truth[g] >> p) & 1 == 1;
        }

        self.pending.clear();
        self.pending.resize(n_gates, Pending::default());
        self.last_switch.clear();
        self.last_switch.resize(n_gates, f64::NEG_INFINITY);
        self.events.clear();
        self.queue.reset();
        self.seq = 0;
        self.touched.clear();

        // Apply the new primary inputs at t = 0 and seed the queue with
        // the gates they feed. All pattern bits flip before any gate is
        // evaluated, exactly as a value-gathering engine would see it.
        for (&net, &v) in netlist.inputs().iter().zip(final_inputs) {
            if self.values[net.index()] != v {
                self.values[net.index()] = v;
                let lo = self.load_offsets[net.index()] as usize;
                let hi = self.load_offsets[net.index() + 1] as usize;
                for k in lo..hi {
                    let edge = self.load_edges[k];
                    self.pattern[(edge >> 3) as usize] ^= 1 << (edge & 7);
                    self.touched.push(edge >> 3);
                }
            }
        }
        self.touched.sort_unstable();
        self.touched.dedup();
        for i in 0..self.touched.len() {
            let g = self.touched[i] as usize;
            self.schedule(g, 0.0);
        }

        while let Some(ev) = self.queue.pop() {
            let g = ev.gate as usize;
            let p = self.pending[g];
            if p.seq != ev.seq {
                continue; // cancelled or superseded
            }
            let t = p.time_ps;
            let v = p.val;
            self.pending[g].seq = 0;
            let out_net = self.output_nets[g] as usize;
            debug_assert_ne!(self.values[out_net], v);
            self.values[out_net] = v;
            // A node re-toggling before its output fully settles never
            // completes the swing: scale the drawn charge by the fraction
            // of the swing achieved (see Simulator::transition docs).
            let swing_ps = 3.0 * self.delay_ps[g];
            let elapsed = t - self.last_switch[g];
            let swing_fraction = (elapsed / swing_ps).min(1.0);
            self.last_switch[g] = t;
            self.events.push(SwitchEvent {
                gate: self.gate_ids[g],
                time_ps: t,
                rising: v,
                energy_fj: self.energy_fj[g] * swing_fraction,
                absorbed: false,
            });
            // Two phases on the fan-out: flip every affected pattern
            // bit, then re-evaluate each load (a gate connected to this
            // net on several pins must see them all flip first).
            let lo = self.load_offsets[out_net] as usize;
            let hi = self.load_offsets[out_net + 1] as usize;
            for k in lo..hi {
                let edge = self.load_edges[k];
                self.pattern[(edge >> 3) as usize] ^= 1 << (edge & 7);
            }
            for k in lo..hi {
                let g = (self.load_edges[k] >> 3) as usize;
                self.schedule(g, t);
            }
        }

        // Final ordering by time. Events commit in non-decreasing time
        // order — only absorbed glitches (recorded at their revoked
        // *scheduled* time) land a few slots early — so a stable
        // insertion sort is O(n + inversions) and, unlike the std
        // stable sort, allocation-free. Stable-sort output is unique,
        // so this matches the reference engine's `sort_by` exactly.
        let events = &mut self.events[..];
        for i in 1..events.len() {
            let mut j = i;
            while j > 0 && events[j - 1].time_ps.total_cmp(&events[j].time_ps).is_gt() {
                events.swap(j - 1, j);
                j -= 1;
            }
        }
    }

    /// Re-evaluate gate `g` from its cached input pattern and schedule /
    /// cancel its output event under inertial-delay semantics.
    fn schedule(&mut self, g: usize, t_now: f64) {
        let new_v = (self.truth[g] >> self.pattern[g]) & 1 == 1;
        let cur = self.values[self.output_nets[g] as usize];
        let p = self.pending[g];
        if p.seq != 0 {
            if p.val == new_v {
                // Already heading to the right value; the earlier event
                // stands (re-evaluation cannot arrive earlier).
                return;
            }
            // The scheduled swing is revoked before completing: the
            // output made a partial excursion — an absorbed glitch.
            let tp = p.time_ps;
            self.pending[g].seq = 0;
            if self.absorbed_frac > 0.0 {
                self.events.push(SwitchEvent {
                    gate: self.gate_ids[g],
                    time_ps: tp,
                    rising: !cur,
                    energy_fj: self.energy_fj[g] * self.absorbed_frac,
                    absorbed: true,
                });
            }
            if new_v != cur {
                self.push_event(g, t_now, new_v);
            }
        } else if new_v != cur {
            self.push_event(g, t_now, new_v);
        }
    }

    fn push_event(&mut self, g: usize, t_now: f64, value: bool) {
        self.seq += 1;
        let t = t_now + self.delay_ps[g];
        self.pending[g] = Pending {
            time_ps: t,
            seq: self.seq,
            val: value,
        };
        self.queue.push(QueuedEvent {
            time_ps: t,
            seq: self.seq,
            gate: g as u32,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use sbox_netlist::NetlistBuilder;

    /// A fanout-heavy netlist where several inputs race: two XOR layers
    /// over four inputs plus skewed inverter chains, so glitches,
    /// cancellations and superseded events all occur.
    fn racy_netlist() -> sbox_netlist::Netlist {
        let mut b = NetlistBuilder::new("racy");
        let x = b.input_bus("x", 4);
        let d0 = b.not(x[0]);
        let d1 = b.not(d0);
        let a = b.xor(d1, x[1]);
        let c = b.xor(x[2], x[3]);
        let y = b.xor(a, c);
        let z = b.and(&[a, c, d1]);
        b.output("y", y);
        b.output("z", z);
        b.finish().expect("valid")
    }

    fn noisy_config() -> SimConfig {
        SimConfig {
            process_sigma: 0.08,
            noise_mw: 0.02,
            ..SimConfig::default()
        }
    }

    #[test]
    fn queue_pops_in_time_then_seq_order() {
        let mut q = EventQueue::new(5.0);
        let mk = |t: f64, seq: u32| QueuedEvent {
            time_ps: t,
            seq,
            gate: 0,
        };
        // Same bucket ties resolve by seq; cross-bucket by time.
        for (t, s) in [(12.0, 1), (3.0, 2), (3.0, 3), (27.0, 4), (11.0, 5)] {
            q.push(mk(t, s));
        }
        // Push during drain: after popping (3.0, 2) push an event that
        // numerically lands in the open bucket.
        assert_eq!(q.pop().map(|e| e.seq), Some(2));
        q.push(mk(4.5, 6));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![3, 6, 5, 1, 4]);
        // A drained queue resets in O(1) and is reusable.
        q.reset();
        assert!(q.pop().is_none());
        q.push(mk(1.0, 7));
        assert_eq!(q.pop().map(|e| e.seq), Some(7));
    }

    #[test]
    fn queue_reset_discards_undrained_entries() {
        let mut q = EventQueue::new(2.0);
        for i in 0..10u32 {
            q.push(QueuedEvent {
                time_ps: i as f64,
                seq: i,
                gate: 0,
            });
        }
        let _ = q.pop();
        q.reset(); // mid-drain reset: the panic-retry path
        assert!(q.pop().is_none());
        q.push(QueuedEvent {
            time_ps: 0.5,
            seq: 99,
            gate: 0,
        });
        assert_eq!(q.pop().map(|e| e.seq), Some(99));
    }

    /// Satellite: the seeded gate order (`touched` after
    /// `sort_unstable` + `dedup`) is deterministic — repeated runs of
    /// the same stimulus through one session produce identical event
    /// sequences, equal to a fresh simulator's.
    #[test]
    fn seeded_gate_order_is_deterministic() {
        let nl = racy_netlist();
        let sim = Simulator::new(&nl, &noisy_config());
        let mut session = sim.session();
        let a = session.transition(&[false; 4], &[true; 4]);
        let b = session.transition(&[false; 4], &[true; 4]);
        assert_eq!(a.events, b.events, "same stimulus, same session");
        let fresh = sim.transition(&[false; 4], &[true; 4]);
        assert_eq!(a.events, fresh.events, "session vs fresh simulator");
        assert_eq!(a.settled, fresh.settled);
        // sort_unstable + dedup yields a strictly increasing seed list —
        // observable as the t≈delay first wave being sorted by gate id
        // within equal times.
        assert!(!a.events.is_empty());
    }

    #[test]
    fn interleaved_session_captures_match_fresh_simulator_bit_for_bit() {
        let nl = racy_netlist();
        let sim = Simulator::new(&nl, &noisy_config());
        let sampling = SamplingConfig::default();
        let mut session = sim.session();
        // Interleave many different stimuli through ONE session and
        // compare each against the allocating path, including noise and
        // stats.
        for step in 0u64..32 {
            let iv: Vec<bool> = (0..4).map(|i| (step >> i) & 1 == 1).collect();
            let fv: Vec<bool> = (0..4).map(|i| ((step * 7 + 3) >> i) & 1 == 1).collect();
            let mut rng_a = SmallRng::seed_from_u64(step);
            let mut rng_b = SmallRng::seed_from_u64(step);
            let (trace_s, stats_s) =
                session.capture_with_rng_stats(&iv, &fv, &sampling, &mut rng_a);
            let (trace_f, stats_f) = sim.capture_with_rng_stats(&iv, &fv, &sampling, &mut rng_b);
            assert_eq!(trace_s, trace_f, "step {step}");
            assert_eq!(stats_s, stats_f, "step {step}");
            assert_eq!(
                session.capture(&iv, &fv, &sampling),
                sim.capture(&iv, &fv, &sampling)
            );
        }
    }

    #[test]
    fn capture_trace_and_capture_into_match_the_owning_path() {
        let nl = racy_netlist();
        let sim = Simulator::new(&nl, &noisy_config());
        let sampling = SamplingConfig::default();
        let mut session = sim.session();
        let iv = [false, true, false, true];
        let fv = [true, true, false, false];
        let mut r1 = SmallRng::seed_from_u64(5);
        let mut r2 = SmallRng::seed_from_u64(5);
        let mut r3 = SmallRng::seed_from_u64(5);
        let (owned, stats) = session.capture_with_rng_stats(&iv, &fv, &sampling, &mut r1);
        let mut buf = Vec::new();
        let stats_into = session.capture_into(&iv, &fv, &sampling, &mut r2, &mut buf);
        assert_eq!(buf, owned);
        assert_eq!(stats_into, stats);
        let (borrowed, stats_ref) = session.capture_trace(&iv, &fv, &sampling, &mut r3);
        assert_eq!(borrowed, owned.as_slice());
        assert_eq!(stats_ref, stats);
    }

    /// A session left dirty by a panicking capture must recover: the
    /// retry is bit-identical to a clean capture (the executor's
    /// fault-isolation contract).
    #[test]
    fn session_recovers_after_a_mid_capture_panic() {
        let nl = racy_netlist();
        let sim = Simulator::new(&nl, &noisy_config());
        let sampling = SamplingConfig::default();
        let mut session = sim.session();
        let reference = session.capture(&[false; 4], &[true; 4], &sampling);
        // Leave the session with stale state from a previous capture,
        // panic out of the next one (width assert), and reuse it: the
        // entry-reset contract makes the retry clean. (Mid-drain queue
        // abandonment is covered by the queue unit tests above.)
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            session.capture(&[false; 4], &[true; 3], &sampling)
        }));
        assert!(poisoned.is_err(), "short input vector must panic");
        let retried = session.capture(&[false; 4], &[true; 4], &sampling);
        assert_eq!(retried, reference);
    }
}
