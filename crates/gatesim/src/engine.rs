//! The event-driven simulation engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sbox_netlist::{GateId, Netlist};

use crate::power::{gaussian, sample_waveform, PulseShape};
use crate::{Derating, SamplingConfig, SimConfig};

/// One output transition (or absorbed glitch pulse) of one gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchEvent {
    /// The switching gate.
    pub gate: GateId,
    /// Time of the (attempted) output change, in ps after the stimulus.
    pub time_ps: f64,
    /// Direction of the (attempted) transition.
    pub rising: bool,
    /// Energy drawn from the supply by this event, in femtojoules.
    pub energy_fj: f64,
    /// `true` if the pulse was absorbed by the inertial-delay rule (the
    /// output never completed the swing; `energy_fj` is already scaled by
    /// the configured absorbed fraction).
    pub absorbed: bool,
}

/// The result of simulating one input transition.
#[derive(Debug, Clone)]
pub struct TransitionRecord {
    /// All supply-current events, in non-decreasing time order.
    pub events: Vec<SwitchEvent>,
    /// Final settled value of every net (indexed by `NetId::index`).
    pub settled: Vec<bool>,
}

impl TransitionRecord {
    /// Total switching energy of the transition in femtojoules.
    pub fn total_energy_fj(&self) -> f64 {
        self.events.iter().map(|e| e.energy_fj).sum()
    }

    /// Number of full (non-absorbed) output transitions.
    pub fn full_transitions(&self) -> usize {
        self.events.iter().filter(|e| !e.absorbed).count()
    }

    /// Number of glitch pulses absorbed by inertial filtering.
    pub fn absorbed_glitches(&self) -> usize {
        self.events.iter().filter(|e| e.absorbed).count()
    }

    /// Time of the last event in ps (0.0 when nothing switched).
    pub fn settle_time_ps(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.time_ps)
    }
}

/// Event counters of one capture, cheap enough to aggregate across a
/// whole campaign (the `TransitionRecord` itself holds per-event detail
/// that trace acquisition does not need to keep).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CaptureStats {
    /// Total supply events (full transitions + absorbed glitches).
    pub events: usize,
    /// Completed output transitions.
    pub full_transitions: usize,
    /// Glitch pulses absorbed by inertial filtering.
    pub absorbed_glitches: usize,
    /// Time of the last event in ps (0.0 when nothing switched).
    pub settle_time_ps: f64,
}

impl CaptureStats {
    /// Accumulate another capture's counters into this one
    /// (`settle_time_ps` keeps the maximum).
    pub fn merge(&mut self, other: &CaptureStats) {
        self.events += other.events;
        self.full_transitions += other.full_transitions;
        self.absorbed_glitches += other.absorbed_glitches;
        self.settle_time_ps = self.settle_time_ps.max(other.settle_time_ps);
    }
}

impl From<&TransitionRecord> for CaptureStats {
    fn from(record: &TransitionRecord) -> Self {
        Self {
            events: record.events.len(),
            full_transitions: record.full_transitions(),
            absorbed_glitches: record.absorbed_glitches(),
            settle_time_ps: record.settle_time_ps(),
        }
    }
}

/// An event-driven timing/power simulator bound to one netlist.
///
/// Construction samples the per-gate process variation from
/// [`SimConfig::seed`]; the same `Simulator` therefore models one physical
/// die measured many times. See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    config: SimConfig,
    /// Derated per-gate propagation delay in ps.
    delay_ps: Vec<f64>,
    /// Derated per-gate full-transition energy in fJ (intrinsic + fanout
    /// load at Vdd).
    energy_fj: Vec<f64>,
}

impl<'a> Simulator<'a> {
    /// Build a simulator for fresh (unaged) silicon.
    pub fn new(netlist: &'a Netlist, config: &SimConfig) -> Self {
        Self::with_derating(netlist, config, &Derating::fresh(netlist))
    }

    /// Build a simulator with per-gate aging derating.
    ///
    /// # Panics
    ///
    /// Panics if `derating.len()` differs from the netlist's gate count.
    pub fn with_derating(netlist: &'a Netlist, config: &SimConfig, derating: &Derating) -> Self {
        assert_eq!(
            derating.len(),
            netlist.gates().len(),
            "derating table does not match netlist"
        );
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let vdd_sq_scale = (config.vdd_v / 1.2).powi(2);
        let mut delay_ps = Vec::with_capacity(netlist.gates().len());
        let mut energy_fj = Vec::with_capacity(netlist.gates().len());
        for (g, gate) in netlist.gates().iter().enumerate() {
            let jitter = (1.0 + config.process_sigma * gaussian(&mut rng)).clamp(0.6, 1.4);
            delay_ps.push(gate.cell().delay_ps() * jitter * derating.delay_factor(g));
            let intrinsic = gate.cell().switch_energy_fj() * vdd_sq_scale;
            let load = 0.5 * netlist.fanout_cap_ff(gate.output()) * config.vdd_v * config.vdd_v;
            energy_fj.push((intrinsic + load) * derating.current_factor(g));
        }
        Self {
            netlist,
            config: config.clone(),
            delay_ps,
            energy_fj,
        }
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Derated propagation delay of a gate, in ps.
    pub fn gate_delay_ps(&self, gate: GateId) -> f64 {
        self.delay_ps[gate.index()]
    }

    /// Simulate the circuit settling into `initial`, then switching its
    /// primary inputs to `final_inputs` at t = 0, recording every supply
    /// event until quiescence.
    ///
    /// # Panics
    ///
    /// Panics if either input slice length differs from the netlist's
    /// primary input count.
    pub fn transition(&self, initial: &[bool], final_inputs: &[bool]) -> TransitionRecord {
        assert_eq!(final_inputs.len(), self.netlist.num_inputs());
        let mut values = self.netlist.evaluate_nets(initial);

        // Pending scheduled output change per gate: (time, value, seq).
        let mut pending: Vec<Option<(f64, bool, u64)>> = vec![None; self.netlist.gates().len()];
        let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut events: Vec<SwitchEvent> = Vec::new();

        // Apply the new primary inputs at t = 0 and seed the queue with the
        // gates they feed.
        let mut touched: Vec<GateId> = Vec::new();
        for (idx, (&net, &v)) in self.netlist.inputs().iter().zip(final_inputs).enumerate() {
            let _ = idx;
            if values[net.index()] != v {
                values[net.index()] = v;
                touched.extend(self.netlist.net(net).loads());
            }
        }
        touched.sort();
        touched.dedup();
        for g in touched {
            self.schedule(
                g,
                0.0,
                &values,
                &mut pending,
                &mut heap,
                &mut seq,
                &mut events,
            );
        }

        let mut last_switch = vec![f64::NEG_INFINITY; self.netlist.gates().len()];
        while let Some(Reverse(entry)) = heap.pop() {
            let gid = entry.gate;
            let Some((t, v, s)) = pending[gid.index()] else {
                continue; // cancelled
            };
            if s != entry.seq {
                continue; // superseded
            }
            pending[gid.index()] = None;
            let out_net = self.netlist.gate(gid).output();
            debug_assert_ne!(values[out_net.index()], v);
            values[out_net.index()] = v;
            // A node re-toggling before its output fully settles never
            // completes the swing: scale the drawn charge by the fraction
            // of the swing achieved. The settling window is a few gate
            // delays (output slew ≫ 50 % switching point), so glitch
            // trains — edges spaced ~1 delay apart — draw noticeably less
            // charge per edge than well-separated functional transitions.
            let swing_ps = 3.0 * self.delay_ps[gid.index()];
            let elapsed = t - last_switch[gid.index()];
            let swing_fraction = (elapsed / swing_ps).min(1.0);
            last_switch[gid.index()] = t;
            events.push(SwitchEvent {
                gate: gid,
                time_ps: t,
                rising: v,
                energy_fj: self.energy_fj[gid.index()] * swing_fraction,
                absorbed: false,
            });
            for &load in self.netlist.net(out_net).loads() {
                self.schedule(
                    load,
                    t,
                    &values,
                    &mut pending,
                    &mut heap,
                    &mut seq,
                    &mut events,
                );
            }
        }

        events.sort_by(|a, b| a.time_ps.total_cmp(&b.time_ps));
        TransitionRecord {
            events,
            settled: values,
        }
    }

    /// Evaluate gate `g` with the net values current at time `t_now` and
    /// schedule / cancel its output event under inertial-delay semantics.
    #[allow(clippy::too_many_arguments)]
    fn schedule(
        &self,
        g: GateId,
        t_now: f64,
        values: &[bool],
        pending: &mut [Option<(f64, bool, u64)>],
        heap: &mut BinaryHeap<Reverse<HeapEntry>>,
        seq: &mut u64,
        events: &mut Vec<SwitchEvent>,
    ) {
        let gate = self.netlist.gate(g);
        let mut pins = [false; 4];
        for (slot, net) in pins.iter_mut().zip(gate.inputs()) {
            *slot = values[net.index()];
        }
        let new_v = gate.cell().evaluate(&pins[..gate.inputs().len()]);
        let cur = values[gate.output().index()];
        match pending[g.index()] {
            Some((tp, vp, _)) if vp == new_v => {
                // Already heading to the right value; the earlier event
                // stands (re-evaluation cannot arrive earlier).
                let _ = tp;
            }
            Some((tp, _, _)) => {
                // The scheduled swing is revoked before completing: the
                // output made a partial excursion — an absorbed glitch.
                pending[g.index()] = None;
                if self.config.absorbed_energy_fraction > 0.0 {
                    events.push(SwitchEvent {
                        gate: g,
                        time_ps: tp,
                        rising: !cur,
                        energy_fj: self.energy_fj[g.index()] * self.config.absorbed_energy_fraction,
                        absorbed: true,
                    });
                }
                if new_v != cur {
                    self.push_event(g, t_now, new_v, pending, heap, seq);
                }
            }
            None => {
                if new_v != cur {
                    self.push_event(g, t_now, new_v, pending, heap, seq);
                }
            }
        }
    }

    fn push_event(
        &self,
        g: GateId,
        t_now: f64,
        value: bool,
        pending: &mut [Option<(f64, bool, u64)>],
        heap: &mut BinaryHeap<Reverse<HeapEntry>>,
        seq: &mut u64,
    ) {
        *seq += 1;
        let t = t_now + self.delay_ps[g.index()];
        pending[g.index()] = Some((t, value, *seq));
        heap.push(Reverse(HeapEntry {
            time_ps: t,
            seq: *seq,
            gate: g,
        }));
    }

    /// Run [`Simulator::transition`] and render the power trace (mW per
    /// sample). Measurement noise, if configured, is derived
    /// deterministically from the stimulus so repeated captures of the same
    /// pair differ only via the mask randomness the caller injects.
    pub fn capture(
        &self,
        initial: &[bool],
        final_inputs: &[bool],
        sampling: &SamplingConfig,
    ) -> Vec<f64> {
        let mut noise_seed = self.config.seed ^ 0x9e37_79b9_7f4a_7c15;
        for (i, &b) in initial.iter().chain(final_inputs).enumerate() {
            if b {
                noise_seed = noise_seed.rotate_left(7).wrapping_add(0x100 + i as u64);
            }
        }
        let mut rng = SmallRng::seed_from_u64(noise_seed);
        self.capture_with_rng(initial, final_inputs, sampling, &mut rng)
    }

    /// Like [`Simulator::capture`] but drawing measurement noise from the
    /// supplied generator (pass `&mut` of any [`rand::Rng`]).
    pub fn capture_with_rng<R: Rng>(
        &self,
        initial: &[bool],
        final_inputs: &[bool],
        sampling: &SamplingConfig,
        rng: &mut R,
    ) -> Vec<f64> {
        self.capture_with_rng_stats(initial, final_inputs, sampling, rng)
            .0
    }

    /// Like [`Simulator::capture_with_rng`] but also returning the event
    /// counters of the underlying transition, so callers (the campaign
    /// engine's run reports) can account for simulator work without
    /// re-simulating.
    pub fn capture_with_rng_stats<R: Rng>(
        &self,
        initial: &[bool],
        final_inputs: &[bool],
        sampling: &SamplingConfig,
        rng: &mut R,
    ) -> (Vec<f64>, CaptureStats) {
        let record = self.transition(initial, final_inputs);
        let mut samples = sample_waveform(
            &record.events,
            sampling,
            self.config.pulse_width_factor,
            |g| self.delay_ps[g.index()],
            PulseShape::Triangular,
        );
        if self.config.noise_mw > 0.0 {
            for s in &mut samples {
                *s += self.config.noise_mw * gaussian(rng);
            }
        }
        (samples, CaptureStats::from(&record))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    time_ps: f64,
    seq: u64,
    gate: GateId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time_ps
            .total_cmp(&other.time_ps)
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_netlist::{CellType, NetlistBuilder};

    fn quiet_config() -> SimConfig {
        SimConfig {
            process_sigma: 0.0,
            noise_mw: 0.0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn settled_state_matches_functional_evaluation() {
        let mut b = NetlistBuilder::new("fa");
        let x = b.input_bus("x", 3);
        let s1 = b.xor(x[0], x[1]);
        let s = b.xor(s1, x[2]);
        let c1 = b.and(&[x[0], x[1]]);
        let c2 = b.and(&[s1, x[2]]);
        let c = b.or(&[c1, c2]);
        b.output("s", s);
        b.output("c", c);
        let nl = b.finish().expect("valid");
        let sim = Simulator::new(&nl, &quiet_config());
        for init in 0u64..8 {
            for fin in 0u64..8 {
                let iv: Vec<bool> = (0..3).map(|i| (init >> i) & 1 == 1).collect();
                let fv: Vec<bool> = (0..3).map(|i| (fin >> i) & 1 == 1).collect();
                let rec = sim.transition(&iv, &fv);
                let expect = nl.evaluate_nets(&fv);
                assert_eq!(rec.settled, expect, "init={init} fin={fin}");
            }
        }
    }

    #[test]
    fn no_input_change_means_no_events() {
        let mut b = NetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let sim = Simulator::new(&nl, &quiet_config());
        let rec = sim.transition(&[true], &[true]);
        assert!(rec.events.is_empty());
        assert_eq!(rec.total_energy_fj(), 0.0);
    }

    #[test]
    fn chain_delays_accumulate() {
        let mut b = NetlistBuilder::new("chain4");
        let a = b.input("a");
        let mut n = a;
        for _ in 0..4 {
            n = b.not(n);
        }
        b.output("y", n);
        let nl = b.finish().expect("valid");
        let sim = Simulator::new(&nl, &quiet_config());
        let rec = sim.transition(&[false], &[true]);
        assert_eq!(rec.events.len(), 4);
        let expect = 4.0 * CellType::Inv.delay_ps();
        assert!((rec.settle_time_ps() - expect).abs() < 1e-9);
    }

    #[test]
    fn unbalanced_xor_produces_a_glitch() {
        // y = (a after two inverters) XOR a: switching `a` makes the XOR see
        // its two inputs change at different times → a pulse on y.
        let mut b = NetlistBuilder::new("glitchy");
        let a = b.input("a");
        let d1 = b.not(a);
        let d2 = b.not(d1);
        let y = b.xor(d2, a);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let sim = Simulator::new(&nl, &quiet_config());
        let rec = sim.transition(&[false], &[true]);
        // y is logically constant 0, but the race must cost energy: either
        // an absorbed pulse or a full up-down excursion.
        assert!(
            rec.events.iter().any(|e| e.gate.index() == 2),
            "xor gate should glitch: {:?}",
            rec.events
        );
        assert!(!rec.settled[y.index()]);
    }

    #[test]
    fn inertial_absorption_costs_partial_energy() {
        let mut cfg = quiet_config();
        cfg.absorbed_energy_fraction = 0.5;
        // y = a ∧ ¬a: on a rising edge the AND sees (1, 1) for one inverter
        // delay (6 ps) — shorter than its own 13 ps delay, so the scheduled
        // rise is revoked before completing: an absorbed glitch.
        let mut b = NetlistBuilder::new("absorb");
        let a = b.input("a");
        let na = b.not(a);
        let y = b.gate(CellType::And2, &[a, na]);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let sim = Simulator::with_derating(&nl, &cfg, &Derating::fresh(&nl));
        let rec = sim.transition(&[false], &[true]);
        assert!(!rec.settled[y.index()], "y is logically constant 0");
        assert_eq!(rec.absorbed_glitches(), 1, "{:?}", rec.events);
        let absorbed: f64 = rec
            .events
            .iter()
            .filter(|e| e.absorbed)
            .map(|e| e.energy_fj)
            .sum();
        assert!(absorbed > 0.0);
        // With absorption cost disabled the glitch is free.
        let free = Simulator::new(
            &nl,
            &SimConfig {
                absorbed_energy_fraction: 0.0,
                ..quiet_config()
            },
        );
        let rec_free = free.transition(&[false], &[true]);
        assert_eq!(rec_free.absorbed_glitches(), 0);
    }

    #[test]
    fn capture_has_configured_shape_and_energy() {
        let mut b = NetlistBuilder::new("buf3");
        let a = b.input("a");
        let mut n = a;
        for _ in 0..3 {
            n = b.buf(n);
        }
        b.output("y", n);
        let nl = b.finish().expect("valid");
        let sim = Simulator::new(&nl, &quiet_config());
        // Fine sampling (2 ps) so the trapezoidal integral is accurate.
        let sampling = SamplingConfig {
            window_ps: 2000.0,
            samples: 1000,
        };
        let trace = sim.capture(&[false], &[true], &sampling);
        assert_eq!(trace.len(), 1000);
        // Integrated power ≈ total energy: Σ p·dt (mW·ps = fJ).
        let rec = sim.transition(&[false], &[true]);
        let integral: f64 = trace.iter().sum::<f64>() * sampling.period_ps();
        let energy = rec.total_energy_fj();
        assert!(
            (integral - energy).abs() / energy < 0.25,
            "integral {integral} vs energy {energy}"
        );
    }

    #[test]
    fn noise_changes_samples_but_not_determinism() {
        let mut b = NetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let mut cfg = quiet_config();
        cfg.noise_mw = 0.01;
        let sim = Simulator::new(&nl, &cfg);
        let t1 = sim.capture(&[false], &[true], &SamplingConfig::default());
        let t2 = sim.capture(&[false], &[true], &SamplingConfig::default());
        assert_eq!(t1, t2, "same stimulus → same deterministic noise");
        let t3 = sim.capture(&[true], &[false], &SamplingConfig::default());
        assert_ne!(t1, t3);
    }

    #[test]
    fn derating_slows_and_weakens() {
        let mut b = NetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let cfg = quiet_config();
        let fresh = Simulator::new(&nl, &cfg);
        let aged =
            Simulator::with_derating(&nl, &cfg, &Derating::from_factors(vec![1.2], vec![0.9]));
        let rf = fresh.transition(&[false], &[true]);
        let ra = aged.transition(&[false], &[true]);
        assert!(ra.settle_time_ps() > rf.settle_time_ps());
        assert!(ra.total_energy_fj() < rf.total_energy_fj());
    }
}
