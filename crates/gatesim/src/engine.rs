//! The event-driven simulation engine.
//!
//! The event loop itself lives in [`crate::session::CaptureSession`];
//! every entry point here runs on a (temporary) session, so the
//! allocating and session-reuse paths share one implementation and are
//! bit-identical by construction.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sbox_netlist::{GateId, Netlist};

use crate::power::gaussian;
use crate::session::CaptureSession;
use crate::{Derating, SamplingConfig, SimConfig};

/// One output transition (or absorbed glitch pulse) of one gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchEvent {
    /// The switching gate.
    pub gate: GateId,
    /// Time of the (attempted) output change, in ps after the stimulus.
    pub time_ps: f64,
    /// Direction of the (attempted) transition.
    pub rising: bool,
    /// Energy drawn from the supply by this event, in femtojoules.
    pub energy_fj: f64,
    /// `true` if the pulse was absorbed by the inertial-delay rule (the
    /// output never completed the swing; `energy_fj` is already scaled by
    /// the configured absorbed fraction).
    pub absorbed: bool,
}

/// The result of simulating one input transition.
#[derive(Debug, Clone)]
pub struct TransitionRecord {
    /// All supply-current events, in non-decreasing time order.
    pub events: Vec<SwitchEvent>,
    /// Final settled value of every net (indexed by `NetId::index`).
    pub settled: Vec<bool>,
}

impl TransitionRecord {
    /// Total switching energy of the transition in femtojoules.
    pub fn total_energy_fj(&self) -> f64 {
        self.events.iter().map(|e| e.energy_fj).sum()
    }

    /// Number of full (non-absorbed) output transitions.
    pub fn full_transitions(&self) -> usize {
        self.events.iter().filter(|e| !e.absorbed).count()
    }

    /// Number of glitch pulses absorbed by inertial filtering.
    pub fn absorbed_glitches(&self) -> usize {
        self.events.iter().filter(|e| e.absorbed).count()
    }

    /// Time of the last event in ps (0.0 when nothing switched).
    pub fn settle_time_ps(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.time_ps)
    }
}

/// Event counters of one capture, cheap enough to aggregate across a
/// whole campaign (the `TransitionRecord` itself holds per-event detail
/// that trace acquisition does not need to keep).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CaptureStats {
    /// Total supply events (full transitions + absorbed glitches).
    pub events: usize,
    /// Completed output transitions.
    pub full_transitions: usize,
    /// Glitch pulses absorbed by inertial filtering.
    pub absorbed_glitches: usize,
    /// Time of the last event in ps (0.0 when nothing switched).
    pub settle_time_ps: f64,
}

impl CaptureStats {
    /// Accumulate another capture's counters into this one
    /// (`settle_time_ps` keeps the maximum).
    pub fn merge(&mut self, other: &CaptureStats) {
        self.events += other.events;
        self.full_transitions += other.full_transitions;
        self.absorbed_glitches += other.absorbed_glitches;
        self.settle_time_ps = self.settle_time_ps.max(other.settle_time_ps);
    }

    /// Counters of one capture from its (time-sorted) event log.
    pub fn from_events(events: &[SwitchEvent]) -> Self {
        let absorbed = events.iter().filter(|e| e.absorbed).count();
        Self {
            events: events.len(),
            full_transitions: events.len() - absorbed,
            absorbed_glitches: absorbed,
            settle_time_ps: events.last().map_or(0.0, |e| e.time_ps),
        }
    }
}

impl From<&TransitionRecord> for CaptureStats {
    fn from(record: &TransitionRecord) -> Self {
        Self {
            events: record.events.len(),
            full_transitions: record.full_transitions(),
            absorbed_glitches: record.absorbed_glitches(),
            settle_time_ps: record.settle_time_ps(),
        }
    }
}

/// An event-driven timing/power simulator bound to one netlist.
///
/// Construction samples the per-gate process variation from
/// [`SimConfig::seed`]; the same `Simulator` therefore models one physical
/// die measured many times. See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    pub(crate) netlist: &'a Netlist,
    pub(crate) config: SimConfig,
    /// Derated per-gate propagation delay in ps.
    pub(crate) delay_ps: Vec<f64>,
    /// Derated per-gate full-transition energy in fJ (intrinsic + fanout
    /// load at Vdd).
    pub(crate) energy_fj: Vec<f64>,
}

impl<'a> Simulator<'a> {
    /// Build a simulator for fresh (unaged) silicon.
    pub fn new(netlist: &'a Netlist, config: &SimConfig) -> Self {
        Self::with_derating(netlist, config, &Derating::fresh(netlist))
    }

    /// Build a simulator with per-gate aging derating.
    ///
    /// # Panics
    ///
    /// Panics if `derating.len()` differs from the netlist's gate count.
    pub fn with_derating(netlist: &'a Netlist, config: &SimConfig, derating: &Derating) -> Self {
        assert_eq!(
            derating.len(),
            netlist.gates().len(),
            "derating table does not match netlist"
        );
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let vdd_sq_scale = (config.vdd_v / 1.2).powi(2);
        let mut delay_ps = Vec::with_capacity(netlist.gates().len());
        let mut energy_fj = Vec::with_capacity(netlist.gates().len());
        for (g, gate) in netlist.gates().iter().enumerate() {
            let jitter = (1.0 + config.process_sigma * gaussian(&mut rng)).clamp(0.6, 1.4);
            delay_ps.push(gate.cell().delay_ps() * jitter * derating.delay_factor(g));
            let intrinsic = gate.cell().switch_energy_fj() * vdd_sq_scale;
            let load = 0.5 * netlist.fanout_cap_ff(gate.output()) * config.vdd_v * config.vdd_v;
            energy_fj.push((intrinsic + load) * derating.current_factor(g));
        }
        Self {
            netlist,
            config: config.clone(),
            delay_ps,
            energy_fj,
        }
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Derated propagation delay of a gate, in ps.
    pub fn gate_delay_ps(&self, gate: GateId) -> f64 {
        self.delay_ps[gate.index()]
    }

    /// Derated full-transition energy of a gate, in fJ (intrinsic cell
    /// switching energy plus fanout load at the configured Vdd).
    pub fn gate_energy_fj(&self, gate: GateId) -> f64 {
        self.energy_fj[gate.index()]
    }

    /// Start a reusable capture session (simulation arena): all scratch
    /// state the event loop needs is allocated once and cleared between
    /// captures. Sessions borrow the simulator immutably, so one
    /// simulator can back a session per worker thread.
    pub fn session(&self) -> CaptureSession<'_> {
        CaptureSession::new(self)
    }

    /// Simulate the circuit settling into `initial`, then switching its
    /// primary inputs to `final_inputs` at t = 0, recording every supply
    /// event until quiescence.
    ///
    /// The timing/charge model: each gate output change propagates after
    /// the gate's derated delay; a node re-toggling before its output
    /// fully settles (a window of ~3 gate delays) never completes the
    /// swing and draws proportionally less charge, and pulses narrower
    /// than a gate's own delay are absorbed by the inertial-delay rule
    /// (costing [`SimConfig::absorbed_energy_fraction`] of a full
    /// swing). One-shot convenience over [`Simulator::session`]; reuse a
    /// session in loops to skip the per-call scratch allocation.
    ///
    /// # Panics
    ///
    /// Panics if either input slice length differs from the netlist's
    /// primary input count.
    pub fn transition(&self, initial: &[bool], final_inputs: &[bool]) -> TransitionRecord {
        self.session().transition(initial, final_inputs)
    }

    /// Run [`Simulator::transition`] and render the power trace (mW per
    /// sample). Measurement noise, if configured, is derived
    /// deterministically from the stimulus so repeated captures of the same
    /// pair differ only via the mask randomness the caller injects.
    pub fn capture(
        &self,
        initial: &[bool],
        final_inputs: &[bool],
        sampling: &SamplingConfig,
    ) -> Vec<f64> {
        let seed = stimulus_noise_seed(self.config.seed, initial, final_inputs);
        let mut rng = SmallRng::seed_from_u64(seed);
        self.capture_with_rng(initial, final_inputs, sampling, &mut rng)
    }

    /// Like [`Simulator::capture`] but drawing measurement noise from the
    /// supplied generator (pass `&mut` of any [`rand::Rng`]).
    pub fn capture_with_rng<R: Rng>(
        &self,
        initial: &[bool],
        final_inputs: &[bool],
        sampling: &SamplingConfig,
        rng: &mut R,
    ) -> Vec<f64> {
        self.capture_with_rng_stats(initial, final_inputs, sampling, rng)
            .0
    }

    /// Like [`Simulator::capture_with_rng`] but also returning the event
    /// counters of the underlying transition, so callers (the campaign
    /// engine's run reports) can account for simulator work without
    /// re-simulating.
    pub fn capture_with_rng_stats<R: Rng>(
        &self,
        initial: &[bool],
        final_inputs: &[bool],
        sampling: &SamplingConfig,
        rng: &mut R,
    ) -> (Vec<f64>, CaptureStats) {
        self.session()
            .capture_with_rng_stats(initial, final_inputs, sampling, rng)
    }
}

/// The deterministic per-stimulus noise seed of [`Simulator::capture`]:
/// a function of the config seed and the set input bits only, so
/// repeated captures of the same pair see the same noise.
pub(crate) fn stimulus_noise_seed(
    config_seed: u64,
    initial: &[bool],
    final_inputs: &[bool],
) -> u64 {
    let mut noise_seed = config_seed ^ 0x9e37_79b9_7f4a_7c15;
    for (i, &b) in initial.iter().chain(final_inputs).enumerate() {
        if b {
            noise_seed = noise_seed.rotate_left(7).wrapping_add(0x100 + i as u64);
        }
    }
    noise_seed
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_netlist::{CellType, NetlistBuilder};

    fn quiet_config() -> SimConfig {
        SimConfig {
            process_sigma: 0.0,
            noise_mw: 0.0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn settled_state_matches_functional_evaluation() {
        let mut b = NetlistBuilder::new("fa");
        let x = b.input_bus("x", 3);
        let s1 = b.xor(x[0], x[1]);
        let s = b.xor(s1, x[2]);
        let c1 = b.and(&[x[0], x[1]]);
        let c2 = b.and(&[s1, x[2]]);
        let c = b.or(&[c1, c2]);
        b.output("s", s);
        b.output("c", c);
        let nl = b.finish().expect("valid");
        let sim = Simulator::new(&nl, &quiet_config());
        for init in 0u64..8 {
            for fin in 0u64..8 {
                let iv: Vec<bool> = (0..3).map(|i| (init >> i) & 1 == 1).collect();
                let fv: Vec<bool> = (0..3).map(|i| (fin >> i) & 1 == 1).collect();
                let rec = sim.transition(&iv, &fv);
                let expect = nl.evaluate_nets(&fv);
                assert_eq!(rec.settled, expect, "init={init} fin={fin}");
            }
        }
    }

    #[test]
    fn no_input_change_means_no_events() {
        let mut b = NetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let sim = Simulator::new(&nl, &quiet_config());
        let rec = sim.transition(&[true], &[true]);
        assert!(rec.events.is_empty());
        assert_eq!(rec.total_energy_fj(), 0.0);
    }

    #[test]
    fn chain_delays_accumulate() {
        let mut b = NetlistBuilder::new("chain4");
        let a = b.input("a");
        let mut n = a;
        for _ in 0..4 {
            n = b.not(n);
        }
        b.output("y", n);
        let nl = b.finish().expect("valid");
        let sim = Simulator::new(&nl, &quiet_config());
        let rec = sim.transition(&[false], &[true]);
        assert_eq!(rec.events.len(), 4);
        let expect = 4.0 * CellType::Inv.delay_ps();
        assert!((rec.settle_time_ps() - expect).abs() < 1e-9);
    }

    #[test]
    fn unbalanced_xor_produces_a_glitch() {
        // y = (a after two inverters) XOR a: switching `a` makes the XOR see
        // its two inputs change at different times → a pulse on y.
        let mut b = NetlistBuilder::new("glitchy");
        let a = b.input("a");
        let d1 = b.not(a);
        let d2 = b.not(d1);
        let y = b.xor(d2, a);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let sim = Simulator::new(&nl, &quiet_config());
        let rec = sim.transition(&[false], &[true]);
        // y is logically constant 0, but the race must cost energy: either
        // an absorbed pulse or a full up-down excursion.
        assert!(
            rec.events.iter().any(|e| e.gate.index() == 2),
            "xor gate should glitch: {:?}",
            rec.events
        );
        assert!(!rec.settled[y.index()]);
    }

    #[test]
    fn inertial_absorption_costs_partial_energy() {
        let mut cfg = quiet_config();
        cfg.absorbed_energy_fraction = 0.5;
        // y = a ∧ ¬a: on a rising edge the AND sees (1, 1) for one inverter
        // delay (6 ps) — shorter than its own 13 ps delay, so the scheduled
        // rise is revoked before completing: an absorbed glitch.
        let mut b = NetlistBuilder::new("absorb");
        let a = b.input("a");
        let na = b.not(a);
        let y = b.gate(CellType::And2, &[a, na]);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let sim = Simulator::with_derating(&nl, &cfg, &Derating::fresh(&nl));
        let rec = sim.transition(&[false], &[true]);
        assert!(!rec.settled[y.index()], "y is logically constant 0");
        assert_eq!(rec.absorbed_glitches(), 1, "{:?}", rec.events);
        let absorbed: f64 = rec
            .events
            .iter()
            .filter(|e| e.absorbed)
            .map(|e| e.energy_fj)
            .sum();
        assert!(absorbed > 0.0);
        // With absorption cost disabled the glitch is free.
        let free = Simulator::new(
            &nl,
            &SimConfig {
                absorbed_energy_fraction: 0.0,
                ..quiet_config()
            },
        );
        let rec_free = free.transition(&[false], &[true]);
        assert_eq!(rec_free.absorbed_glitches(), 0);
    }

    #[test]
    fn capture_has_configured_shape_and_energy() {
        let mut b = NetlistBuilder::new("buf3");
        let a = b.input("a");
        let mut n = a;
        for _ in 0..3 {
            n = b.buf(n);
        }
        b.output("y", n);
        let nl = b.finish().expect("valid");
        let sim = Simulator::new(&nl, &quiet_config());
        // Fine sampling (2 ps) so the trapezoidal integral is accurate.
        let sampling = SamplingConfig {
            window_ps: 2000.0,
            samples: 1000,
        };
        let trace = sim.capture(&[false], &[true], &sampling);
        assert_eq!(trace.len(), 1000);
        // Integrated power ≈ total energy: Σ p·dt (mW·ps = fJ).
        let rec = sim.transition(&[false], &[true]);
        let integral: f64 = trace.iter().sum::<f64>() * sampling.period_ps();
        let energy = rec.total_energy_fj();
        assert!(
            (integral - energy).abs() / energy < 0.25,
            "integral {integral} vs energy {energy}"
        );
    }

    #[test]
    fn noise_changes_samples_but_not_determinism() {
        let mut b = NetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let mut cfg = quiet_config();
        cfg.noise_mw = 0.01;
        let sim = Simulator::new(&nl, &cfg);
        let t1 = sim.capture(&[false], &[true], &SamplingConfig::default());
        let t2 = sim.capture(&[false], &[true], &SamplingConfig::default());
        assert_eq!(t1, t2, "same stimulus → same deterministic noise");
        let t3 = sim.capture(&[true], &[false], &SamplingConfig::default());
        assert_ne!(t1, t3);
    }

    #[test]
    fn derating_slows_and_weakens() {
        let mut b = NetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let cfg = quiet_config();
        let fresh = Simulator::new(&nl, &cfg);
        let aged =
            Simulator::with_derating(&nl, &cfg, &Derating::from_factors(vec![1.2], vec![0.9]));
        let rf = fresh.transition(&[false], &[true]);
        let ra = aged.transition(&[false], &[true]);
        assert!(ra.settle_time_ps() > rf.settle_time_ps());
        assert!(ra.total_energy_fj() < rf.total_energy_fj());
    }
}
