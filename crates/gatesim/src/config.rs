//! Simulation and sampling configuration.

/// Electrical and timing configuration of the simulator.
///
/// The defaults reproduce the paper's operating point: Vdd = 1.2 V, 85 °C,
/// NANGATE-45nm-like cells.
///
/// # Example
///
/// ```
/// use gatesim::SimConfig;
///
/// let cfg = SimConfig {
///     process_sigma: 0.08,
///     ..SimConfig::default()
/// };
/// assert_eq!(cfg.vdd_v, 1.2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Supply voltage in volts.
    pub vdd_v: f64,
    /// Die temperature in °C (informative; aging models consume it).
    pub temperature_c: f64,
    /// Relative standard deviation of the per-gate-instance delay jitter
    /// (process variation). Sampled once per gate from the seed, then fixed
    /// for the life of the simulator — the same die is measured repeatedly,
    /// as in the paper's setup.
    pub process_sigma: f64,
    /// Seed for the process-variation sampling.
    pub seed: u64,
    /// Fraction of a full output swing's energy dissipated by a pulse that
    /// the inertial-delay rule absorbs (a partial excursion of the output
    /// node). Set to 0.0 for an idealized zero-cost filter.
    pub absorbed_energy_fraction: f64,
    /// Width of the current pulse of a full transition, as a multiple of the
    /// switching gate's (derated) propagation delay.
    pub pulse_width_factor: f64,
    /// Standard deviation of additive Gaussian measurement noise on each
    /// power sample, in mW. 0.0 disables noise.
    pub noise_mw: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            vdd_v: 1.2,
            temperature_c: 85.0,
            process_sigma: 0.05,
            seed: 0x5b0c_1eaf,
            absorbed_energy_fraction: 0.35,
            pulse_width_factor: 1.5,
            noise_mw: 0.0,
        }
    }
}

/// The oscilloscope: how power waveforms are discretized.
///
/// The default matches the paper: 100 samples over 2 ns (50 GS/s), starting
/// when the final value is applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Observation window in picoseconds.
    pub window_ps: f64,
    /// Number of samples across the window.
    pub samples: usize,
}

impl SamplingConfig {
    /// Sample period in picoseconds.
    pub fn period_ps(&self) -> f64 {
        self.window_ps / self.samples as f64
    }

    /// The sample instants in picoseconds.
    pub fn instants(&self) -> impl Iterator<Item = f64> + '_ {
        let dt = self.period_ps();
        (0..self.samples).map(move |k| k as f64 * dt)
    }
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            window_ps: 2000.0,
            samples: 100,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sampling_is_fifty_gigasamples() {
        let s = SamplingConfig::default();
        assert_eq!(s.period_ps(), 20.0);
        assert_eq!(s.instants().count(), 100);
        assert_eq!(s.instants().next(), Some(0.0));
    }

    #[test]
    fn default_operating_point_matches_paper() {
        let c = SimConfig::default();
        assert_eq!(c.vdd_v, 1.2);
        assert_eq!(c.temperature_c, 85.0);
    }
}
