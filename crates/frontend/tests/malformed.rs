//! Malformed-input matrix: every broken import produces a *typed*
//! diagnostic, never a panic.
//!
//! Each case runs the whole frontend under `catch_unwind`, so a panic
//! anywhere in the parser, the cell mapper, or the linker fails the
//! suite with the case name — the contract is `Err(FrontendError)`,
//! not "crashed with a helpful message". Fuzz-shaped cases (every
//! prefix of a valid file, byte deletions) ride along to keep the
//! property honest beyond the hand-picked corpus.

use std::panic::{catch_unwind, AssertUnwindSafe};

use sbox_circuits::{SboxCircuit, Scheme};
use sca_frontend::{
    import_auto, import_str, to_edif, to_yosys_json, EncodingSidecar, FrontendError, SourceFormat,
};

/// Run one import under `catch_unwind`, demanding a typed error.
fn expect_typed_error(name: &str, text: &str, format: SourceFormat) -> FrontendError {
    let result = catch_unwind(AssertUnwindSafe(|| import_str(text, format)));
    match result {
        Ok(Ok(design)) => panic!(
            "case `{name}` imported successfully ({} gates) — expected a diagnostic",
            design.netlist.gates().len()
        ),
        Ok(Err(e)) => e,
        Err(_) => panic!("case `{name}` PANICKED instead of returning FrontendError"),
    }
}

/// The import must either succeed or fail typed; it must never panic.
fn expect_no_panic(name: &str, text: &str) {
    let result = catch_unwind(AssertUnwindSafe(|| import_auto(text)));
    assert!(
        result.is_ok(),
        "case `{name}` PANICKED instead of returning a Result"
    );
}

#[test]
fn truncated_json_is_a_syntax_diagnostic() {
    for (name, text) in [
        ("empty", ""),
        ("brace", "{"),
        ("mid-key", "{\"modu"),
        ("mid-string", "{\"modules\": {\"m\": {\"po"),
        (
            "mid-number",
            "{\"modules\": {\"m\": {\"ports\": {\"a\": {\"bits\": [12",
        ),
        ("bare-garbage", "not json at all"),
        ("trailing", "{} trailing"),
    ] {
        let e = expect_typed_error(name, text, SourceFormat::YosysJson);
        assert!(
            matches!(
                e,
                FrontendError::Syntax { .. } | FrontendError::MissingField { .. }
            ),
            "case `{name}` produced the wrong diagnostic: {e}"
        );
    }
}

#[test]
fn unknown_cell_type_is_an_unmappable_diagnostic() {
    let text = r#"{"modules": {"m": {
        "ports": {"a": {"direction": "input", "bits": [2]},
                  "y": {"direction": "output", "bits": [3]}},
        "cells": {"g": {"type": "$_DFF_P_", "connections": {"D": [2], "Q": [3]}}}}}}"#;
    match expect_typed_error("unknown-cell", text, SourceFormat::YosysJson) {
        FrontendError::UnmappableCell { cell, cell_type } => {
            assert_eq!(cell, "g");
            assert_eq!(cell_type, "$_DFF_P_");
        }
        other => panic!("wrong diagnostic: {other}"),
    }
}

#[test]
fn width_mismatched_port_is_a_typed_diagnostic() {
    let text = r#"{"modules": {"m": {
        "ports": {"a": {"direction": "input", "bits": [2, 3, 4]},
                  "y": {"direction": "output", "bits": [5]}},
        "cells": {"g": {"type": "NAND2_X1",
                        "connections": {"A1": [2, 3, 4], "A2": [2], "ZN": [5]}}}}}}"#;
    match expect_typed_error("wide-port", text, SourceFormat::YosysJson) {
        FrontendError::PortWidthMismatch {
            cell,
            port,
            got,
            expected,
            ..
        } => {
            assert_eq!(cell, "g");
            assert_eq!(port, "A1");
            assert_eq!((got, expected), (3, 1));
        }
        other => panic!("wrong diagnostic: {other}"),
    }
}

#[test]
fn combinational_loop_names_the_cycle_members() {
    let text = r#"{"modules": {"m": {
        "ports": {"a": {"direction": "input", "bits": [2]},
                  "y": {"direction": "output", "bits": [3]}},
        "cells": {
            "ring0": {"type": "INV_X1", "connections": {"A": [5], "ZN": [4]}},
            "ring1": {"type": "INV_X1", "connections": {"A": [4], "ZN": [5]}},
            "tap":   {"type": "AND2_X1", "connections": {"A1": [2], "A2": [5], "ZN": [3]}}}}}}"#;
    match expect_typed_error("loop", text, SourceFormat::YosysJson) {
        FrontendError::CombinationalLoop { cells } => {
            assert!(cells.contains(&"ring0".to_string()), "{cells:?}");
            assert!(cells.contains(&"ring1".to_string()), "{cells:?}");
        }
        other => panic!("wrong diagnostic: {other}"),
    }
}

#[test]
fn dangling_and_doubly_driven_nets_are_typed() {
    let dangling = r#"{"modules": {"m": {
        "ports": {"a": {"direction": "input", "bits": [2]},
                  "y": {"direction": "output", "bits": [3]}},
        "cells": {"g": {"type": "OR2_X1",
                        "connections": {"A1": [2], "A2": [77], "ZN": [3]}}}}}}"#;
    assert!(matches!(
        expect_typed_error("dangling", dangling, SourceFormat::YosysJson),
        FrontendError::DanglingNet { .. }
    ));
    let doubled = r#"{"modules": {"m": {
        "ports": {"a": {"direction": "input", "bits": [2]},
                  "y": {"direction": "output", "bits": [3]}},
        "cells": {
            "g0": {"type": "INV_X1", "connections": {"A": [2], "ZN": [3]}},
            "g1": {"type": "INV_X1", "connections": {"A": [2], "ZN": [3]}}}}}}"#;
    assert!(matches!(
        expect_typed_error("doubled", doubled, SourceFormat::YosysJson),
        FrontendError::MultipleDrivers { .. }
    ));
}

#[test]
fn malformed_edif_is_typed() {
    for (name, text) in [
        ("empty", ""),
        ("unbalanced-open", "(edif x (edifVersion 2 0 0)"),
        ("unbalanced-close", "(edif x))"),
        ("bare-atom", "edif"),
        ("string-cut", "(edif x (cell (rename a \"unterminated"),
        ("no-cells", "(edif x (edifVersion 2 0 0) (library L))"),
    ] {
        let e = expect_typed_error(name, text, SourceFormat::Edif);
        assert!(
            matches!(
                e,
                FrontendError::Syntax { .. }
                    | FrontendError::MissingField { .. }
                    | FrontendError::NoTopModule { .. }
            ),
            "case `{name}` produced the wrong diagnostic: {e}"
        );
    }
}

#[test]
fn malformed_sidecars_are_typed() {
    for (name, text) in [
        ("empty", ""),
        ("unknown-scheme", "scheme = \"KECCAK\"\n"),
        ("bad-toml", "scheme \"LUT\"\n"),
        ("unknown-section", "scheme = \"LUT\"\n[masks]\nx = \"y\"\n"),
        ("bad-json", "{\"scheme\": "),
        ("json-bad-roles", "{\"scheme\": \"LUT\", \"roles\": 7}"),
    ] {
        let result = catch_unwind(AssertUnwindSafe(|| EncodingSidecar::parse(text)));
        match result {
            Ok(Ok(_)) => panic!("sidecar case `{name}` parsed — expected a diagnostic"),
            Ok(Err(_)) => {}
            Err(_) => panic!("sidecar case `{name}` PANICKED"),
        }
    }
}

/// Every prefix of a valid export must fail typed (or, for the full
/// text, succeed) — the classic truncation fuzz, both formats.
#[test]
fn every_truncation_of_a_valid_export_degrades_typed() {
    let netlist = SboxCircuit::build(Scheme::Lut);
    let json = to_yosys_json(netlist.netlist());
    // Step 7 keeps the matrix fast while still landing inside every
    // syntactic region of the file.
    for cut in (0..json.len()).step_by(7) {
        if json.is_char_boundary(cut) {
            expect_no_panic(&format!("json-prefix-{cut}"), &json[..cut]);
        }
    }
    let edif = to_edif(netlist.netlist());
    for cut in (0..edif.len()).step_by(7) {
        if edif.is_char_boundary(cut) {
            expect_no_panic(&format!("edif-prefix-{cut}"), &edif[..cut]);
        }
    }
}

/// Single-byte deletions anywhere in a valid export never panic.
#[test]
fn single_byte_deletions_never_panic() {
    let netlist = SboxCircuit::build(Scheme::Lut);
    let json = to_yosys_json(netlist.netlist());
    let bytes = json.as_bytes();
    for cut in (0..bytes.len()).step_by(11) {
        let mut mutated = Vec::with_capacity(bytes.len() - 1);
        mutated.extend_from_slice(&bytes[..cut]);
        mutated.extend_from_slice(&bytes[cut + 1..]);
        if let Ok(text) = String::from_utf8(mutated) {
            expect_no_panic(&format!("json-del-{cut}"), &text);
        }
    }
}
