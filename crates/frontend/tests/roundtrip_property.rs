//! Property test: export ∘ import is the identity on netlist structure.
//!
//! Randomized small netlists — grown gate by gate from the full cell
//! library, then perturbed through the workspace's own mutators
//! (dead-gate sweep, delay balancing, product observation, input
//! rewiring) — must survive `to_yosys_json` → `import_str` and
//! `to_edif` → `import_str` with identical gate counts, topology, and
//! delays. The generator is seeded, so a failure reproduces exactly.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sbox_netlist::transform::{balance_delays, observe_product, rewire_input, sweep_dead_gates};
use sbox_netlist::{GateId, Netlist, NetlistBuilder, ALL_CELL_TYPES};
use sca_frontend::{
    import_str, netlist_digest, structural_diff, to_edif, to_yosys_json, SourceFormat,
};

/// Grow a random netlist: 1–6 inputs, 1–24 gates over the whole cell
/// library wired to arbitrary earlier nets, 1–4 outputs drawn from the
/// gate outputs (and occasionally a raw input, to cover pass-through
/// ports).
fn random_netlist(rng: &mut SmallRng, tag: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("prop_{tag}"));
    let num_inputs = rng.gen_range(1usize..=6);
    let mut nets: Vec<_> = (0..num_inputs).map(|i| b.input(format!("in{i}"))).collect();
    let num_gates = rng.gen_range(1usize..=24);
    let mut gate_outs = Vec::new();
    for _ in 0..num_gates {
        let cell = *ALL_CELL_TYPES.choose(rng).expect("non-empty");
        let inputs: Vec<_> = (0..cell.arity())
            .map(|_| *nets.choose(rng).expect("non-empty"))
            .collect();
        let out = b.gate(cell, &inputs);
        nets.push(out);
        gate_outs.push(out);
    }
    let num_outputs = rng.gen_range(1usize..=4);
    for i in 0..num_outputs {
        let pool = if rng.gen_bool(0.1) { &nets } else { &gate_outs };
        b.output(format!("out{i}"), *pool.choose(rng).expect("non-empty"));
    }
    b.finish().expect("random netlist is structurally valid")
}

/// Apply 0–2 random mutators, skipping any that reject the input
/// (e.g. a rewire that would form a cycle).
fn mutate(rng: &mut SmallRng, netlist: Netlist) -> Netlist {
    let mut current = netlist;
    for _ in 0..rng.gen_range(0usize..=2) {
        current = match rng.gen_range(0u8..4) {
            0 => sweep_dead_gates(&current).unwrap_or(current),
            1 => balance_delays(&current, rng.gen_range(1.0..50.0)).unwrap_or(current),
            2 => {
                let nets: Vec<_> = current.inputs().to_vec();
                match (nets.choose(rng), nets.choose(rng)) {
                    (Some(&a), Some(&b)) => observe_product(&current, a, b, "probe")
                        .map(|(n, _)| n)
                        .unwrap_or(current),
                    _ => current,
                }
            }
            _ => {
                // Ids are only reachable through the graph, so pick a
                // victim gate off a random input net's load list.
                let candidates: Vec<GateId> = current
                    .inputs()
                    .iter()
                    .flat_map(|&n| current.nets()[n.index()].loads().iter().copied())
                    .collect();
                match candidates.choose(rng) {
                    Some(&gate) => {
                        let pin = rng.gen_range(0..current.gate(gate).inputs().len());
                        let source = *current.inputs().choose(rng).expect("has inputs");
                        rewire_input(&current, gate, pin, source).unwrap_or(current)
                    }
                    None => current,
                }
            }
        };
    }
    current
}

fn assert_round_trips(netlist: &Netlist, seed: u64, case: usize) {
    for (format, text) in [
        (SourceFormat::YosysJson, to_yosys_json(netlist)),
        (SourceFormat::Edif, to_edif(netlist)),
    ] {
        let design = import_str(&text, format).unwrap_or_else(|e| {
            panic!(
                "seed {seed} case {case}: {format} import of {} gates failed: {e}\n{text}",
                netlist.gates().len()
            )
        });
        if let Some(diff) = structural_diff(netlist, &design.netlist) {
            panic!("seed {seed} case {case}: {format} round trip differs: {diff}\n{text}",);
        }
        assert_eq!(
            netlist_digest(netlist),
            netlist_digest(&design.netlist),
            "seed {seed} case {case}: {format} digest drifted"
        );
    }
}

#[test]
fn randomized_netlists_round_trip_bit_exactly() {
    let seed = 0xB0C4_D00D;
    let mut rng = SmallRng::seed_from_u64(seed);
    for case in 0..96 {
        let netlist = random_netlist(&mut rng, case);
        assert_round_trips(&netlist, seed, case);
    }
}

#[test]
fn mutated_netlists_round_trip_bit_exactly() {
    let seed = 0x5EED_CAFE;
    let mut rng = SmallRng::seed_from_u64(seed);
    for case in 0..64 {
        let netlist = random_netlist(&mut rng, 1000 + case);
        let mutant = mutate(&mut rng, netlist);
        assert_round_trips(&mutant, seed, case);
    }
}
