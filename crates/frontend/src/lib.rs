//! External netlist frontend: Yosys JSON and structural EDIF in, the
//! workspace's validated [`sbox_netlist::Netlist`] IR out — plus the
//! matching exporters, so every hand-built scheme can round-trip through
//! a real synthesis flow's exchange formats and come back bit-identical.
//!
//! The import path is three layers:
//!
//! 1. a format parser ([`yosys`], [`edif`]) lowers the source text into
//!    a shared module IR (ports, cells, abstract net ids),
//! 2. the cell-mapping layer ([`cells`]) resolves each foreign cell type
//!    — workspace mnemonics, Yosys internal gates, NANGATE-style liberty
//!    names — onto the gate library, expanding AOI/OAI/MUX/constant
//!    cells into library gates,
//! 3. the linker ([`link`]) emits a validated netlist in source order,
//!    turning every malformed or unsupported construct into a typed
//!    [`FrontendError`] rather than a panic.
//!
//! An [`EncodingSidecar`] companion file declares which masking scheme
//! the imported ports implement, which is what lets `sca-verify` and the
//! attack engine run on imported designs. The conformance suite at
//! `tests/frontend_conformance.rs` pins that a re-imported export of
//! each scheme produces bit-identical captures and identical verifier
//! verdicts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod diag;
pub mod edif;
pub mod fixtures;
pub mod json;
mod link;
pub mod sidecar;
pub mod yosys;

pub use diag::{FrontendError, SourceFormat};
pub use edif::to_edif;
pub use sidecar::{sidecar_json, sidecar_toml, EncodingSidecar};
pub use yosys::to_yosys_json;

use leakage_core::checksum::Digest;
use sbox_netlist::Netlist;

/// A successfully imported design: the validated netlist plus any
/// non-fatal warnings the frontend accumulated (e.g. don't-care bits
/// lowered to constant 0).
#[derive(Debug, Clone)]
pub struct ImportedDesign {
    /// The validated netlist.
    pub netlist: Netlist,
    /// Which format the source text was parsed as.
    pub format: SourceFormat,
    /// Non-fatal import warnings, in source order.
    pub warnings: Vec<String>,
}

/// Import a netlist from source text in the given format.
pub fn import_str(text: &str, format: SourceFormat) -> Result<ImportedDesign, FrontendError> {
    let module = match format {
        SourceFormat::YosysJson => yosys::parse_yosys(text)?,
        SourceFormat::Edif => edif::parse_edif(text)?,
    };
    let (netlist, warnings) = link::link(module)?;
    Ok(ImportedDesign {
        netlist,
        format,
        warnings,
    })
}

/// Import a netlist, sniffing the format from the first non-whitespace
/// character: `{` is Yosys JSON, `(` is EDIF.
pub fn import_auto(text: &str) -> Result<ImportedDesign, FrontendError> {
    match text.trim_start().chars().next() {
        Some('{') => import_str(text, SourceFormat::YosysJson),
        _ => import_str(text, SourceFormat::Edif),
    }
}

/// A stable content hash of a netlist's structure: name, port names,
/// and every gate's cell type and wiring. Used to key campaign cache
/// entries for imported designs, so re-importing the same file hits the
/// trace cache and importing a modified file misses it.
pub fn netlist_digest(netlist: &Netlist) -> u64 {
    let mut d = Digest::new();
    d.str(netlist.name());
    d.u64(netlist.inputs().len() as u64);
    for (i, &net) in netlist.inputs().iter().enumerate() {
        d.u64(net.index() as u64);
        d.str(netlist.net(net).name().unwrap_or(""));
        d.u64(i as u64);
    }
    d.u64(netlist.gates().len() as u64);
    for gate in netlist.gates() {
        d.str(gate.cell().mnemonic());
        for &input in gate.inputs() {
            d.u64(input.index() as u64);
        }
        d.u64(gate.output().index() as u64);
    }
    d.u64(netlist.outputs().len() as u64);
    for (name, net) in netlist.outputs() {
        d.str(name);
        d.u64(net.index() as u64);
    }
    d.finish()
}

/// Compare two netlists structurally under canonical net numbering
/// (inputs by position, then gate outputs by gate index). Returns
/// `None` when identical, or a description of the first difference.
///
/// This is numbering-invariant on nets but order-sensitive on gates and
/// ports — exactly the identity the exporters preserve.
pub fn structural_diff(a: &Netlist, b: &Netlist) -> Option<String> {
    if a.name() != b.name() {
        return Some(format!("module name: `{}` vs `{}`", a.name(), b.name()));
    }
    if a.inputs().len() != b.inputs().len() {
        return Some(format!(
            "input count: {} vs {}",
            a.inputs().len(),
            b.inputs().len()
        ));
    }
    let canon = |nl: &Netlist| {
        let mut map = vec![usize::MAX; nl.nets().len()];
        for (i, &net) in nl.inputs().iter().enumerate() {
            map[net.index()] = i;
        }
        for (g, gate) in nl.gates().iter().enumerate() {
            map[gate.output().index()] = nl.inputs().len() + g;
        }
        map
    };
    let (ca, cb) = (canon(a), canon(b));
    for (i, (&na, &nb)) in a.inputs().iter().zip(b.inputs()).enumerate() {
        let (name_a, name_b) = (a.net(na).name(), b.net(nb).name());
        if name_a != name_b {
            return Some(format!("input {i} name: {name_a:?} vs {name_b:?}"));
        }
    }
    if a.gates().len() != b.gates().len() {
        return Some(format!(
            "gate count: {} vs {}",
            a.gates().len(),
            b.gates().len()
        ));
    }
    for (g, (ga, gb)) in a.gates().iter().zip(b.gates()).enumerate() {
        if ga.cell() != gb.cell() {
            return Some(format!(
                "gate {g} cell: {} vs {}",
                ga.cell().mnemonic(),
                gb.cell().mnemonic()
            ));
        }
        let ins_a: Vec<usize> = ga.inputs().iter().map(|n| ca[n.index()]).collect();
        let ins_b: Vec<usize> = gb.inputs().iter().map(|n| cb[n.index()]).collect();
        if ins_a != ins_b {
            return Some(format!("gate {g} fan-in: {ins_a:?} vs {ins_b:?}"));
        }
    }
    if a.outputs().len() != b.outputs().len() {
        return Some(format!(
            "output count: {} vs {}",
            a.outputs().len(),
            b.outputs().len()
        ));
    }
    for (i, ((name_a, net_a), (name_b, net_b))) in a.outputs().iter().zip(b.outputs()).enumerate() {
        if name_a != name_b {
            return Some(format!("output {i} name: `{name_a}` vs `{name_b}`"));
        }
        if ca[net_a.index()] != cb[net_b.index()] {
            return Some(format!(
                "output {i} net: {} vs {}",
                ca[net_a.index()],
                cb[net_b.index()]
            ));
        }
    }
    // Delay model: identical structure must yield the identical critical
    // path, bit for bit.
    if a.critical_path_ps().to_bits() != b.critical_path_ps().to_bits() {
        return Some(format!(
            "critical path: {} ps vs {} ps",
            a.critical_path_ps(),
            b.critical_path_ps()
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_circuits::{SboxCircuit, Scheme};

    #[test]
    fn every_scheme_round_trips_through_both_formats() {
        for scheme in Scheme::ALL {
            let native = SboxCircuit::build(scheme);
            let json = to_yosys_json(native.netlist());
            let imported = import_str(&json, SourceFormat::YosysJson)
                .unwrap_or_else(|e| panic!("{}: yosys import failed: {e}", scheme.label()));
            assert_eq!(
                structural_diff(native.netlist(), &imported.netlist),
                None,
                "{} via yosys-json",
                scheme.label()
            );
            let edif = to_edif(native.netlist());
            let imported = import_str(&edif, SourceFormat::Edif)
                .unwrap_or_else(|e| panic!("{}: edif import failed: {e}", scheme.label()));
            assert_eq!(
                structural_diff(native.netlist(), &imported.netlist),
                None,
                "{} via edif",
                scheme.label()
            );
        }
    }

    #[test]
    fn auto_detection_sniffs_both_formats() {
        let native = SboxCircuit::build(Scheme::Lut);
        let json = to_yosys_json(native.netlist());
        assert_eq!(import_auto(&json).unwrap().format, SourceFormat::YosysJson);
        let edif = to_edif(native.netlist());
        assert_eq!(import_auto(&edif).unwrap().format, SourceFormat::Edif);
    }

    #[test]
    fn digest_is_stable_and_structure_sensitive() {
        let a = SboxCircuit::build(Scheme::Lut);
        let b = SboxCircuit::build(Scheme::Lut);
        assert_eq!(netlist_digest(a.netlist()), netlist_digest(b.netlist()));
        let c = SboxCircuit::build(Scheme::Glut);
        assert_ne!(netlist_digest(a.netlist()), netlist_digest(c.netlist()));
    }

    #[test]
    fn truth_tables_survive_the_round_trip() {
        for scheme in [Scheme::Lut, Scheme::Rsm, Scheme::Isw] {
            let native = SboxCircuit::build(scheme);
            let json = to_yosys_json(native.netlist());
            let imported = import_str(&json, SourceFormat::YosysJson).unwrap();
            // Exhaustive for <= 16 inputs, sampled otherwise.
            let n = native.netlist().num_inputs();
            if n <= 16 {
                assert_eq!(
                    native.netlist().truth_table(),
                    imported.netlist.truth_table(),
                    "{}",
                    scheme.label()
                );
            }
        }
    }
}
