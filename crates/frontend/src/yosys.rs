//! The Yosys `write_json` frontend and the matching exporter.
//!
//! Import understands the document shape Yosys emits: a `modules` map
//! whose values carry `ports` (direction + bit ids), `cells` (type +
//! `connections`), and optional `netnames`. Object key order carries
//! declaration order, which the order-preserving [`crate::json`] parser
//! keeps. Constant bits appear as the strings `"0"`, `"1"`, and `"x"`;
//! don't-cares lower to constant 0 with a warning.
//!
//! Export writes the same shape with NANGATE-style `_X1` cell names so a
//! netlist can round-trip through this module — or through a real Yosys
//! `read_json` / `write_json` pass — without structural drift. Bit ids
//! start at 2, matching Yosys' convention of reserving 0/1.

use std::collections::HashMap;
use std::fmt::Write as _;

use sbox_netlist::Netlist;

use crate::json::{self, Json};
use crate::link::{CellDecl, Dir, ImportedModule, PortDecl, Signal};
use crate::{FrontendError, SourceFormat};

/// Offset between a net's index and its Yosys bit id (0 and 1 are
/// reserved for constants in Yosys' id space).
const BIT_BASE: u64 = 2;

/// Parse a Yosys JSON document into the format-neutral import IR.
pub(crate) fn parse_yosys(text: &str) -> Result<ImportedModule, FrontendError> {
    let doc = json::parse(text).map_err(|e| FrontendError::Syntax {
        format: SourceFormat::YosysJson,
        line: e.line,
        column: e.column,
        message: e.message,
    })?;
    let modules = doc.get("modules").ok_or(FrontendError::MissingField {
        context: "document".to_string(),
        field: "modules",
    })?;
    let (name, module) = select_top(modules)?;
    let context = format!("module \"{name}\"");
    let mut warnings = Vec::new();

    let mut ports = Vec::new();
    let port_obj = module
        .get("ports")
        .ok_or_else(|| FrontendError::MissingField {
            context: context.clone(),
            field: "ports",
        })?;
    for (port_name, decl) in port_obj.entries() {
        let pctx = format!("port \"{port_name}\" of {context}");
        let dir = match decl.get("direction").and_then(Json::as_str) {
            Some("input") => Dir::Input,
            Some("output") => Dir::Output,
            Some("inout") => {
                return Err(FrontendError::UnsupportedConstruct {
                    context: pctx,
                    construct: "inout port".to_string(),
                })
            }
            Some(other) => {
                return Err(FrontendError::UnsupportedConstruct {
                    context: pctx,
                    construct: format!("port direction `{other}`"),
                })
            }
            None => {
                return Err(FrontendError::MissingField {
                    context: pctx,
                    field: "direction",
                })
            }
        };
        let bits = decl
            .get("bits")
            .ok_or_else(|| FrontendError::MissingField {
                context: pctx.clone(),
                field: "bits",
            })?;
        let bits = parse_bits(bits, &pctx, &mut warnings)?;
        ports.push(PortDecl {
            name: port_name.clone(),
            dir,
            bits,
        });
    }

    let mut cells = Vec::new();
    if let Some(cell_obj) = module.get("cells") {
        for (cell_name, decl) in cell_obj.entries() {
            let cctx = format!("cell \"{cell_name}\" of {context}");
            let ty = decl
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| FrontendError::MissingField {
                    context: cctx.clone(),
                    field: "type",
                })?
                .to_string();
            let conn_obj = decl
                .get("connections")
                .ok_or_else(|| FrontendError::MissingField {
                    context: cctx.clone(),
                    field: "connections",
                })?;
            let mut conns = Vec::new();
            for (port, bits) in conn_obj.entries() {
                let bctx = format!("connection \"{port}\" of {cctx}");
                conns.push((port.clone(), parse_bits(bits, &bctx, &mut warnings)?));
            }
            cells.push(CellDecl {
                name: cell_name.clone(),
                ty,
                conns,
            });
        }
    }

    let mut net_names = HashMap::new();
    if let Some(netname_obj) = module.get("netnames") {
        for (net_name, decl) in netname_obj.entries() {
            if let Some([bit]) = decl.get("bits").and_then(Json::as_arr) {
                if let Some(id) = bit.as_u64() {
                    net_names.entry(id).or_insert_with(|| net_name.clone());
                }
            }
        }
    }

    Ok(ImportedModule {
        name: name.to_string(),
        ports,
        cells,
        net_names,
        warnings,
    })
}

/// Pick the module to import: the only one, or the one marked `top`.
fn select_top(modules: &Json) -> Result<(&str, &Json), FrontendError> {
    let entries = modules.entries();
    match entries {
        [] => Err(FrontendError::NoTopModule { found: Vec::new() }),
        [(name, module)] => Ok((name, module)),
        _ => {
            let tops: Vec<&(String, Json)> = entries
                .iter()
                .filter(|(_, m)| {
                    m.get("attributes")
                        .and_then(|a| a.get("top"))
                        .is_some_and(is_truthy_attr)
                })
                .collect();
            match tops.as_slice() {
                [(name, module)] => Ok((name, module)),
                _ => Err(FrontendError::NoTopModule {
                    found: entries.iter().map(|(n, _)| n.clone()).collect(),
                }),
            }
        }
    }
}

/// Yosys writes attribute values either as numbers or as binary strings
/// (`"00000000000000000000000000000001"`).
fn is_truthy_attr(v: &Json) -> bool {
    match v {
        Json::Num(n) => *n != 0.0,
        Json::Str(s) => s.contains('1'),
        _ => false,
    }
}

/// Lower a Yosys `bits` array: numeric ids become nets, the strings
/// `"0"`/`"1"` become constants, and `"x"`/`"z"` become constant 0 with
/// a warning.
fn parse_bits(
    bits: &Json,
    context: &str,
    warnings: &mut Vec<String>,
) -> Result<Vec<Signal>, FrontendError> {
    let items = bits.as_arr().ok_or_else(|| FrontendError::MissingField {
        context: context.to_string(),
        field: "bits",
    })?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let sig = match item {
            Json::Num(_) => {
                let id = item
                    .as_u64()
                    .ok_or_else(|| FrontendError::UnsupportedConstruct {
                        context: context.to_string(),
                        construct: "non-integral net id".to_string(),
                    })?;
                Signal::Net(id)
            }
            Json::Str(s) => match s.as_str() {
                "0" => Signal::Const0,
                "1" => Signal::Const1,
                "x" | "z" => {
                    warnings.push(format!(
                        "{context}: don't-care bit `{s}` lowered to constant 0"
                    ));
                    Signal::Const0
                }
                other => {
                    return Err(FrontendError::UnsupportedConstruct {
                        context: context.to_string(),
                        construct: format!("bit literal `\"{other}\"`"),
                    })
                }
            },
            _ => {
                return Err(FrontendError::UnsupportedConstruct {
                    context: context.to_string(),
                    construct: "non-scalar entry in bits array".to_string(),
                })
            }
        };
        out.push(sig);
    }
    Ok(out)
}

/// Serialize a netlist as a Yosys JSON document (`write_json` shape,
/// NANGATE-style `_X1` cell names, bit ids = net index + 2).
pub fn to_yosys_json(netlist: &Netlist) -> String {
    let mut out = String::new();
    let bit = |id: sbox_netlist::NetId| id.index() as u64 + BIT_BASE;

    out.push_str("{\n  \"creator\": \"sca-frontend\",\n  \"modules\": {\n");
    let _ = writeln!(out, "    {}: {{", json::escape(netlist.name()));
    out.push_str("      \"attributes\": {\n        \"top\": 1\n      },\n");

    // Ports: inputs in declaration order, then outputs.
    out.push_str("      \"ports\": {\n");
    let mut port_lines = Vec::new();
    for (i, &net) in netlist.inputs().iter().enumerate() {
        let name = netlist
            .net(net)
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("in{i}"));
        port_lines.push(format!(
            "        {}: {{ \"direction\": \"input\", \"bits\": [{}] }}",
            json::escape(&name),
            bit(net)
        ));
    }
    for (name, net) in netlist.outputs() {
        port_lines.push(format!(
            "        {}: {{ \"direction\": \"output\", \"bits\": [{}] }}",
            json::escape(name),
            bit(*net)
        ));
    }
    out.push_str(&port_lines.join(",\n"));
    out.push_str("\n      },\n");

    // Cells in gate order — builder order is topological, so a re-import
    // emits them in one worklist pass and reproduces net numbering.
    out.push_str("      \"cells\": {\n");
    let mut cell_lines = Vec::new();
    for (i, gate) in netlist.gates().iter().enumerate() {
        let (ty, pins, out_pin) = crate::cells::export_name(gate.cell());
        let mut dirs = Vec::new();
        let mut conns = Vec::new();
        for (pin, &net) in pins.iter().zip(gate.inputs()) {
            dirs.push(format!("\"{pin}\": \"input\""));
            conns.push(format!("\"{pin}\": [{}]", bit(net)));
        }
        dirs.push(format!("\"{out_pin}\": \"output\""));
        conns.push(format!("\"{out_pin}\": [{}]", bit(gate.output())));
        cell_lines.push(format!(
            "        \"g{i}\": {{\n          \"hide_name\": 1,\n          \"type\": \"{ty}\",\n          \"port_directions\": {{ {} }},\n          \"connections\": {{ {} }}\n        }}",
            dirs.join(", "),
            conns.join(", ")
        ));
    }
    out.push_str(&cell_lines.join(",\n"));
    out.push_str("\n      },\n");

    // Net names: port names first, then `n<index>` for anonymous nets.
    out.push_str("      \"netnames\": {\n");
    let mut named: Vec<(String, u64, bool)> = Vec::new();
    let mut seen = vec![false; netlist.nets().len()];
    for (i, &net) in netlist.inputs().iter().enumerate() {
        let name = netlist
            .net(net)
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("in{i}"));
        named.push((name, bit(net), false));
        seen[net.index()] = true;
    }
    for (name, net) in netlist.outputs() {
        if !seen[net.index()] {
            named.push((name.clone(), bit(*net), false));
            seen[net.index()] = true;
        }
    }
    for gate in netlist.gates() {
        let net = gate.output();
        if !seen[net.index()] {
            named.push((format!("n{}", net.index()), bit(net), true));
            seen[net.index()] = true;
        }
    }
    let net_lines: Vec<String> = named
        .iter()
        .map(|(name, id, hidden)| {
            format!(
                "        {}: {{ \"hide_name\": {}, \"bits\": [{id}] }}",
                json::escape(name),
                u8::from(*hidden)
            )
        })
        .collect();
    out.push_str(&net_lines.join(",\n"));
    out.push_str("\n      }\n    }\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_netlist::{CellType, NetlistBuilder};

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a");
        let c = b.input("b");
        let n = b.gate(CellType::Nand2, &[a, c]);
        let y = b.gate(CellType::Inv, &[n]);
        b.output("y", y);
        b.finish().expect("valid")
    }

    #[test]
    fn export_parses_back_with_identical_shape() {
        let nl = tiny();
        let text = to_yosys_json(&nl);
        let m = parse_yosys(&text).expect("parses");
        assert_eq!(m.name, "tiny");
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.cells.len(), 2);
        assert_eq!(m.cells[0].ty, "NAND2_X1");
        assert_eq!(m.net_names.get(&2).map(String::as_str), Some("a"));
    }

    #[test]
    fn top_attribute_selects_among_modules() {
        let text = r#"{
          "modules": {
            "helper": { "attributes": {}, "ports": {} },
            "main": {
              "attributes": { "top": "00000001" },
              "ports": { "a": { "direction": "input", "bits": [2] } }
            }
          }
        }"#;
        let m = parse_yosys(text).expect("parses");
        assert_eq!(m.name, "main");
    }

    #[test]
    fn ambiguous_top_is_typed() {
        let text = r#"{"modules": {"a": {"ports": {}}, "b": {"ports": {}}}}"#;
        match parse_yosys(text) {
            Err(FrontendError::NoTopModule { found }) => {
                assert_eq!(found, vec!["a".to_string(), "b".to_string()]);
            }
            other => panic!("expected NoTopModule, got {other:?}"),
        }
    }

    #[test]
    fn dont_care_bits_warn_and_lower_to_zero() {
        let text = r#"{
          "modules": {
            "m": {
              "ports": { "y": { "direction": "output", "bits": [3] } },
              "cells": {
                "u": {
                  "type": "OR2_X1",
                  "connections": { "A1": ["x"], "A2": ["1"], "ZN": [3] }
                }
              }
            }
          }
        }"#;
        let m = parse_yosys(text).expect("parses");
        assert_eq!(m.warnings.len(), 1);
        assert!(m.warnings[0].contains("don't-care"));
        assert_eq!(m.cells[0].conns[0].1, vec![Signal::Const0]);
    }

    #[test]
    fn inout_ports_are_unsupported() {
        let text = r#"{
          "modules": {
            "m": { "ports": { "p": { "direction": "inout", "bits": [2] } } }
          }
        }"#;
        assert!(matches!(
            parse_yosys(text),
            Err(FrontendError::UnsupportedConstruct { .. })
        ));
    }

    #[test]
    fn syntax_errors_carry_positions() {
        match parse_yosys("{\n  \"modules\": }") {
            Err(FrontendError::Syntax { line, column, .. }) => {
                assert_eq!((line, column), (2, 14));
            }
            other => panic!("expected Syntax, got {other:?}"),
        }
    }
}
