//! The linker: the format-neutral imported module → a validated
//! [`Netlist`].
//!
//! Both frontends (Yosys JSON, EDIF) lower their source into the same
//! [`ImportedModule`] — ports and cells over abstract signal ids — and
//! this module does the rest once: cell-type resolution via
//! [`crate::cells`], constant materialization, driver/dangling checks,
//! ordered emission, and compound-cell expansion. Diagnostics name nets
//! by their source names when the format provides them.
//!
//! Emission preserves source order: cells are emitted in declaration
//! order whenever their fan-ins are ready (a worklist re-scans in order
//! until it settles), so importing a topologically-ordered export — like
//! the ones [`crate::yosys::to_yosys_json`] and [`crate::edif::to_edif`]
//! write — reproduces the original gate *and net* numbering exactly.
//! That is what makes re-imported captures bit-identical, not merely
//! equivalent.

use std::collections::HashMap;

use sbox_netlist::{CellType, NetId, Netlist, NetlistBuilder};

use crate::cells::{self, CellOp, CellSpec};
use crate::FrontendError;

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Dir {
    /// Primary input.
    Input,
    /// Primary output.
    Output,
}

/// One bit of a connection: an abstract net id or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Signal {
    /// A net, by the source's own id space.
    Net(u64),
    /// Tied low.
    Const0,
    /// Tied high.
    Const1,
}

/// A declared module port (possibly multi-bit, LSB first).
#[derive(Debug, Clone)]
pub(crate) struct PortDecl {
    pub name: String,
    pub dir: Dir,
    pub bits: Vec<Signal>,
}

/// A cell instance with named connections.
#[derive(Debug, Clone)]
pub(crate) struct CellDecl {
    pub name: String,
    pub ty: String,
    pub conns: Vec<(String, Vec<Signal>)>,
}

/// The format-neutral intermediate a frontend produces.
#[derive(Debug, Clone)]
pub(crate) struct ImportedModule {
    pub name: String,
    pub ports: Vec<PortDecl>,
    pub cells: Vec<CellDecl>,
    /// Source net names, for diagnostics only.
    pub net_names: HashMap<u64, String>,
    pub warnings: Vec<String>,
}

/// A cell with its mapping resolved and its pins bound positionally.
struct ResolvedCell {
    name: String,
    ty: String,
    op: CellOp,
    ins: Vec<Signal>,
    out: u64,
}

/// Lazily-synthesized constant nets (the library has no tie cells).
#[derive(Default)]
struct Ties {
    zero: Option<NetId>,
    one: Option<NetId>,
}

impl Ties {
    fn get(
        &mut self,
        builder: &mut NetlistBuilder,
        base: Option<NetId>,
        high: bool,
        context: &str,
    ) -> Result<NetId, FrontendError> {
        let slot = if high { &mut self.one } else { &mut self.zero };
        if let Some(net) = *slot {
            return Ok(net);
        }
        let Some(base) = base else {
            return Err(FrontendError::UnsupportedConstruct {
                context: context.to_string(),
                construct: "constant driver in a module with no primary inputs".to_string(),
            });
        };
        let cell = if high {
            CellType::Xnor2
        } else {
            CellType::Xor2
        };
        let net = builder.gate(cell, &[base, base]);
        *slot = Some(net);
        Ok(net)
    }
}

impl ImportedModule {
    fn net_label(&self, id: u64) -> String {
        self.net_names
            .get(&id)
            .cloned()
            .unwrap_or_else(|| format!("bit {id}"))
    }
}

/// Link an imported module into a validated netlist, accumulating any
/// frontend warnings into the returned list.
pub(crate) fn link(module: ImportedModule) -> Result<(Netlist, Vec<String>), FrontendError> {
    let mut builder = NetlistBuilder::new(module.name.clone());
    let mut net_map: HashMap<u64, NetId> = HashMap::new();
    let mut driver_of: HashMap<u64, String> = HashMap::new();
    let mut first_input: Option<NetId> = None;
    let mut ties = Ties::default();

    // Input ports drive their bits.
    for port in module.ports.iter().filter(|p| p.dir == Dir::Input) {
        for (i, &bit) in port.bits.iter().enumerate() {
            let bit_name = if port.bits.len() == 1 {
                port.name.clone()
            } else {
                format!("{}{}", port.name, i)
            };
            let Signal::Net(id) = bit else {
                return Err(FrontendError::UnsupportedConstruct {
                    context: format!("input port `{bit_name}`"),
                    construct: "port bit tied to a constant".to_string(),
                });
            };
            if let Some(prev) = driver_of.get(&id) {
                return Err(FrontendError::MultipleDrivers {
                    net: module.net_label(id),
                    driver: format!("input port `{bit_name}` (first: {prev})"),
                });
            }
            let net = builder.input(bit_name.clone());
            first_input.get_or_insert(net);
            net_map.insert(id, net);
            driver_of.insert(id, format!("input port `{bit_name}`"));
        }
    }

    // Resolve every cell's type and pin bindings before emitting anything,
    // so diagnostics are independent of emission order.
    let mut resolved = Vec::with_capacity(module.cells.len());
    for cell in &module.cells {
        let spec = cells::resolve(&cell.ty).ok_or_else(|| FrontendError::UnmappableCell {
            cell: cell.name.clone(),
            cell_type: cell.ty.clone(),
        })?;
        let r = bind_pins(cell, &spec)?;
        if let Some(prev) = driver_of.get(&r.out) {
            return Err(FrontendError::MultipleDrivers {
                net: module.net_label(r.out),
                driver: format!("cell `{}` (first: {prev})", r.name),
            });
        }
        driver_of.insert(r.out, format!("cell `{}`", r.name));
        resolved.push(r);
    }

    // Every net a cell reads must have *some* driver (cell or input port);
    // nets with none are dangling, which the worklist below could only
    // report as a bogus "loop".
    for r in &resolved {
        for &sig in &r.ins {
            if let Signal::Net(id) = sig {
                if !driver_of.contains_key(&id) {
                    return Err(FrontendError::DanglingNet {
                        net: module.net_label(id),
                        reader: format!("cell `{}`", r.name),
                    });
                }
            }
        }
    }

    // Ordered worklist emission: repeatedly sweep the pending cells in
    // declaration order, emitting each one whose fan-ins are all mapped.
    // A sweep that makes no progress means the remainder is cyclic.
    let mut pending: Vec<ResolvedCell> = resolved;
    while !pending.is_empty() {
        let before = pending.len();
        let mut still_pending = Vec::with_capacity(pending.len());
        for r in pending {
            let ready = r.ins.iter().all(|sig| match sig {
                Signal::Net(id) => net_map.contains_key(id),
                _ => true,
            });
            if !ready {
                still_pending.push(r);
                continue;
            }
            let mut ins = Vec::with_capacity(r.ins.len());
            for &sig in &r.ins {
                let net = match sig {
                    Signal::Net(id) => net_map[&id],
                    Signal::Const0 => ties.get(&mut builder, first_input, false, &cell_ctx(&r))?,
                    Signal::Const1 => ties.get(&mut builder, first_input, true, &cell_ctx(&r))?,
                };
                ins.push(net);
            }
            let out = emit_op(
                &mut builder,
                r.op,
                &ins,
                first_input,
                &mut ties,
                &cell_ctx(&r),
            )?;
            net_map.insert(r.out, out);
        }
        if still_pending.len() == before {
            return Err(FrontendError::CombinationalLoop {
                cells: still_pending.into_iter().map(|r| r.name).collect(),
            });
        }
        pending = still_pending;
    }

    // Output ports read their bits.
    for port in module.ports.iter().filter(|p| p.dir == Dir::Output) {
        for (i, &bit) in port.bits.iter().enumerate() {
            let bit_name = if port.bits.len() == 1 {
                port.name.clone()
            } else {
                format!("{}{}", port.name, i)
            };
            let net = match bit {
                Signal::Net(id) => *net_map.get(&id).ok_or_else(|| FrontendError::DanglingNet {
                    net: module.net_label(id),
                    reader: format!("output port `{bit_name}`"),
                })?,
                Signal::Const0 => ties.get(
                    &mut builder,
                    first_input,
                    false,
                    &format!("output port `{bit_name}`"),
                )?,
                Signal::Const1 => ties.get(
                    &mut builder,
                    first_input,
                    true,
                    &format!("output port `{bit_name}`"),
                )?,
            };
            builder.output(bit_name, net);
        }
    }

    let netlist = builder.finish()?;
    Ok((netlist, module.warnings))
}

fn cell_ctx(r: &ResolvedCell) -> String {
    format!("cell `{}` ({})", r.name, r.ty)
}

/// Bind a cell's named connections to the spec's positional pins.
fn bind_pins(cell: &CellDecl, spec: &CellSpec) -> Result<ResolvedCell, FrontendError> {
    let mut ins: Vec<Option<Signal>> = vec![None; spec.inputs.len()];
    let mut out: Option<Signal> = None;
    for (port, bits) in &cell.conns {
        let position = spec
            .inputs
            .iter()
            .position(|aliases| aliases.iter().any(|a| a.eq_ignore_ascii_case(port)));
        let is_output = spec.output.iter().any(|a| a.eq_ignore_ascii_case(port));
        let slot = match (position, is_output) {
            (Some(pos), _) if ins[pos].is_none() => &mut ins[pos],
            (None, true) if out.is_none() => &mut out,
            _ => {
                return Err(FrontendError::UnknownPort {
                    cell: cell.name.clone(),
                    cell_type: cell.ty.clone(),
                    port: port.clone(),
                })
            }
        };
        if bits.len() != 1 {
            return Err(FrontendError::PortWidthMismatch {
                cell: cell.name.clone(),
                cell_type: cell.ty.clone(),
                port: port.clone(),
                got: bits.len(),
                expected: 1,
            });
        }
        *slot = Some(bits[0]);
    }
    let mut bound = Vec::with_capacity(ins.len());
    for (pos, sig) in ins.into_iter().enumerate() {
        bound.push(sig.ok_or_else(|| FrontendError::MissingPort {
            cell: cell.name.clone(),
            cell_type: cell.ty.clone(),
            port: spec.canonical(pos),
        })?);
    }
    let out = out.ok_or_else(|| FrontendError::MissingPort {
        cell: cell.name.clone(),
        cell_type: cell.ty.clone(),
        port: spec.output[0],
    })?;
    let Signal::Net(out) = out else {
        return Err(FrontendError::UnsupportedConstruct {
            context: format!("cell `{}` ({})", cell.name, cell.ty),
            construct: "output pin tied to a constant".to_string(),
        });
    };
    Ok(ResolvedCell {
        name: cell.name.clone(),
        ty: cell.ty.clone(),
        op: spec.op,
        ins: bound,
        out,
    })
}

/// Instantiate a mapped operation, expanding compound cells into library
/// gates (rules documented on [`CellOp`]).
fn emit_op(
    b: &mut NetlistBuilder,
    op: CellOp,
    ins: &[NetId],
    first_input: Option<NetId>,
    ties: &mut Ties,
    context: &str,
) -> Result<NetId, FrontendError> {
    use CellType::*;
    Ok(match op {
        CellOp::Prim(cell) => b.gate(cell, ins),
        CellOp::Aoi21 => {
            let p = b.gate(And2, &[ins[0], ins[1]]);
            b.gate(Nor2, &[p, ins[2]])
        }
        CellOp::Oai21 => {
            let p = b.gate(Or2, &[ins[0], ins[1]]);
            b.gate(Nand2, &[p, ins[2]])
        }
        CellOp::Aoi22 => {
            let p = b.gate(And2, &[ins[0], ins[1]]);
            let q = b.gate(And2, &[ins[2], ins[3]]);
            b.gate(Nor2, &[p, q])
        }
        CellOp::Oai22 => {
            let p = b.gate(Or2, &[ins[0], ins[1]]);
            let q = b.gate(Or2, &[ins[2], ins[3]]);
            b.gate(Nand2, &[p, q])
        }
        CellOp::Mux2 => {
            let ns = b.gate(Inv, &[ins[2]]);
            let lo = b.gate(And2, &[ins[0], ns]);
            let hi = b.gate(And2, &[ins[1], ins[2]]);
            b.gate(Or2, &[lo, hi])
        }
        CellOp::NMux2 => {
            let ns = b.gate(Inv, &[ins[2]]);
            let lo = b.gate(And2, &[ins[0], ns]);
            let hi = b.gate(And2, &[ins[1], ins[2]]);
            b.gate(Nor2, &[lo, hi])
        }
        CellOp::AndNot => {
            let nb = b.gate(Inv, &[ins[1]]);
            b.gate(And2, &[ins[0], nb])
        }
        CellOp::OrNot => {
            let nb = b.gate(Inv, &[ins[1]]);
            b.gate(Or2, &[ins[0], nb])
        }
        CellOp::Const0 => ties.get(b, first_input, false, context)?,
        CellOp::Const1 => ties.get(b, first_input, true, context)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(name: &str, ty: &str, conns: &[(&str, Signal)]) -> CellDecl {
        CellDecl {
            name: name.into(),
            ty: ty.into(),
            conns: conns
                .iter()
                .map(|(p, s)| (p.to_string(), vec![*s]))
                .collect(),
        }
    }

    fn module(ports: Vec<PortDecl>, cells: Vec<CellDecl>) -> ImportedModule {
        ImportedModule {
            name: "t".into(),
            ports,
            cells,
            net_names: HashMap::new(),
            warnings: Vec::new(),
        }
    }

    fn port(name: &str, dir: Dir, bits: &[u64]) -> PortDecl {
        PortDecl {
            name: name.into(),
            dir,
            bits: bits.iter().map(|&b| Signal::Net(b)).collect(),
        }
    }

    #[test]
    fn out_of_order_cells_link_and_evaluate() {
        // g1 reads g0's output but is declared first.
        let m = module(
            vec![
                port("a", Dir::Input, &[1]),
                port("b", Dir::Input, &[2]),
                port("y", Dir::Output, &[4]),
            ],
            vec![
                cell(
                    "g1",
                    "INV_X1",
                    &[("A", Signal::Net(3)), ("ZN", Signal::Net(4))],
                ),
                cell(
                    "g0",
                    "NAND2_X1",
                    &[
                        ("A1", Signal::Net(1)),
                        ("A2", Signal::Net(2)),
                        ("ZN", Signal::Net(3)),
                    ],
                ),
            ],
        );
        let (nl, _) = link(m).expect("links");
        // y = !nand(a, b) = and(a, b)
        assert_eq!(nl.evaluate_word(0b11), 1);
        assert_eq!(nl.evaluate_word(0b01), 0);
    }

    #[test]
    fn aoi21_expansion_matches_nangate_semantics() {
        // NANGATE AOI21: ZN = !((B1 & B2) | A)
        let m = module(
            vec![
                port("a", Dir::Input, &[1]),
                port("b1", Dir::Input, &[2]),
                port("b2", Dir::Input, &[3]),
                port("zn", Dir::Output, &[4]),
            ],
            vec![cell(
                "u1",
                "AOI21_X1",
                &[
                    ("A", Signal::Net(1)),
                    ("B1", Signal::Net(2)),
                    ("B2", Signal::Net(3)),
                    ("ZN", Signal::Net(4)),
                ],
            )],
        );
        let (nl, _) = link(m).expect("links");
        for t in 0u64..8 {
            let a = t & 1;
            let b1 = (t >> 1) & 1;
            let b2 = (t >> 2) & 1;
            let expect = u64::from((b1 & b2) | a == 0);
            assert_eq!(nl.evaluate_word(t), expect, "t={t}");
        }
    }

    #[test]
    fn constants_synthesize_from_the_first_input() {
        let m = module(
            vec![port("a", Dir::Input, &[1]), port("y", Dir::Output, &[2])],
            vec![cell(
                "u1",
                "OR2_X1",
                &[
                    ("A1", Signal::Net(1)),
                    ("A2", Signal::Const1),
                    ("ZN", Signal::Net(2)),
                ],
            )],
        );
        let (nl, _) = link(m).expect("links");
        assert_eq!(nl.evaluate_word(0), 1);
        assert_eq!(nl.evaluate_word(1), 1);
    }

    #[test]
    fn loop_is_a_typed_diagnostic() {
        let m = module(
            vec![port("a", Dir::Input, &[1]), port("y", Dir::Output, &[2])],
            vec![
                cell(
                    "u1",
                    "NAND2_X1",
                    &[
                        ("A1", Signal::Net(1)),
                        ("A2", Signal::Net(3)),
                        ("ZN", Signal::Net(2)),
                    ],
                ),
                cell(
                    "u2",
                    "INV_X1",
                    &[("A", Signal::Net(2)), ("ZN", Signal::Net(3))],
                ),
            ],
        );
        match link(m) {
            Err(FrontendError::CombinationalLoop { cells }) => {
                assert_eq!(cells, vec!["u1".to_string(), "u2".to_string()]);
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn dangling_net_is_a_typed_diagnostic() {
        let m = module(
            vec![port("a", Dir::Input, &[1]), port("y", Dir::Output, &[2])],
            vec![cell(
                "u1",
                "INV_X1",
                &[("A", Signal::Net(9)), ("ZN", Signal::Net(2))],
            )],
        );
        assert!(matches!(link(m), Err(FrontendError::DanglingNet { .. })));
    }

    #[test]
    fn double_driven_net_is_a_typed_diagnostic() {
        let m = module(
            vec![port("a", Dir::Input, &[1]), port("y", Dir::Output, &[2])],
            vec![
                cell(
                    "u1",
                    "INV_X1",
                    &[("A", Signal::Net(1)), ("ZN", Signal::Net(2))],
                ),
                cell(
                    "u2",
                    "BUF_X1",
                    &[("A", Signal::Net(1)), ("Z", Signal::Net(2))],
                ),
            ],
        );
        assert!(matches!(
            link(m),
            Err(FrontendError::MultipleDrivers { .. })
        ));
    }
}
