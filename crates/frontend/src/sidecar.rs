//! The `InputEncoding` sidecar: a small TOML- or JSON-format companion
//! file that declares which masking scheme an imported netlist
//! implements, so `sca-verify`'s share-domain analysis and the attack
//! engine know each input port's role.
//!
//! ```toml
//! # sca-frontend encoding sidecar
//! scheme = "ISW"
//!
//! [roles]
//! a0 = "share:0:0"   # share 0 of secret bit 0
//! r0 = "fresh"       # fresh randomness, not a share of anything
//! ```
//!
//! The `[roles]` section is optional and *declarative-checked*: the
//! scheme itself is the ground truth (roles are positional per
//! [`InputEncoding::input_roles`]), and any declared role that
//! contradicts it is a typed [`FrontendError::RoleMismatch`] — the
//! sidecar can never silently re-wire the analysis. A JSON document with
//! the same two fields (`{"scheme": …, "roles": {…}}`) is accepted
//! interchangeably; the parser sniffs the leading `{`.

use sbox_circuits::{InputEncoding, InputRole, SboxCircuit, Scheme};
use sbox_netlist::Netlist;

use crate::json::{self, Json};
use crate::FrontendError;

/// A parsed sidecar: the declared scheme plus any explicit role
/// declarations (port name → role string) to check against ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodingSidecar {
    scheme: Scheme,
    roles: Vec<(String, String)>,
}

impl EncodingSidecar {
    /// A sidecar declaring just a scheme, with no explicit roles.
    pub fn for_scheme(scheme: Scheme) -> Self {
        Self {
            scheme,
            roles: Vec::new(),
        }
    }

    /// The declared scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Parse a sidecar from TOML (default) or JSON (leading `{`).
    pub fn parse(text: &str) -> Result<Self, FrontendError> {
        if text.trim_start().starts_with('{') {
            Self::parse_json(text)
        } else {
            Self::parse_toml(text)
        }
    }

    fn parse_json(text: &str) -> Result<Self, FrontendError> {
        let doc = json::parse(text).map_err(|e| FrontendError::SidecarSyntax {
            line: e.line,
            message: e.message,
        })?;
        let scheme_name =
            doc.get("scheme")
                .and_then(Json::as_str)
                .ok_or(FrontendError::MissingField {
                    context: "encoding sidecar".to_string(),
                    field: "scheme",
                })?;
        let scheme = parse_scheme(scheme_name)?;
        let mut roles = Vec::new();
        if let Some(role_obj) = doc.get("roles") {
            if !matches!(role_obj, Json::Obj(_)) {
                return Err(FrontendError::SidecarSyntax {
                    line: 1,
                    message: "`roles` must be an object of `port: role` entries".to_string(),
                });
            }
            for (port, value) in role_obj.entries() {
                let role = value.as_str().ok_or_else(|| FrontendError::SidecarSyntax {
                    line: 1,
                    message: format!("role for `{port}` must be a string"),
                })?;
                roles.push((port.clone(), role.to_string()));
            }
        }
        Ok(Self { scheme, roles })
    }

    /// A deliberately small TOML subset: full-line comments, one
    /// `scheme = "…"` assignment, and an optional `[roles]` table of
    /// `port = "role"` entries (keys may be quoted).
    fn parse_toml(text: &str) -> Result<Self, FrontendError> {
        let mut scheme: Option<Scheme> = None;
        let mut roles = Vec::new();
        let mut in_roles = false;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                match section.trim() {
                    "roles" => in_roles = true,
                    other => {
                        return Err(FrontendError::SidecarSyntax {
                            line: lineno,
                            message: format!("unknown section `[{other}]` (expected `[roles]`)"),
                        })
                    }
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(FrontendError::SidecarSyntax {
                    line: lineno,
                    message: format!("expected `key = \"value\"`, found `{line}`"),
                });
            };
            let key = unquote(key.trim()).ok_or_else(|| FrontendError::SidecarSyntax {
                line: lineno,
                message: "malformed key".to_string(),
            })?;
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| FrontendError::SidecarSyntax {
                    line: lineno,
                    message: format!("value for `{key}` must be a quoted string"),
                })?
                .to_string();
            if in_roles {
                roles.push((key, value));
            } else if key == "scheme" {
                scheme = Some(parse_scheme(&value)?);
            } else {
                return Err(FrontendError::SidecarSyntax {
                    line: lineno,
                    message: format!("unknown key `{key}` (expected `scheme` or `[roles]`)"),
                });
            }
        }
        let scheme = scheme.ok_or(FrontendError::MissingField {
            context: "encoding sidecar".to_string(),
            field: "scheme",
        })?;
        Ok(Self { scheme, roles })
    }

    /// Bind an imported netlist to the declared scheme, validating port
    /// counts and any explicit role declarations *before* constructing
    /// the circuit — a mismatch is a typed diagnostic, never a panic.
    pub fn bind(&self, netlist: Netlist) -> Result<SboxCircuit, FrontendError> {
        let encoding = InputEncoding::for_scheme(self.scheme);
        if netlist.num_inputs() != encoding.num_inputs() {
            return Err(FrontendError::EncodingMismatch {
                scheme: self.scheme.label().to_string(),
                message: format!(
                    "{} input port(s), scheme needs {}",
                    netlist.num_inputs(),
                    encoding.num_inputs()
                ),
            });
        }
        if netlist.num_outputs() != encoding.num_outputs() {
            return Err(FrontendError::EncodingMismatch {
                scheme: self.scheme.label().to_string(),
                message: format!(
                    "{} output port(s), scheme needs {}",
                    netlist.num_outputs(),
                    encoding.num_outputs()
                ),
            });
        }
        let ground_truth = encoding.input_roles();
        for (port, declared) in &self.roles {
            let position = netlist
                .inputs()
                .iter()
                .position(|&n| netlist.net(n).name() == Some(port.as_str()));
            let Some(position) = position else {
                return Err(FrontendError::EncodingMismatch {
                    scheme: self.scheme.label().to_string(),
                    message: format!("role declared for unknown input port `{port}`"),
                });
            };
            let expected = role_label(ground_truth[position]);
            if !declared.trim().eq_ignore_ascii_case(&expected) {
                return Err(FrontendError::RoleMismatch {
                    port: port.clone(),
                    declared: declared.clone(),
                    expected,
                });
            }
        }
        Ok(SboxCircuit::from_parts(self.scheme, netlist))
    }
}

/// Strip a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// A TOML key: bare (`a0`) or quoted (`"a[0]"`).
fn unquote(key: &str) -> Option<String> {
    if let Some(inner) = key.strip_prefix('"') {
        return inner.strip_suffix('"').map(str::to_string);
    }
    if !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Some(key.to_string());
    }
    None
}

/// Resolve a scheme label, tolerating case and `_`/`-` variation.
fn parse_scheme(name: &str) -> Result<Scheme, FrontendError> {
    let wanted = name.trim().to_ascii_uppercase().replace('_', "-");
    Scheme::ALL
        .iter()
        .copied()
        .find(|s| s.label() == wanted)
        .ok_or_else(|| FrontendError::UnknownScheme {
            name: name.to_string(),
        })
}

/// The canonical string form of an input role: `share:<bit>:<share>` or
/// `fresh`.
pub fn role_label(role: InputRole) -> String {
    match role {
        InputRole::Share { bit, share } => format!("share:{bit}:{share}"),
        InputRole::Fresh => "fresh".to_string(),
    }
}

/// Render a circuit's full ground-truth sidecar as TOML, one role per
/// input port.
pub fn sidecar_toml(circuit: &SboxCircuit) -> String {
    let netlist = circuit.netlist();
    let roles = circuit.encoding().input_roles();
    let mut out = String::new();
    out.push_str("# sca-frontend encoding sidecar\n");
    out.push_str(&format!(
        "scheme = \"{}\"\n\n[roles]\n",
        circuit.scheme().label()
    ));
    for (i, &net) in netlist.inputs().iter().enumerate() {
        let name = netlist
            .net(net)
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("in{i}"));
        let key = if unquote(&name).is_some() && !name.starts_with('"') {
            name
        } else {
            format!("\"{name}\"")
        };
        out.push_str(&format!("{key} = \"{}\"\n", role_label(roles[i])));
    }
    out
}

/// Render a circuit's full ground-truth sidecar as JSON.
pub fn sidecar_json(circuit: &SboxCircuit) -> String {
    let netlist = circuit.netlist();
    let roles = circuit.encoding().input_roles();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"scheme\": \"{}\",\n  \"roles\": {{\n",
        circuit.scheme().label()
    ));
    let entries: Vec<String> = netlist
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, &net)| {
            let name = netlist
                .net(net)
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("in{i}"));
            format!("    {}: \"{}\"", json::escape(&name), role_label(roles[i]))
        })
        .collect();
    out.push_str(&entries.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_round_trips_through_parse_and_bind() {
        for scheme in Scheme::ALL {
            let circuit = SboxCircuit::build(scheme);
            let toml = sidecar_toml(&circuit);
            let sidecar = EncodingSidecar::parse(&toml).expect("parses");
            assert_eq!(sidecar.scheme(), scheme);
            let rebound = sidecar
                .bind(circuit.netlist().clone())
                .expect("binds with ground-truth roles");
            assert_eq!(rebound.scheme(), scheme);
        }
    }

    #[test]
    fn json_sidecar_is_accepted() {
        let circuit = SboxCircuit::build(Scheme::Isw);
        let json = sidecar_json(&circuit);
        let sidecar = EncodingSidecar::parse(&json).expect("parses");
        assert_eq!(sidecar.scheme(), Scheme::Isw);
        assert!(sidecar.bind(circuit.netlist().clone()).is_ok());
    }

    #[test]
    fn unknown_scheme_is_typed() {
        let err = EncodingSidecar::parse("scheme = \"DOM\"\n").unwrap_err();
        assert!(matches!(err, FrontendError::UnknownScheme { .. }));
    }

    #[test]
    fn scheme_labels_tolerate_case_and_underscores() {
        let s = EncodingSidecar::parse("scheme = \"lut_opt\"\n").expect("parses");
        assert_eq!(s.scheme(), Scheme::Opt);
    }

    #[test]
    fn contradictory_role_is_a_role_mismatch() {
        let circuit = SboxCircuit::build(Scheme::Glut);
        let netlist = circuit.netlist().clone();
        let first_input = netlist
            .net(netlist.inputs()[0])
            .name()
            .expect("named")
            .to_string();
        let text = format!("scheme = \"GLUT\"\n[roles]\n{first_input} = \"fresh\"\n");
        let sidecar = EncodingSidecar::parse(&text).expect("parses");
        match sidecar.bind(netlist) {
            Err(FrontendError::RoleMismatch { port, .. }) => assert_eq!(port, first_input),
            other => panic!("expected RoleMismatch, got {other:?}"),
        }
    }

    #[test]
    fn wrong_port_count_is_a_typed_mismatch_not_a_panic() {
        // A 4-in/4-out LUT netlist cannot bind as ISW (12-in/8-out).
        let lut = SboxCircuit::build(Scheme::Lut);
        let sidecar = EncodingSidecar::for_scheme(Scheme::Isw);
        match sidecar.bind(lut.netlist().clone()) {
            Err(FrontendError::EncodingMismatch { scheme, .. }) => assert_eq!(scheme, "ISW"),
            other => panic!("expected EncodingMismatch, got {other:?}"),
        }
    }

    #[test]
    fn toml_syntax_errors_carry_line_numbers() {
        let err = EncodingSidecar::parse("scheme = \"LUT\"\nbogus line\n").unwrap_err();
        match err {
            FrontendError::SidecarSyntax { line, .. } => assert_eq!(line, 2),
            other => panic!("expected SidecarSyntax, got {other:?}"),
        }
    }
}
