//! The cell-mapping layer: foreign cell types onto the NANGATE-inspired
//! gate library.
//!
//! Three families of names resolve:
//!
//! * the workspace's own mnemonics (`INV`, `NAND2`, …, pins `A`–`D`/`Y`),
//! * Yosys internal gates (`$_NOT_`, `$_AND_`, `$_MUX_`, `$_AOI3_`, …),
//! * NANGATE-style liberty names with drive-strength suffixes
//!   (`NAND2_X1`, `INV_X4`, `AOI22_X2`, …, pins `A1`/`A2`/`ZN`).
//!
//! Cells with no 1:1 library counterpart (AOI/OAI, MUX, AND-NOT,
//! constant drivers) expand into small sub-netlists of library gates —
//! the expansion rules are documented per [`CellOp`] variant and in
//! `DESIGN.md`. Unknown names resolve to `None`, which the linker turns
//! into a typed [`crate::FrontendError::UnmappableCell`].

use sbox_netlist::CellType;

/// The logical operation a mapped cell performs, positionally: the
/// semantics below refer to the resolved input signals `i0, i1, …` in
/// the pin order of [`CellSpec::inputs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellOp {
    /// A library cell, instantiated 1:1.
    Prim(CellType),
    /// `!((i0 & i1) | i2)` — expands to AND2 + NOR2.
    Aoi21,
    /// `!((i0 & i1) | (i2 & i3))` — expands to 2×AND2 + NOR2.
    Aoi22,
    /// `!((i0 | i1) & i2)` — expands to OR2 + NAND2.
    Oai21,
    /// `!((i0 | i1) & (i2 | i3))` — expands to 2×OR2 + NAND2.
    Oai22,
    /// `i2 ? i1 : i0` — expands to INV + 2×AND2 + OR2.
    Mux2,
    /// `!(i2 ? i1 : i0)` — expands to INV + 2×AND2 + NOR2.
    NMux2,
    /// `i0 & !i1` — expands to INV + AND2.
    AndNot,
    /// `i0 | !i1` — expands to INV + OR2.
    OrNot,
    /// Constant low — synthesized as `XOR2(a, a)` on the first primary
    /// input (the library has no tie cells).
    Const0,
    /// Constant high — synthesized as `XNOR2(a, a)`.
    Const1,
}

impl CellOp {
    /// How many input pins the operation consumes.
    pub fn arity(self) -> usize {
        match self {
            CellOp::Prim(c) => c.arity(),
            CellOp::Aoi21 | CellOp::Oai21 | CellOp::Mux2 | CellOp::NMux2 => 3,
            CellOp::Aoi22 | CellOp::Oai22 => 4,
            CellOp::AndNot | CellOp::OrNot => 2,
            CellOp::Const0 | CellOp::Const1 => 0,
        }
    }
}

/// How one foreign cell type maps onto the library: the operation plus
/// the accepted pin names, positionally (each position lists its
/// aliases — `A`/`A1`/`IN1` all name the first pin of an AND2).
#[derive(Debug, Clone, Copy)]
pub struct CellSpec {
    /// The mapped operation.
    pub op: CellOp,
    /// Accepted input pin names per position.
    pub inputs: &'static [&'static [&'static str]],
    /// Accepted output pin names.
    pub output: &'static [&'static str],
}

impl CellSpec {
    /// The canonical (first-alias) name of input pin `pos`, for
    /// diagnostics.
    pub fn canonical(&self, pos: usize) -> &'static str {
        self.inputs[pos][0]
    }
}

const OUT: &[&str] = &["Y", "Z", "ZN", "Q", "OUT"];

macro_rules! spec {
    ($op:expr, [$($pos:expr),*]) => {
        CellSpec {
            op: $op,
            inputs: &[$($pos),*],
            output: OUT,
        }
    };
}

const IN_A: &[&str] = &["A", "A1", "I", "IN", "IN1"];
const IN_B: &[&str] = &["B", "A2", "IN2"];
const IN_C: &[&str] = &["C", "A3", "IN3"];
const IN_D: &[&str] = &["D", "A4", "IN4"];

/// Resolve a foreign cell type name. Matching is case-insensitive and
/// strips NANGATE-style drive-strength suffixes (`_X1`, `_X2`, …).
pub fn resolve(type_name: &str) -> Option<CellSpec> {
    use CellType::*;
    let normalized = normalize(type_name);
    let spec = match normalized.as_str() {
        "INV" | "NOT" | "$_NOT_" => spec!(CellOp::Prim(Inv), [IN_A]),
        "BUF" | "CLKBUF" | "$_BUF_" => spec!(CellOp::Prim(Buf), [IN_A]),
        "AND2" | "$_AND_" => spec!(CellOp::Prim(And2), [IN_A, IN_B]),
        "AND3" => spec!(CellOp::Prim(And3), [IN_A, IN_B, IN_C]),
        "AND4" => spec!(CellOp::Prim(And4), [IN_A, IN_B, IN_C, IN_D]),
        "OR2" | "$_OR_" => spec!(CellOp::Prim(Or2), [IN_A, IN_B]),
        "OR3" => spec!(CellOp::Prim(Or3), [IN_A, IN_B, IN_C]),
        "OR4" => spec!(CellOp::Prim(Or4), [IN_A, IN_B, IN_C, IN_D]),
        "NAND2" | "$_NAND_" => spec!(CellOp::Prim(Nand2), [IN_A, IN_B]),
        "NAND3" => spec!(CellOp::Prim(Nand3), [IN_A, IN_B, IN_C]),
        "NAND4" => spec!(CellOp::Prim(Nand4), [IN_A, IN_B, IN_C, IN_D]),
        "NOR2" | "$_NOR_" => spec!(CellOp::Prim(Nor2), [IN_A, IN_B]),
        "NOR3" => spec!(CellOp::Prim(Nor3), [IN_A, IN_B, IN_C]),
        "NOR4" => spec!(CellOp::Prim(Nor4), [IN_A, IN_B, IN_C, IN_D]),
        "XOR2" | "XOR" | "$_XOR_" => spec!(CellOp::Prim(Xor2), [IN_A, IN_B]),
        "XNOR2" | "XNOR" | "$_XNOR_" => spec!(CellOp::Prim(Xnor2), [IN_A, IN_B]),
        // NANGATE AOI21: ZN = !((B1 & B2) | A); Yosys $_AOI3_: Y = !((A & B) | C).
        "AOI21" => spec!(CellOp::Aoi21, [&["B1"], &["B2"], &["A"]]),
        "$_AOI3_" => spec!(CellOp::Aoi21, [&["A"], &["B"], &["C"]]),
        "OAI21" => spec!(CellOp::Oai21, [&["B1"], &["B2"], &["A"]]),
        "$_OAI3_" => spec!(CellOp::Oai21, [&["A"], &["B"], &["C"]]),
        "AOI22" | "$_AOI4_" => spec!(
            CellOp::Aoi22,
            [&["A1", "A"], &["A2", "B"], &["B1", "C"], &["B2", "D"]]
        ),
        "OAI22" | "$_OAI4_" => spec!(
            CellOp::Oai22,
            [&["A1", "A"], &["A2", "B"], &["B1", "C"], &["B2", "D"]]
        ),
        "MUX2" | "MUX" | "$_MUX_" => spec!(
            CellOp::Mux2,
            [&["A", "I0", "D0"], &["B", "I1", "D1"], &["S", "S0", "SEL"]]
        ),
        "$_NMUX_" => spec!(CellOp::NMux2, [&["A"], &["B"], &["S"]]),
        "$_ANDNOT_" => spec!(CellOp::AndNot, [&["A"], &["B"]]),
        "$_ORNOT_" => spec!(CellOp::OrNot, [&["A"], &["B"]]),
        "LOGIC0" | "TIE0" | "TIELO" | "GND" | "$_FALSE_" => CellSpec {
            op: CellOp::Const0,
            inputs: &[],
            output: &["Z", "Y", "ZN", "Q", "G", "GND"],
        },
        "LOGIC1" | "TIE1" | "TIEHI" | "VCC" | "VDD" | "$_TRUE_" => CellSpec {
            op: CellOp::Const1,
            inputs: &[],
            output: &["Z", "Y", "ZN", "Q", "P", "VCC"],
        },
        _ => return None,
    };
    Some(spec)
}

/// The NANGATE-style name the exporters write for a library cell
/// (drive strength X1), with its positional pin names.
pub fn export_name(cell: CellType) -> (&'static str, &'static [&'static str], &'static str) {
    use CellType::*;
    match cell {
        Inv => ("INV_X1", &["A"], "ZN"),
        Buf => ("BUF_X1", &["A"], "Z"),
        And2 => ("AND2_X1", &["A1", "A2"], "ZN"),
        And3 => ("AND3_X1", &["A1", "A2", "A3"], "ZN"),
        And4 => ("AND4_X1", &["A1", "A2", "A3", "A4"], "ZN"),
        Or2 => ("OR2_X1", &["A1", "A2"], "ZN"),
        Or3 => ("OR3_X1", &["A1", "A2", "A3"], "ZN"),
        Or4 => ("OR4_X1", &["A1", "A2", "A3", "A4"], "ZN"),
        Nand2 => ("NAND2_X1", &["A1", "A2"], "ZN"),
        Nand3 => ("NAND3_X1", &["A1", "A2", "A3"], "ZN"),
        Nand4 => ("NAND4_X1", &["A1", "A2", "A3", "A4"], "ZN"),
        Nor2 => ("NOR2_X1", &["A1", "A2"], "ZN"),
        Nor3 => ("NOR3_X1", &["A1", "A2", "A3"], "ZN"),
        Nor4 => ("NOR4_X1", &["A1", "A2", "A3", "A4"], "ZN"),
        Xor2 => ("XOR2_X1", &["A", "B"], "Z"),
        Xnor2 => ("XNOR2_X1", &["A", "B"], "ZN"),
    }
}

/// Uppercase, trim, and strip a trailing drive-strength suffix
/// (`_X<digits>`). Yosys internal names (`$_..._`) pass through intact.
fn normalize(name: &str) -> String {
    let mut n = name.trim().to_ascii_uppercase();
    if n.starts_with("$_") {
        return n;
    }
    if let Some(pos) = n.rfind("_X") {
        let suffix = &n[pos + 2..];
        if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
            n.truncate(pos);
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_strength_suffixes_strip() {
        assert_eq!(
            resolve("NAND2_X4").unwrap().op,
            CellOp::Prim(CellType::Nand2)
        );
        assert_eq!(resolve("inv_x1").unwrap().op, CellOp::Prim(CellType::Inv));
        // `_X` with a non-numeric tail is part of the name, not a suffix.
        assert!(resolve("NAND2_XL").is_none());
    }

    #[test]
    fn yosys_internal_gates_resolve() {
        assert_eq!(resolve("$_NOT_").unwrap().op, CellOp::Prim(CellType::Inv));
        assert_eq!(resolve("$_MUX_").unwrap().op, CellOp::Mux2);
        assert_eq!(resolve("$_AOI4_").unwrap().op, CellOp::Aoi22);
        assert_eq!(resolve("$_ANDNOT_").unwrap().op, CellOp::AndNot);
    }

    #[test]
    fn unknown_cells_do_not_resolve() {
        assert!(resolve("DFF_X1").is_none());
        assert!(resolve("$_SR_LATCH_").is_none());
        assert!(resolve("my_submodule").is_none());
    }

    #[test]
    fn export_names_resolve_back_to_the_same_cell() {
        for cell in sbox_netlist::ALL_CELL_TYPES {
            let (name, pins, out) = export_name(cell);
            let spec = resolve(name).expect(name);
            assert_eq!(spec.op, CellOp::Prim(cell), "{name}");
            assert_eq!(spec.inputs.len(), cell.arity(), "{name}");
            for (pos, pin) in pins.iter().enumerate() {
                assert!(
                    spec.inputs[pos].contains(pin),
                    "{name} pin {pin} must alias position {pos}"
                );
            }
            assert!(spec.output.contains(&out), "{name} output {out}");
        }
    }

    #[test]
    fn constants_have_no_input_pins() {
        assert_eq!(resolve("LOGIC0_X1").unwrap().op, CellOp::Const0);
        assert_eq!(resolve("TIEHI").unwrap().op, CellOp::Const1);
        assert_eq!(resolve("LOGIC0_X1").unwrap().inputs.len(), 0);
    }
}
