//! The structural EDIF 2.0.0 frontend and the matching exporter.
//!
//! EDIF is net-centric — each `(net … (joined …))` lists every pin it
//! touches — so import first collects instances, then walks the nets and
//! turns the joined pin references back into per-cell connections for
//! the shared [`crate::link`] IR. Only the structural subset is
//! supported: ports with scalar directions, leaf instances, and joined
//! nets. Arrays, bus members, and hierarchical views are typed
//! [`FrontendError::UnsupportedConstruct`] diagnostics, never panics.
//!
//! Export writes a single `DESIGNS` library with NANGATE-style `_X1`
//! cell references, instances `g<i>` in gate order and nets in net-index
//! order (driver pin first), so a round-trip reproduces the source
//! netlist's gate and net numbering exactly.

use std::collections::HashMap;
use std::fmt::Write as _;

use sbox_netlist::Netlist;

use crate::link::{CellDecl, Dir, ImportedModule, PortDecl, Signal};
use crate::{FrontendError, SourceFormat};

/// One parsed s-expression node.
#[derive(Debug, Clone, PartialEq)]
enum Sexpr {
    /// A bare token (`edif`, `INPUT`, `g0`, `2`).
    Atom(String),
    /// A quoted string (`"sca-frontend"`).
    Str(String),
    /// A parenthesized form.
    List(Vec<Sexpr>),
}

impl Sexpr {
    fn atom(&self) -> Option<&str> {
        match self {
            Sexpr::Atom(a) => Some(a),
            _ => None,
        }
    }

    fn list(&self) -> Option<&[Sexpr]> {
        match self {
            Sexpr::List(items) => Some(items),
            _ => None,
        }
    }

    /// Is this a list whose head atom equals `kw` (EDIF keywords are
    /// case-insensitive)?
    fn is_form(&self, kw: &str) -> bool {
        self.list()
            .and_then(|items| items.first())
            .and_then(Sexpr::atom)
            .is_some_and(|head| head.eq_ignore_ascii_case(kw))
    }
}

/// All children of `items` that are `(kw …)` forms, with the head
/// stripped.
fn forms<'a>(items: &'a [Sexpr], kw: &'a str) -> impl Iterator<Item = &'a [Sexpr]> + 'a {
    items
        .iter()
        .filter(move |s| s.is_form(kw))
        .filter_map(|s| s.list())
        .map(|items| &items[1..])
}

/// The first `(kw …)` child, with the head stripped.
fn form<'a>(items: &'a [Sexpr], kw: &'a str) -> Option<&'a [Sexpr]> {
    forms(items, kw).next()
}

fn syntax(line: usize, column: usize, message: impl Into<String>) -> FrontendError {
    FrontendError::Syntax {
        format: SourceFormat::Edif,
        line,
        column,
        message: message.into(),
    }
}

/// Tokenize and parse a full EDIF document into one s-expression.
fn parse_sexpr(text: &str) -> Result<Sexpr, FrontendError> {
    let mut stack: Vec<Vec<Sexpr>> = Vec::new();
    let mut root: Option<Sexpr> = None;
    let mut line = 1usize;
    let mut column = 1usize;
    let mut chars = text.chars().peekable();

    let push = |stack: &mut Vec<Vec<Sexpr>>,
                root: &mut Option<Sexpr>,
                node: Sexpr,
                line: usize,
                column: usize|
     -> Result<(), FrontendError> {
        match stack.last_mut() {
            Some(top) => {
                top.push(node);
                Ok(())
            }
            None if root.is_none() => {
                *root = Some(node);
                Ok(())
            }
            None => Err(syntax(line, column, "trailing content after document")),
        }
    };

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                chars.next();
                line += 1;
                column = 1;
            }
            ' ' | '\t' | '\r' => {
                chars.next();
                column += 1;
            }
            '(' => {
                if root.is_some() && stack.is_empty() {
                    return Err(syntax(line, column, "trailing content after document"));
                }
                chars.next();
                column += 1;
                stack.push(Vec::new());
            }
            ')' => {
                chars.next();
                column += 1;
                let items = stack
                    .pop()
                    .ok_or_else(|| syntax(line, column, "unmatched `)`"))?;
                push(&mut stack, &mut root, Sexpr::List(items), line, column)?;
            }
            '"' => {
                chars.next();
                column += 1;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => {
                            column += 1;
                            break;
                        }
                        Some('\n') => {
                            s.push('\n');
                            line += 1;
                            column = 1;
                        }
                        Some('\\') => {
                            column += 1;
                            match chars.next() {
                                Some(e) => {
                                    s.push(e);
                                    column += 1;
                                }
                                None => return Err(syntax(line, column, "unterminated string")),
                            }
                        }
                        Some(other) => {
                            s.push(other);
                            column += 1;
                        }
                        None => return Err(syntax(line, column, "unterminated string")),
                    }
                }
                push(&mut stack, &mut root, Sexpr::Str(s), line, column)?;
            }
            _ => {
                let mut a = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' || c == '"' {
                        break;
                    }
                    a.push(c);
                    chars.next();
                    column += 1;
                }
                push(&mut stack, &mut root, Sexpr::Atom(a), line, column)?;
            }
        }
    }
    if !stack.is_empty() {
        return Err(syntax(line, column, "unterminated `(`: end of input"));
    }
    root.ok_or_else(|| syntax(line, column, "empty document"))
}

/// An EDIF name position: a bare identifier or `(rename id "original")`.
/// Returns `(id, display)` — references use the id, diagnostics and port
/// naming use the display form.
fn edif_name(node: Option<&Sexpr>, context: &str) -> Result<(String, String), FrontendError> {
    match node {
        Some(Sexpr::Atom(a)) => Ok((a.clone(), a.clone())),
        Some(s) if s.is_form("rename") => {
            let items = &s.list().expect("rename is a list")[1..];
            match items {
                [Sexpr::Atom(id), Sexpr::Str(orig)] => Ok((id.clone(), orig.clone())),
                [Sexpr::Atom(id)] => Ok((id.clone(), id.clone())),
                _ => Err(FrontendError::UnsupportedConstruct {
                    context: context.to_string(),
                    construct: "malformed rename form".to_string(),
                }),
            }
        }
        Some(s) if s.is_form("array") => Err(FrontendError::UnsupportedConstruct {
            context: context.to_string(),
            construct: "array name (buses are not supported; flatten to scalar ports)".to_string(),
        }),
        _ => Err(FrontendError::MissingField {
            context: context.to_string(),
            field: "name",
        }),
    }
}

/// Parse a structural EDIF document into the format-neutral import IR.
pub(crate) fn parse_edif(text: &str) -> Result<ImportedModule, FrontendError> {
    let root = parse_sexpr(text)?;
    let doc = match &root {
        s if s.is_form("edif") => &s.list().expect("edif is a list")[1..],
        _ => {
            return Err(FrontendError::MissingField {
                context: "document".to_string(),
                field: "edif",
            })
        }
    };

    // An explicit `(design … (cellRef NAME …))` picks the top cell.
    let design_ref: Option<String> = form(doc, "design")
        .and_then(|d| form(d, "cellRef"))
        .and_then(|c| c.first())
        .and_then(Sexpr::atom)
        .map(str::to_string);

    // Collect every `(cell …)` across all libraries.
    let mut cells_found: Vec<(String, String, &[Sexpr])> = Vec::new();
    for library in forms(doc, "library") {
        for cell in forms(library, "cell") {
            let (id, display) = edif_name(cell.first(), "cell")?;
            cells_found.push((id, display, cell));
        }
    }

    let chosen: &[Sexpr] = if let Some(target) = &design_ref {
        cells_found
            .iter()
            .find(|(id, display, _)| id == target || display == target)
            .map(|(_, _, c)| *c)
            .ok_or_else(|| FrontendError::NoTopModule {
                found: cells_found.iter().map(|(_, d, _)| d.clone()).collect(),
            })?
    } else {
        let with_contents: Vec<&(String, String, &[Sexpr])> = cells_found
            .iter()
            .filter(|(_, _, c)| forms(c, "view").any(|v| form(v, "contents").is_some()))
            .collect();
        match (with_contents.as_slice(), cells_found.as_slice()) {
            ([(_, _, c)], _) => c,
            ([], [(_, _, c)]) => c,
            _ => {
                return Err(FrontendError::NoTopModule {
                    found: cells_found.iter().map(|(_, d, _)| d.clone()).collect(),
                })
            }
        }
    };

    let (_, cell_display) = edif_name(chosen.first(), "cell")?;
    let context = format!("cell \"{cell_display}\"");
    let view = forms(chosen, "view")
        .find(|v| form(v, "interface").is_some())
        .ok_or_else(|| FrontendError::MissingField {
            context: context.clone(),
            field: "view",
        })?;
    let interface = form(view, "interface").ok_or_else(|| FrontendError::MissingField {
        context: context.clone(),
        field: "interface",
    })?;

    // Interface: scalar ports with directions.
    let mut ports: Vec<PortDecl> = Vec::new();
    let mut port_index: HashMap<String, usize> = HashMap::new();
    for port in forms(interface, "port") {
        let (id, display) = edif_name(port.first(), &format!("port of {context}"))?;
        let pctx = format!("port \"{display}\" of {context}");
        let dir = match form(port, "direction")
            .and_then(|d| d.first())
            .and_then(Sexpr::atom)
        {
            Some(d) if d.eq_ignore_ascii_case("INPUT") => Dir::Input,
            Some(d) if d.eq_ignore_ascii_case("OUTPUT") => Dir::Output,
            Some(d) if d.eq_ignore_ascii_case("INOUT") => {
                return Err(FrontendError::UnsupportedConstruct {
                    context: pctx,
                    construct: "inout port".to_string(),
                })
            }
            Some(d) => {
                return Err(FrontendError::UnsupportedConstruct {
                    context: pctx,
                    construct: format!("port direction `{d}`"),
                })
            }
            None => {
                return Err(FrontendError::MissingField {
                    context: pctx,
                    field: "direction",
                })
            }
        };
        port_index.insert(id, ports.len());
        ports.push(PortDecl {
            name: display,
            dir,
            bits: Vec::new(),
        });
    }

    // Contents: instances first, then nets stitch the connections.
    let contents = form(view, "contents").ok_or_else(|| FrontendError::MissingField {
        context: context.clone(),
        field: "contents",
    })?;

    let mut cells: Vec<CellDecl> = Vec::new();
    let mut cell_index: HashMap<String, usize> = HashMap::new();
    for inst in forms(contents, "instance") {
        let (id, display) = edif_name(inst.first(), &format!("instance of {context}"))?;
        let ty = forms(inst, "viewRef")
            .filter_map(|v| form(v, "cellRef"))
            .chain(forms(inst, "cellRef"))
            .filter_map(|c| c.first())
            .filter_map(Sexpr::atom)
            .next()
            .ok_or_else(|| FrontendError::MissingField {
                context: format!("instance \"{display}\" of {context}"),
                field: "cellRef",
            })?
            .to_string();
        cell_index.insert(id, cells.len());
        cells.push(CellDecl {
            name: display,
            ty,
            conns: Vec::new(),
        });
    }

    let mut net_names: HashMap<u64, String> = HashMap::new();
    let mut next_net: u64 = 0;
    for net in forms(contents, "net") {
        let (_, display) = edif_name(net.first(), &format!("net of {context}"))?;
        let nctx = format!("net \"{display}\" of {context}");
        let id = next_net;
        next_net += 1;
        net_names.insert(id, display.clone());
        let joined = form(net, "joined").ok_or_else(|| FrontendError::MissingField {
            context: nctx.clone(),
            field: "joined",
        })?;
        for port_ref in forms(joined, "portRef") {
            let pin = match port_ref.first() {
                Some(Sexpr::Atom(a)) => a.clone(),
                Some(s) if s.is_form("member") => {
                    return Err(FrontendError::UnsupportedConstruct {
                        context: nctx,
                        construct: "bus member pin reference".to_string(),
                    })
                }
                _ => {
                    return Err(FrontendError::MissingField {
                        context: nctx,
                        field: "portRef",
                    })
                }
            };
            match form(port_ref, "instanceRef")
                .and_then(|i| i.first())
                .and_then(Sexpr::atom)
            {
                Some(inst) => {
                    let &idx = cell_index.get(inst).ok_or_else(|| {
                        FrontendError::UnsupportedConstruct {
                            context: nctx.clone(),
                            construct: format!("reference to undeclared instance `{inst}`"),
                        }
                    })?;
                    cells[idx].conns.push((pin, vec![Signal::Net(id)]));
                }
                None => {
                    let &idx = port_index.get(&pin).ok_or_else(|| {
                        FrontendError::UnsupportedConstruct {
                            context: nctx.clone(),
                            construct: format!("reference to undeclared port `{pin}`"),
                        }
                    })?;
                    if !ports[idx].bits.is_empty() {
                        return Err(FrontendError::UnsupportedConstruct {
                            context: format!("port \"{}\" of {context}", ports[idx].name),
                            construct: "port joined to multiple nets".to_string(),
                        });
                    }
                    ports[idx].bits.push(Signal::Net(id));
                }
            }
        }
    }

    // A port joined to nothing still exists: give it a private net so
    // the linker can report unused inputs / undriven outputs precisely.
    for port in &mut ports {
        if port.bits.is_empty() {
            port.bits.push(Signal::Net(next_net));
            net_names.insert(next_net, port.name.clone());
            next_net += 1;
        }
    }

    Ok(ImportedModule {
        name: cell_display,
        ports,
        cells,
        net_names,
        warnings: Vec::new(),
    })
}

/// A valid bare EDIF identifier: letter first, then letters, digits,
/// underscores.
fn is_bare_ident(s: &str) -> bool {
    let mut chars = s.chars();
    chars.next().is_some_and(|c| c.is_ascii_alphabetic())
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Render a name, falling back to `(rename <id> "<orig>")` when the
/// original is not a bare EDIF identifier.
fn render_name(orig: &str, fallback_id: &str) -> String {
    if is_bare_ident(orig) {
        orig.to_string()
    } else {
        let escaped = orig.replace('\\', "\\\\").replace('"', "\\\"");
        format!("(rename {fallback_id} \"{escaped}\")")
    }
}

/// Serialize a netlist as structural EDIF 2.0.0 (single `DESIGNS`
/// library, NANGATE-style `_X1` cell references, driver pin first in
/// every `joined` form).
pub fn to_edif(netlist: &Netlist) -> String {
    let mut out = String::new();
    let cell_name = render_name(netlist.name(), "top");
    let _ = writeln!(out, "(edif {cell_name}");
    out.push_str("  (edifVersion 2 0 0)\n  (edifLevel 0)\n");
    out.push_str("  (keywordMap (keywordLevel 0))\n");
    out.push_str("  (status (written (author \"sca-frontend\")))\n");
    out.push_str("  (library DESIGNS\n    (edifLevel 0)\n    (technology (numberDefinition))\n");
    let _ = writeln!(out, "    (cell {cell_name}");
    out.push_str("      (cellType GENERIC)\n      (view netlist\n        (viewType NETLIST)\n");

    // Interface: inputs in declaration order, then outputs.
    out.push_str("        (interface\n");
    let input_port_name = |i: usize| -> String {
        netlist
            .net(netlist.inputs()[i])
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("in{i}"))
    };
    for i in 0..netlist.inputs().len() {
        let name = input_port_name(i);
        let _ = writeln!(
            out,
            "          (port {} (direction INPUT))",
            render_name(&name, &format!("pi{i}"))
        );
    }
    for (i, (name, _)) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(
            out,
            "          (port {} (direction OUTPUT))",
            render_name(name, &format!("po{i}"))
        );
    }
    out.push_str("        )\n");

    // Contents: instances in gate order, then nets in net-index order.
    out.push_str("        (contents\n");
    for (i, gate) in netlist.gates().iter().enumerate() {
        let (ty, _, _) = crate::cells::export_name(gate.cell());
        let _ = writeln!(
            out,
            "          (instance g{i} (viewRef netlist (cellRef {ty} (libraryRef NANGATE))))"
        );
    }
    for (idx, net) in netlist.nets().iter().enumerate() {
        let mut refs: Vec<String> = Vec::new();
        // Driver first: a top-level input port or a gate output pin.
        if net.is_input() {
            let i = netlist
                .inputs()
                .iter()
                .position(|&n| n.index() == idx)
                .expect("input nets appear in inputs()");
            let name = input_port_name(i);
            refs.push(format!("(portRef {})", bare_ref(&name, &format!("pi{i}"))));
        }
        if let Some(driver) = net.driver() {
            let gate = netlist.gate(driver);
            let (_, _, out_pin) = crate::cells::export_name(gate.cell());
            refs.push(format!(
                "(portRef {out_pin} (instanceRef g{}))",
                driver.index()
            ));
        }
        // Loads: every reading pin, then every top-level output port.
        // `loads()` lists a gate once per reading pin, but the pin loop
        // below already emits every matching pin — dedupe the gates.
        let mut loads: Vec<_> = net.loads().to_vec();
        loads.dedup();
        loads.sort_unstable_by_key(|g| g.index());
        loads.dedup();
        for load in loads {
            let gate = netlist.gate(load);
            let (_, pins, _) = crate::cells::export_name(gate.cell());
            for (pos, &in_net) in gate.inputs().iter().enumerate() {
                if in_net.index() == idx {
                    refs.push(format!(
                        "(portRef {} (instanceRef g{}))",
                        pins[pos],
                        load.index()
                    ));
                }
            }
        }
        for (i, (name, out_net)) in netlist.outputs().iter().enumerate() {
            if out_net.index() == idx {
                refs.push(format!("(portRef {})", bare_ref(name, &format!("po{i}"))));
            }
        }
        if refs.is_empty() {
            continue;
        }
        let _ = writeln!(out, "          (net n{idx} (joined {}))", refs.join(" "));
    }
    out.push_str("        )\n      )\n    )\n  )\n)\n");
    out
}

/// A `portRef` target must be the port's *identifier*: the bare name,
/// or the rename id when the original needed renaming.
fn bare_ref(orig: &str, fallback_id: &str) -> String {
    if is_bare_ident(orig) {
        orig.to_string()
    } else {
        fallback_id.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_netlist::{CellType, NetlistBuilder};

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a");
        let c = b.input("b");
        let n = b.gate(CellType::Nand2, &[a, c]);
        let y = b.gate(CellType::Inv, &[n]);
        b.output("y", y);
        b.finish().expect("valid")
    }

    #[test]
    fn export_parses_back_with_identical_shape() {
        let nl = tiny();
        let text = to_edif(&nl);
        let m = parse_edif(&text).expect("parses");
        assert_eq!(m.name, "tiny");
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.cells.len(), 2);
        assert_eq!(m.cells[0].ty, "NAND2_X1");
        // Driver-first joined order: the NAND's A1 connection exists.
        assert!(m.cells[0].conns.iter().any(|(p, _)| p == "A1"));
    }

    #[test]
    fn rename_forms_carry_original_names() {
        let text = r#"
          (edif t (edifVersion 2 0 0)
            (library L (cell t (cellType GENERIC) (view v (viewType NETLIST)
              (interface
                (port (rename a_0 "a[0]") (direction INPUT))
                (port y (direction OUTPUT)))
              (contents
                (instance u1 (viewRef v (cellRef INV_X1 (libraryRef NANGATE))))
                (net w1 (joined (portRef a_0) (portRef A (instanceRef u1))))
                (net w2 (joined (portRef ZN (instanceRef u1)) (portRef y))))))))
        "#;
        let m = parse_edif(text).expect("parses");
        assert_eq!(m.ports[0].name, "a[0]");
        assert_eq!(m.cells[0].ty, "INV_X1");
        assert_eq!(m.cells[0].conns.len(), 2);
    }

    #[test]
    fn unbalanced_parens_are_a_typed_syntax_error() {
        assert!(matches!(
            parse_edif("(edif t (library"),
            Err(FrontendError::Syntax { .. })
        ));
        assert!(matches!(
            parse_edif("(edif t))"),
            Err(FrontendError::Syntax { .. })
        ));
    }

    #[test]
    fn bus_ports_are_unsupported() {
        let text = r#"
          (edif t (library L (cell t (view v
            (interface (port (array a 4) (direction INPUT)))
            (contents)))))
        "#;
        assert!(matches!(
            parse_edif(text),
            Err(FrontendError::UnsupportedConstruct { .. })
        ));
    }

    #[test]
    fn design_ref_selects_among_cells() {
        let text = r#"
          (edif t
            (design root (cellRef good (libraryRef L)))
            (library L
              (cell other (view v (interface (port x (direction INPUT))) (contents)))
              (cell good (view v
                (interface (port a (direction INPUT)) (port y (direction OUTPUT)))
                (contents
                  (instance u1 (viewRef v (cellRef BUF_X1 (libraryRef N))))
                  (net w1 (joined (portRef a) (portRef A (instanceRef u1))))
                  (net w2 (joined (portRef Z (instanceRef u1)) (portRef y))))))))
        "#;
        let m = parse_edif(text).expect("parses");
        assert_eq!(m.name, "good");
    }
}
