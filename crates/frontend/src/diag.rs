//! Typed import diagnostics.
//!
//! Every way an external netlist can fail to become a [`sbox_netlist::Netlist`]
//! is a distinct [`FrontendError`] variant with a stable, human-readable
//! rendering — the golden fixtures under `tests/golden/frontend/` pin the
//! exact text, so a diagnostic regression is a visible diff, not a silently
//! reworded message. Parsers and the linker must *never* panic on malformed
//! input; the malformed-input test matrix enforces that with `catch_unwind`.

use std::fmt;

use sbox_netlist::NetlistError;

/// Which external format a source text was parsed as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceFormat {
    /// Yosys `write_json` output.
    YosysJson,
    /// Structural EDIF 2.0.0.
    Edif,
}

impl SourceFormat {
    /// Short lowercase label used in diagnostics and CLI output.
    pub const fn label(self) -> &'static str {
        match self {
            SourceFormat::YosysJson => "yosys-json",
            SourceFormat::Edif => "edif",
        }
    }
}

impl fmt::Display for SourceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything that can go wrong between an external netlist file and a
/// validated [`sbox_netlist::Netlist`] (plus its encoding sidecar).
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// The source text is not syntactically valid in its format.
    Syntax {
        /// The format being parsed.
        format: SourceFormat,
        /// 1-based line of the offending character.
        line: usize,
        /// 1-based column of the offending character.
        column: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// A structurally required field is absent.
    MissingField {
        /// Where the field was expected (e.g. `module "top"`).
        context: String,
        /// The field name (e.g. `ports`).
        field: &'static str,
    },
    /// The design has no importable top module, or several candidates.
    NoTopModule {
        /// The module names that were found.
        found: Vec<String>,
    },
    /// A cell's type has no mapping onto the gate library.
    UnmappableCell {
        /// Instance name.
        cell: String,
        /// The foreign cell type.
        cell_type: String,
    },
    /// A port connection carries the wrong number of bits for its pin.
    PortWidthMismatch {
        /// Instance name.
        cell: String,
        /// The foreign cell type.
        cell_type: String,
        /// The connected port.
        port: String,
        /// Bits actually connected.
        got: usize,
        /// Bits the pin expects.
        expected: usize,
    },
    /// A cell connects a port its mapped type does not have.
    UnknownPort {
        /// Instance name.
        cell: String,
        /// The foreign cell type.
        cell_type: String,
        /// The unknown port.
        port: String,
    },
    /// A cell leaves a required pin unconnected.
    MissingPort {
        /// Instance name.
        cell: String,
        /// The foreign cell type.
        cell_type: String,
        /// The canonical name of the missing pin.
        port: &'static str,
    },
    /// Two drivers (cells and/or input ports) contend for one net.
    MultipleDrivers {
        /// The net, by name when the source names it, else `bit <id>`.
        net: String,
        /// The second driver that collided.
        driver: String,
    },
    /// A read net is driven by nothing: no cell output, no input port.
    DanglingNet {
        /// The net, by name when the source names it, else `bit <id>`.
        net: String,
        /// The instance or output port reading it.
        reader: String,
    },
    /// Cells form a combinational cycle.
    CombinationalLoop {
        /// The instances on the cycle (source order).
        cells: Vec<String>,
    },
    /// A legal-but-unsupported construct (inout port, port array,
    /// hierarchical instance, …). The policy is documented in `DESIGN.md`.
    UnsupportedConstruct {
        /// Where it appeared.
        context: String,
        /// What it was.
        construct: String,
    },
    /// Residual structural validation failure from the netlist builder.
    Netlist(NetlistError),
    /// The encoding sidecar is syntactically malformed.
    SidecarSyntax {
        /// 1-based line of the offending entry.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The sidecar names a scheme the workspace does not implement.
    UnknownScheme {
        /// The name as written.
        name: String,
    },
    /// The imported port shape does not fit the declared scheme.
    EncodingMismatch {
        /// The declared scheme label.
        scheme: String,
        /// What differed (input count, output count).
        message: String,
    },
    /// A sidecar role declaration contradicts the scheme's ground truth.
    RoleMismatch {
        /// The input port the role was declared for.
        port: String,
        /// The declared role, as written.
        declared: String,
        /// The scheme's actual role for that port.
        expected: String,
    },
    /// Reading the source file failed.
    Io {
        /// The path as given.
        path: String,
        /// The operating-system error.
        message: String,
    },
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Syntax {
                format,
                line,
                column,
                message,
            } => write!(f, "{format} syntax error at {line}:{column}: {message}"),
            FrontendError::MissingField { context, field } => {
                write!(f, "{context} is missing required field `{field}`")
            }
            FrontendError::NoTopModule { found } => {
                if found.is_empty() {
                    write!(f, "design contains no module to import")
                } else {
                    write!(
                        f,
                        "cannot choose a top module among [{}]: mark one with the `top` \
                         attribute or flatten the design",
                        found.join(", ")
                    )
                }
            }
            FrontendError::UnmappableCell { cell, cell_type } => write!(
                f,
                "cell `{cell}` has type `{cell_type}`, which has no mapping onto the \
                 NANGATE-inspired library (INV/BUF/AND/OR/NAND/NOR/XOR/XNOR/AOI/OAI/MUX/\
                 LOGIC0/LOGIC1)"
            ),
            FrontendError::PortWidthMismatch {
                cell,
                cell_type,
                port,
                got,
                expected,
            } => write!(
                f,
                "cell `{cell}` ({cell_type}) connects {got} bit(s) to port `{port}`, \
                 which is {expected} bit(s) wide"
            ),
            FrontendError::UnknownPort {
                cell,
                cell_type,
                port,
            } => write!(
                f,
                "cell `{cell}` ({cell_type}) connects unknown port `{port}`"
            ),
            FrontendError::MissingPort {
                cell,
                cell_type,
                port,
            } => write!(
                f,
                "cell `{cell}` ({cell_type}) leaves required pin `{port}` unconnected"
            ),
            FrontendError::MultipleDrivers { net, driver } => {
                write!(f, "net `{net}` has multiple drivers (second: {driver})")
            }
            FrontendError::DanglingNet { net, reader } => write!(
                f,
                "net `{net}` is read by {reader} but driven by no cell or input port"
            ),
            FrontendError::CombinationalLoop { cells } => {
                write!(f, "combinational loop through [{}]", cells.join(", "))
            }
            FrontendError::UnsupportedConstruct { context, construct } => {
                write!(f, "{context}: unsupported construct: {construct}")
            }
            FrontendError::Netlist(e) => write!(f, "imported netlist failed validation: {e}"),
            FrontendError::SidecarSyntax { line, message } => {
                write!(f, "encoding sidecar, line {line}: {message}")
            }
            FrontendError::UnknownScheme { name } => write!(
                f,
                "encoding sidecar names unknown scheme `{name}` (expected one of LUT, \
                 LUT-OPT, GLUT, RSM, RSM-ROM, ISW, TI)"
            ),
            FrontendError::EncodingMismatch { scheme, message } => {
                write!(f, "imported design does not fit scheme {scheme}: {message}")
            }
            FrontendError::RoleMismatch {
                port,
                declared,
                expected,
            } => write!(
                f,
                "sidecar declares input `{port}` as `{declared}`, but scheme ground \
                 truth is `{expected}`"
            ),
            FrontendError::Io { path, message } => {
                write!(f, "cannot read {path}: {message}")
            }
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<NetlistError> for FrontendError {
    fn from(e: NetlistError) -> Self {
        FrontendError::Netlist(e)
    }
}
