//! A minimal, order-preserving JSON parser.
//!
//! Yosys' `write_json` relies on object key order to carry declaration
//! order (ports, cells), so objects are kept as insertion-ordered
//! `Vec<(String, Json)>` rather than hash maps. The build environment is
//! offline (no `serde`), and the subset needed here — objects, arrays,
//! strings, numbers, booleans, null — is small enough to hand-roll with
//! precise line/column positions for the typed syntax diagnostics.

use std::fmt::Write as _;

/// One JSON value. Objects preserve source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. `f64` is exact for every net id a real design holds.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's entries in source order; empty for non-objects.
    pub fn entries(&self) -> &[(String, Json)] {
        match self {
            Json::Obj(entries) => entries,
            _ => &[],
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A syntax error with a 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// What the parser expected or found.
    pub message: String,
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser::new(text);
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if let Some(c) = p.peek() {
        return Err(p.err(format!("unexpected trailing `{c}` after document")));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    column: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    fn err(&self, message: String) -> JsonError {
        JsonError {
            line: self.line,
            column: self.column,
            message,
        }
    }

    fn peek(&self) -> Option<char> {
        // The grammar is ASCII-delimited; multi-byte characters only occur
        // inside strings, which consume bytes directly.
        self.bytes.get(self.pos).map(|&b| b as char)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), JsonError> {
        match self.peek() {
            Some(found) if found == c => {
                self.bump();
                Ok(())
            }
            Some(found) => Err(self.err(format!("expected `{c}`, found `{found}`"))),
            None => Err(self.err(format!("expected `{c}`, found end of input"))),
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some('t') => self.keyword("true", Json::Bool(true)),
            Some('f') => self.keyword("false", Json::Bool(false)),
            Some('n') => self.keyword("null", Json::Null),
            Some(c) => Err(self.err(format!("unexpected `{c}` where a value was expected"))),
            None => Err(self.err("unexpected end of input where a value was expected".into())),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        for expected in word.chars() {
            match self.bump() {
                Some(c) if c == expected => {}
                _ => return Err(self.err(format!("malformed literal, expected `{word}`"))),
            }
        }
        Ok(value)
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect('{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some('}') => {
                    self.bump();
                    return Ok(Json::Obj(entries));
                }
                Some(c) => {
                    return Err(self.err(format!("expected `,` or `}}` in object, found `{c}`")))
                }
                None => return Err(self.err("unterminated object".into())),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {
                    self.bump();
                    return Ok(Json::Arr(items));
                }
                Some(c) => {
                    return Err(self.err(format!("expected `,` or `]` in array, found `{c}`")))
                }
                None => return Err(self.err("unterminated array".into())),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            // Consume raw bytes so multi-byte UTF-8 passes through intact.
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string".into()));
            };
            match b {
                b'"' => {
                    self.bump();
                    return Ok(out);
                }
                b'\\' => {
                    self.bump();
                    let esc = self
                        .bump()
                        .ok_or_else(|| self.err("unterminated escape".into()))?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{0008}'),
                        'f' => out.push('\u{000C}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDC00..\uDFFF`.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bump() != Some('\\') || self.bump() != Some('u') {
                                    return Err(
                                        self.err("high surrogate without a low surrogate".into())
                                    );
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate".into()));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape".into())),
                            }
                        }
                        other => return Err(self.err(format!("invalid escape `\\{other}`"))),
                    }
                }
                0x00..=0x1F => return Err(self.err("unescaped control character in string".into())),
                _ if b < 0x80 => {
                    out.push(b as char);
                    self.bump();
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole sequence.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string".into())),
                    };
                    let end = self.pos + len;
                    let slice = self
                        .bytes
                        .get(self.pos..end)
                        .ok_or_else(|| self.err("truncated UTF-8 in string".into()))?;
                    match std::str::from_utf8(slice) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string".into())),
                    }
                    for _ in 0..len {
                        self.bump();
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape".into()))?;
            let digit = c
                .to_digit(16)
                .ok_or_else(|| self.err(format!("invalid hex digit `{c}` in \\u escape")))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some('.') {
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("malformed number `{text}`")))
    }
}

/// Serialize a string with JSON escaping.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_order_is_preserved() {
        let doc = parse(r#"{"z": 1, "a": 2, "m": 3}"#).expect("valid");
        let keys: Vec<&str> = doc.entries().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(parse(r#""a\"bA\n""#).unwrap(), Json::Str("a\"bA\n".into()));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse("{\n  \"a\": }").unwrap_err();
        assert_eq!((e.line, e.column), (2, 8));
        let e = parse("[1, 2").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let original = "tab\t\"quote\" — dash";
        let escaped = escape(original);
        assert_eq!(parse(&escaped).unwrap(), Json::Str(original.into()));
    }
}
