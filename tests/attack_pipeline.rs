//! Attack-stack integration: acquisition → CPA / templates / second order
//! against real simulated circuits.

use acquisition::{acquire, acquire_cpa, ProtocolConfig};
use campaign::{AttackPlan, CacheMode, Campaign, CampaignConfig, SumMode};
use sbox_circuits::{SboxCircuit, Scheme};
use sca_attacks::template::{template_attack, TemplateSet};
use sca_attacks::{cpa_attack, Distinguisher, LeakageModel};

fn config(seed: u64) -> ProtocolConfig {
    ProtocolConfig {
        traces_per_class: 16,
        seed,
        ..ProtocolConfig::default()
    }
}

/// First-order CPA with the protocol-matched model recovers the key from
/// the unprotected LUT.
#[test]
fn cpa_breaks_the_unprotected_lut() {
    // The attacker tries the standard models and keeps the best, as in
    // practice (textbook models fit an implementation only approximately).
    let circuit = SboxCircuit::build(Scheme::Lut);
    let data = acquire_cpa(&circuit, &config(1), 0x7, 256);
    let best_rank = [LeakageModel::OutputTransition, LeakageModel::HammingWeight]
        .into_iter()
        .map(|m| cpa_attack(&data.plaintexts, &data.traces, m).key_rank(0x7))
        .min()
        .expect("two models");
    // Textbook models only approximate the LUT's true energy function, so
    // the CPA verdict may stop one rank short of perfect — the model-free
    // template test below finishes the job at rank 0.
    assert!(best_rank <= 1, "rank {best_rank}");
}

/// The same attack does not place the correct key first against TI at the
/// same trace budget.
#[test]
fn cpa_does_not_break_ti_at_small_budgets() {
    let circuit = SboxCircuit::build(Scheme::Ti);
    let data = acquire_cpa(&circuit, &config(2), 0x7, 192);
    let result = cpa_attack(
        &data.plaintexts,
        &data.traces,
        LeakageModel::OutputTransition,
    );
    assert!(
        result.key_rank(0x7) > 0,
        "TI should resist model-based first-order CPA at 192 traces"
    );
}

/// A profiled template adversary breaks both unprotected circuits with a
/// handful of traces.
#[test]
fn templates_break_unprotected_circuits_fast() {
    for scheme in [Scheme::Lut, Scheme::Opt] {
        let circuit = SboxCircuit::build(scheme);
        let profiling = acquire(&circuit, &config(3));
        let templates = TemplateSet::profile(&profiling);
        let data = acquire_cpa(&circuit, &config(4), 0xC, 24);
        let result = template_attack(&templates, &data.plaintexts, &data.traces);
        assert_eq!(result.key_rank(0xC), 0, "{scheme}");
    }
}

/// Template profiling transfers across devices: profiling on one mask
/// seed, attacking traces captured under another, still classifies.
#[test]
fn templates_transfer_across_mask_streams() {
    let circuit = SboxCircuit::build(Scheme::Rsm);
    let profiling = acquire(&circuit, &config(5));
    let templates = TemplateSet::profile(&profiling);
    let data = acquire_cpa(&circuit, &config(6), 0x2, 256);
    let result = template_attack(&templates, &data.plaintexts, &data.traces);
    // RSM's class means separate in our model, so a profiled adversary
    // eventually wins; what matters here is cross-seed consistency.
    assert!(result.key_rank(0x2) <= 3, "rank {}", result.key_rank(0x2));
}

/// The streaming campaign attack reproduces the paper's protection
/// ordering: the unprotected LUT discloses the key within the trace
/// budget, while the masked schemes (RSM, TI, ISW) keep the key out of
/// first place across every trial at the same budget.
#[test]
fn attack_engine_reproduces_the_paper_protection_ordering() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("attack-ordering-{}", std::process::id()));
    let make = || {
        Campaign::new(CampaignConfig {
            protocol: ProtocolConfig::default(),
            workers: 2,
            cache: CacheMode::Off,
            store_dir: dir.clone(),
            log_path: dir.join("runs.jsonl"),
            ..CampaignConfig::default()
        })
    };
    // MLPA is the strongest distinguisher against the real netlists;
    // a 100% success-rate threshold makes MTD mean "every trial won".
    let plan = AttackPlan {
        key: 0x5,
        traces: 96,
        trials: 2,
        distinguishers: vec![Distinguisher::Mlpa],
        sr_threshold: 1.0,
        mode: SumMode::Exact,
    };
    let lut = make().attack(Scheme::Lut, &plan);
    let lut_mtd = lut.reports[0].mtd;
    assert!(
        lut_mtd.is_some(),
        "the unprotected LUT must disclose the key within {} traces",
        plan.traces
    );
    for scheme in [Scheme::Rsm, Scheme::Ti, Scheme::Isw] {
        let outcome = make().attack(scheme, &plan);
        assert_eq!(
            outcome.reports[0].mtd, None,
            "{scheme} should resist MLPA at a budget that breaks the LUT"
        );
    }
}

/// The probing analyzer and the dynamic study agree on the mechanism:
/// schemes with zero static bias still show dynamic leakage.
#[test]
fn static_probing_and_dynamic_leakage_are_complementary() {
    use acquisition::LeakageStudy;
    let circuit = SboxCircuit::build(Scheme::Isw);
    let profile = sbox_circuits::probing::analyze(&circuit);
    assert!(profile.max_bias(circuit.netlist()) < 1e-9);
    let study = LeakageStudy::new(config(7));
    let leak = study.run(Scheme::Isw).spectrum.total_leakage_power();
    assert!(leak > 0.0, "dynamic (glitch) leakage must still exist");
}
