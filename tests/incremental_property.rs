//! Property test for the incremental re-analyzer: under random netlist
//! edits, `Baseline::reanalyze` must render a report byte-identical to a
//! from-scratch `analyze_subject` of the same candidate.
//!
//! The edit distribution mixes the three shapes the repair searcher
//! actually produces — pin rewires (`transform::rewire_input`), barrier
//! re-marks, and the generator's own candidate patches — so the
//! equivalence is checked on the inputs that matter, not a synthetic
//! corpus. Any divergence means the cone-invalidation logic tiled a
//! stale statistic over an edited region, which would silently corrupt
//! the repair search.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sbox_leakage::circuits::{SboxCircuit, Scheme};
use sbox_leakage::repair::patch::generate;
use sbox_leakage::verify::{analyze_subject, report, Baseline, Subject};

/// Incremental and from-scratch reports must match byte-for-byte.
fn assert_equivalent(baseline: &Baseline, candidate: &Subject, what: &str) {
    let fresh = analyze_subject(candidate);
    let (incremental, effort) = baseline.reanalyze(candidate);
    assert_eq!(
        report::json(&fresh),
        report::json(&incremental),
        "{what}: incremental report diverged (effort {}/{} gates)",
        effort.dirty_gates,
        effort.total_gates
    );
}

fn random_rewires(scheme: Scheme, seed: u64, attempts: usize, accepted: usize) {
    let subject = Subject::of_circuit(&SboxCircuit::build(scheme));
    let baseline = Baseline::new(subject.clone());
    let netlist = subject.netlist();
    let mut rng = SmallRng::seed_from_u64(seed);
    // Legal rewire sources: any primary input or gate output, referred
    // to by the `NetId`s the netlist itself hands out.
    let mut sources: Vec<_> = netlist.inputs().to_vec();
    sources.extend(netlist.gates().iter().map(|g| g.output()));
    let mut done = 0usize;
    for _ in 0..attempts {
        if done >= accepted {
            break;
        }
        let gi = rng.gen::<u64>() as usize % netlist.gates().len();
        let g = netlist.nets()[netlist.gates()[gi].output().index()]
            .driver()
            .expect("gate output has a driver");
        let gate = netlist.gate(g);
        let pin = rng.gen::<u64>() as usize % gate.inputs().len();
        let new_net = sources[rng.gen::<u64>() as usize % sources.len()];
        let Ok(mutant) = sbox_leakage::netlist::transform::rewire_input(netlist, g, pin, new_net)
        else {
            // Cycles and other illegal rewires are not candidates.
            continue;
        };
        let candidate = Subject::with_roles(
            subject.label(),
            mutant,
            subject.roles().to_vec(),
            subject.output_groups().to_vec(),
        )
        .expect("roles unchanged");
        assert_equivalent(
            &baseline,
            &candidate,
            &format!(
                "{scheme} rewire gate {} pin {pin} -> net {}",
                g.index(),
                new_net.index()
            ),
        );
        done += 1;
    }
    assert!(
        done >= accepted / 2,
        "{scheme}: too few legal rewires ({done})"
    );
}

fn random_barrier_marks(scheme: Scheme, seed: u64, count: usize) {
    let subject = Subject::of_circuit(&SboxCircuit::build(scheme));
    let baseline = Baseline::new(subject.clone());
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..count {
        let g = rng.gen::<u64>() as usize % subject.netlist().gates().len();
        let mut candidate = subject.clone();
        candidate.mark_barrier(g);
        assert_equivalent(
            &baseline,
            &candidate,
            &format!("{scheme} barrier at gate {g}"),
        );
    }
}

fn generator_patches(scheme: Scheme, cap: usize) {
    let subject = Subject::of_circuit(&SboxCircuit::build(scheme));
    let baseline = Baseline::new(subject.clone());
    let analysis = baseline.base_analysis();
    for patch in generate(baseline.subject(), &analysis)
        .patches
        .into_iter()
        .take(cap)
    {
        assert_equivalent(
            &baseline,
            &patch.subject,
            &format!("{scheme} patch {}", patch.name),
        );
    }
}

#[test]
fn isw_random_rewires_reanalyze_byte_identically() {
    random_rewires(Scheme::Isw, 0x15, 40, 12);
}

#[test]
fn ti_random_rewires_reanalyze_byte_identically() {
    random_rewires(Scheme::Ti, 0x71, 24, 6);
}

#[test]
fn barrier_marks_reanalyze_byte_identically() {
    random_barrier_marks(Scheme::Isw, 0xBA11, 8);
    random_barrier_marks(Scheme::Ti, 0xBA12, 3);
}

#[test]
fn repair_generator_patches_reanalyze_byte_identically() {
    generator_patches(Scheme::Ti, 4);
    generator_patches(Scheme::Isw, 4);
}
