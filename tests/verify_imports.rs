//! Pinned static-analysis expectations for *imported* netlists: the
//! bundled AES S-box and PRESENT S-box-layer Yosys-JSON fixtures flow
//! through the frontend into `sca-verify`, and their JSON reports are
//! byte-compared against `tests/golden/verify/`.
//!
//! This exercises the analyzer's two depth regimes on foreign inputs:
//! the 8-bit AES S-box still fits the exhaustive sweep (256 classes,
//! no masks), while the 16-bit PRESENT layer exceeds it and must
//! degrade to the structural depth — honestly labelled in the report.
//!
//! Regenerate after an intentional analyzer change with:
//!
//! ```text
//! SCA_BLESS=1 cargo test --test verify_imports
//! ```

use std::path::PathBuf;

use sbox_leakage::verify::{self, expect, report, Depth, Subject};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/verify")
}

fn imported_subject(label: &str, fixture: &str) -> Subject {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/frontend")
        .join(fixture);
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    let design = sbox_leakage::frontend::import_auto(&text).expect("fixture imports");
    Subject::unprotected(label, design.netlist).expect("unprotected contract")
}

#[test]
fn imported_aes_sbox_report_matches_the_pinned_expectation() {
    let subject = imported_subject("aes-sbox", "aes_sbox.yosys.json");
    let analysis = verify::analyze_subject(&subject);
    // 8 secret bits, no masks: the exhaustive sweep still applies, and
    // an unprotected S-box must fail first-order value probing.
    assert_eq!(analysis.depth, Depth::Exhaustive);
    assert!(!analysis.verdicts.value_first_order);
    let actual = report::json(&analysis);
    let path = expect::expectation_path(&golden_dir(), "aes-sbox");
    if expect::blessing() {
        expect::bless(&path, &actual).expect("write fixture");
        return;
    }
    expect::check(&path, &actual).unwrap_or_else(|drift| panic!("{drift}"));
}

#[test]
fn imported_present_layer_report_matches_the_pinned_expectation() {
    let subject = imported_subject("present-layer", "present_layer.yosys.json");
    let analysis = verify::analyze_subject(&subject);
    // 16 secret bits exceed the exhaustive window: the analyzer must
    // fall back to the structural depth, not silently subsample.
    assert_eq!(analysis.depth, Depth::Structural);
    let actual = report::json(&analysis);
    let path = expect::expectation_path(&golden_dir(), "present-layer");
    if expect::blessing() {
        expect::bless(&path, &actual).expect("write fixture");
        return;
    }
    expect::check(&path, &actual).unwrap_or_else(|drift| panic!("{drift}"));
}
