//! Golden-vector conformance suite: the spectral analysis of every
//! scheme, pinned bit-for-bit.
//!
//! Each fixture under `tests/golden/` holds the per-class mean traces,
//! the Walsh–Hadamard coefficients `a_u(T)`, the per-sample
//! `LeakagePower(T)` series, and the total / single-bit / multi-bit
//! leakage sums for one scheme under a small fixed protocol (2 traces
//! per class, 10 samples, the default seed). Values are stored as the
//! hex of `f64::to_bits`, so a comparison failure is a *bitwise*
//! regression — there is no tolerance to hide behind.
//!
//! Three independent pipelines must reproduce every fixture exactly:
//! the batch analysis (`acquire` + `from_class_means`), the streaming
//! fold (`acquire_streaming` in exact mode), and the campaign's sharded
//! executor fold at 1, 2, and 8 workers (whose shard accumulators merge
//! in a deterministic tree).
//!
//! Regenerate after an intentional analysis change with:
//!
//! ```text
//! SCA_BLESS=1 cargo test --test conformance
//! ```
//!
//! and review the fixture diff like any other code change (see
//! `DESIGN.md`, "Streaming spectral analysis").

use std::fmt::Write as _;
use std::path::PathBuf;

use sbox_leakage::acquisition::{self, classified_schedule, ProtocolConfig, NUM_CLASSES};
use sbox_leakage::analysis::{LeakageSpectrum, SumMode};
use sbox_leakage::campaign::{
    fold_schedule_with, ExecPolicy, FaultPlan, ResumeState, StreamPolicy,
};
use sbox_leakage::circuits::{SboxCircuit, Scheme};
use sbox_leakage::gatesim::Simulator;

/// The fixed fixture protocol: 32 traces of 10 samples, default seed.
fn protocol() -> ProtocolConfig {
    let mut p = ProtocolConfig {
        traces_per_class: 2,
        ..ProtocolConfig::default()
    };
    p.sampling.samples = 10;
    p
}

fn golden_path(scheme: Scheme) -> PathBuf {
    let name = scheme.label().to_lowercase().replace('-', "_");
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.golden"))
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Render one scheme's analysis in the fixture format. Everything is
/// derived from the class means, so this pins the whole spectral chain.
fn render(scheme: Scheme, protocol: &ProtocolConfig, means: &[Vec<f64>]) -> String {
    let spectrum = LeakageSpectrum::from_class_means(means);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# golden leakage vectors: scheme={} traces_per_class={} samples={} seed={}",
        scheme.label(),
        protocol.traces_per_class,
        protocol.sampling.samples,
        protocol.seed,
    );
    let _ = writeln!(
        out,
        "# values are f64 bit patterns (hex); regenerate with SCA_BLESS=1"
    );
    for (class, mean) in means.iter().enumerate() {
        let _ = write!(out, "class_mean {class}");
        for &v in mean {
            let _ = write!(out, " {}", hex(v));
        }
        out.push('\n');
    }
    for u in 0..spectrum.num_sources() {
        let _ = write!(out, "coeff {u}");
        for t in 0..spectrum.samples() {
            let _ = write!(out, " {}", hex(spectrum.coefficient(u, t)));
        }
        out.push('\n');
    }
    for (t, p) in spectrum.leakage_power_series().iter().enumerate() {
        let _ = writeln!(out, "leakage_power {t} {}", hex(*p));
    }
    let _ = writeln!(out, "total {}", hex(spectrum.total_leakage_power()));
    let _ = writeln!(out, "total_single_bit {}", hex(spectrum.total_single_bit()));
    let _ = writeln!(out, "total_multi_bit {}", hex(spectrum.total_multi_bit()));
    out
}

fn blessing() -> bool {
    std::env::var("SCA_BLESS").is_ok_and(|v| v == "1")
}

/// The batch pipeline's rendering — the source of truth the fixtures
/// are blessed from.
fn batch_text(scheme: Scheme) -> String {
    let protocol = protocol();
    let circuit = SboxCircuit::build(scheme);
    let traces = acquisition::acquire(&circuit, &protocol);
    render(scheme, &protocol, &traces.class_means())
}

/// The fixture contents: read from disk normally, recomputed from the
/// batch path under `SCA_BLESS=1` (so the three suites never race on
/// the file while blessing).
fn expected_text(scheme: Scheme) -> String {
    if blessing() {
        return batch_text(scheme);
    }
    let path = golden_path(scheme);
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden fixture {} ({e}); bless it with \
             `SCA_BLESS=1 cargo test --test conformance`",
            path.display()
        )
    })
}

/// Report the first differing line, not a 5 kB string dump.
fn assert_same(actual: &str, expected: &str, what: &str, scheme: Scheme) {
    if actual == expected {
        return;
    }
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            a,
            e,
            "{what} diverges from the golden vector for {} at line {}",
            scheme.label(),
            i + 1
        );
    }
    panic!(
        "{what} output for {} has {} lines, golden has {}",
        scheme.label(),
        actual.lines().count(),
        expected.lines().count()
    );
}

/// The batch analysis reproduces (or blesses) every fixture.
#[test]
fn batch_analysis_matches_golden_vectors() {
    for scheme in Scheme::ALL {
        let text = batch_text(scheme);
        if blessing() {
            let path = golden_path(scheme);
            std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
            std::fs::write(&path, &text).expect("write golden");
            eprintln!("blessed {}", path.display());
        } else {
            assert_same(&text, &expected_text(scheme), "batch analysis", scheme);
        }
    }
}

/// The one-trace-at-a-time streaming fold (exact mode) reproduces every
/// fixture bit-for-bit — no tolerance.
#[test]
fn streaming_fold_matches_golden_vectors() {
    for scheme in Scheme::ALL {
        let circuit = SboxCircuit::build(scheme);
        let acc = acquisition::acquire_streaming(&circuit, &protocol(), SumMode::Exact);
        let text = render(scheme, &protocol(), &acc.class_means());
        assert_same(&text, &expected_text(scheme), "streaming fold", scheme);
    }
}

/// The campaign executor's sharded fold — worker-local accumulators
/// merged in the deterministic tree — reproduces every fixture at 1, 2,
/// and 8 workers.
#[test]
fn merged_shard_accumulators_match_golden_vectors() {
    for scheme in Scheme::ALL {
        let protocol = protocol();
        let circuit = SboxCircuit::build(scheme);
        let sim = Simulator::new(circuit.netlist(), &protocol.sim);
        let schedule = classified_schedule(&circuit, &protocol);
        let expected = expected_text(scheme);
        for workers in [1usize, 2, 8] {
            let policy = ExecPolicy {
                workers,
                max_retries: 0,
                faults: FaultPlan::none(),
                ..ExecPolicy::default()
            };
            let stream = StreamPolicy {
                num_classes: NUM_CLASSES,
                mode: SumMode::Exact,
            };
            let (acc, report) = fold_schedule_with(
                &sim,
                &schedule,
                &protocol.sampling,
                protocol.seed,
                &policy,
                ResumeState::default(),
                &stream,
            );
            assert!(report.quarantined.is_empty());
            let text = render(scheme, &protocol, &acc.class_means());
            assert_same(
                &text,
                &expected,
                &format!("{workers}-worker merged fold"),
                scheme,
            );
        }
    }
}
