//! Integration tests for the campaign's failure model: torn-write
//! recovery in the store layer, panic isolation and retry in the
//! executor, quarantine of persistently failing traces, and
//! checkpoint/resume of killed runs — all driven through the
//! deterministic `FaultPlan` harness and the public `sbox-leakage`
//! facade.

use std::path::{Path, PathBuf};

use sbox_leakage::acquisition::ProtocolConfig;
use sbox_leakage::campaign::{
    CacheMode, Campaign, CampaignConfig, FaultPlan, RecordFate, StoreReader,
};
use sbox_leakage::circuits::Scheme;

/// A unique scratch directory per test, cleaned up at entry so stale
/// state from an interrupted run cannot leak into assertions.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbox-leakage-ft-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small, fast protocol: 32 traces of 10 samples.
fn small_protocol() -> ProtocolConfig {
    let mut p = ProtocolConfig {
        traces_per_class: 2,
        ..ProtocolConfig::default()
    };
    p.sampling.samples = 10;
    p
}

fn campaign_in(dir: &Path, cache: CacheMode, faults: FaultPlan) -> Campaign {
    Campaign::new(CampaignConfig {
        protocol: small_protocol(),
        workers: 2,
        cache,
        store_dir: dir.join("traces"),
        log_path: dir.join("runs.jsonl"),
        faults,
        ..CampaignConfig::default()
    })
}

/// The single `.sctr` store file a campaign wrote under `dir`.
fn store_file(dir: &Path) -> PathBuf {
    let mut stores: Vec<PathBuf> = std::fs::read_dir(dir.join("traces"))
        .expect("store dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "sctr"))
        .collect();
    assert_eq!(stores.len(), 1, "expected exactly one store in {stores:?}");
    stores.pop().expect("one store")
}

/// Property-style torn-write sweep: a store truncated at **every** byte
/// boundary, and a store with **every** byte individually corrupted,
/// must always degrade to a read error (a cache miss at the campaign
/// level) — never a panic — and the campaign must then re-acquire the
/// identical traces.
#[test]
fn every_truncation_and_corruption_degrades_to_a_cache_miss() {
    let dir = scratch("torn");
    let mut campaign = campaign_in(&dir, CacheMode::ReadWrite, FaultPlan::none());
    let reference = campaign.acquire(Scheme::Opt);
    assert!(!reference.cache_hit);

    let path = store_file(&dir);
    let pristine = std::fs::read(&path).expect("store bytes");

    // Truncation at every byte boundary: opening or streaming the store
    // must return an error for every strict prefix.
    for len in 0..pristine.len() {
        std::fs::write(&path, &pristine[..len]).expect("truncate");
        let outcome = StoreReader::open(&path).and_then(|r| r.read_classified());
        assert!(outcome.is_err(), "prefix of {len} bytes must not read back");
    }

    // Every single-byte corruption (bit 6 flipped) must be caught by the
    // header checks or the trailing checksum.
    let mut corrupt = pristine.clone();
    for i in 0..corrupt.len() {
        corrupt[i] ^= 0x40;
        std::fs::write(&path, &corrupt).expect("corrupt");
        let outcome = StoreReader::open(&path).and_then(|r| r.read_classified());
        assert!(outcome.is_err(), "corrupt byte {i} must not read back");
        corrupt[i] ^= 0x40;
    }

    // Campaign-level recovery: with a torn store on disk, the next
    // acquisition misses, re-simulates, and reproduces the identical
    // traces (then repairs the store for the run after it).
    std::fs::write(&path, &pristine[..pristine.len() / 2]).expect("tear");
    let mut recovering = campaign_in(&dir, CacheMode::ReadWrite, FaultPlan::none());
    let recovered = recovering.acquire(Scheme::Opt);
    assert!(!recovered.cache_hit, "torn store must be a miss");
    assert_eq!(recovered.traces, reference.traces);
    let mut warm = campaign_in(&dir, CacheMode::ReadWrite, FaultPlan::none());
    assert!(warm.acquire(Scheme::Opt).cache_hit, "store repaired");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `torn@N` fault makes the campaign itself produce a short store;
/// the degradation path is exercised end to end without hand-editing
/// files.
#[test]
fn injected_torn_store_writes_degrade_to_re_acquisition() {
    let dir = scratch("torn-fault");
    let mut torn = campaign_in(
        &dir,
        CacheMode::ReadWrite,
        FaultPlan::none().with_torn_store(40),
    );
    let first = torn.acquire(Scheme::Opt);
    assert!(!first.cache_hit);

    let mut after = campaign_in(&dir, CacheMode::ReadWrite, FaultPlan::none());
    let second = after.acquire(Scheme::Opt);
    assert!(
        !second.cache_hit,
        "a torn store must not be served as a hit"
    );
    assert_eq!(second.traces, first.traces);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected mid-campaign panic (the ISSUE's headline scenario): the
/// run completes, the failed captures are retried with the re-derived
/// per-trace seed, and the result is bit-identical to a clean run at any
/// worker count.
#[test]
fn injected_panics_are_retried_bit_identically_at_any_worker_count() {
    let dir = scratch("retry");
    let mut clean = campaign_in(&dir, CacheMode::Off, FaultPlan::none());
    let reference = clean.acquire(Scheme::Rsm);

    for workers in [1usize, 8] {
        let faults = FaultPlan::none()
            .with_transient_panics([0, 7, 31])
            .with_panic_rate(11, 0.2);
        let mut campaign = Campaign::new(CampaignConfig {
            protocol: small_protocol(),
            workers,
            cache: CacheMode::Off,
            store_dir: dir.join("traces"),
            log_path: dir.join("runs.jsonl"),
            faults,
            ..CampaignConfig::default()
        });
        let outcome = campaign.acquire(Scheme::Rsm);
        assert_eq!(
            outcome.traces, reference.traces,
            "retried traces must be bit-identical at {workers} workers"
        );
        let report = &campaign.log().reports()[0];
        assert!(
            report.retried >= 3,
            "at {workers} workers: {}",
            report.retried
        );
        assert_eq!(report.quarantined, 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Persistently failing indices are quarantined: the campaign completes,
/// reports them, refuses to cache the incomplete set, and keeps the
/// survivors' checkpoint.
#[test]
fn sticky_faults_quarantine_and_do_not_poison_the_cache() {
    let dir = scratch("quarantine");
    let faults = FaultPlan::none().with_sticky_panics([3, 11]);
    let mut campaign = campaign_in(&dir, CacheMode::ReadWrite, faults);
    let outcome = campaign.acquire(Scheme::Opt);
    assert!(!outcome.cache_hit);
    assert_eq!(outcome.traces.len(), 30, "32 scheduled, 2 quarantined");

    let report = &campaign.log().reports()[0];
    assert_eq!(report.quarantined, 2);
    assert!(
        report.warnings.iter().any(|w| w.contains("quarantined")),
        "incompleteness must be reported: {:?}",
        report.warnings
    );

    // The incomplete set must not have been cached as complete…
    let stores = std::fs::read_dir(dir.join("traces"))
        .map(|d| {
            d.filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "sctr"))
                .count()
        })
        .unwrap_or(0);
    assert_eq!(stores, 0, "quarantined run must not write a store");
    // …but the survivors' checkpoint must still be on disk for resume.
    let checkpoints = std::fs::read_dir(dir.join("traces"))
        .map(|d| {
            d.filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
                .count()
        })
        .unwrap_or(0);
    assert_eq!(checkpoints, 1, "quarantined run must keep its checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance criterion: a campaign killed mid-run resumes from its last
/// checkpoint and re-simulates only the incomplete shards, producing
/// byte-identical traces — asserted by counting simulator events on the
/// resumed run.
#[test]
fn a_killed_campaign_resumes_from_its_checkpoint() {
    // The clean reference (and its full-simulation event count).
    let ref_dir = scratch("resume-ref");
    let mut clean = campaign_in(&ref_dir, CacheMode::Off, FaultPlan::none());
    let reference = clean.acquire(Scheme::Glut);
    let full_events = clean.log().reports()[0].stats.events;
    assert!(full_events > 0);

    // "Kill" a run by quarantining two indices: 30 of 32 traces land in
    // the checkpoint, no store is written — exactly the disk state a
    // crashed process leaves behind.
    let dir = scratch("resume");
    let faults = FaultPlan::none().with_sticky_panics([5, 20]);
    let mut killed = campaign_in(&dir, CacheMode::ReadWrite, faults);
    killed.acquire(Scheme::Glut);
    assert_eq!(killed.log().reports()[0].quarantined, 2);

    // The next run resumes: 30 traces from the checkpoint, 2 simulated.
    let mut resumed = campaign_in(&dir, CacheMode::ReadWrite, FaultPlan::none());
    let outcome = resumed.acquire(Scheme::Glut);
    assert!(!outcome.cache_hit);
    assert_eq!(
        outcome.traces, reference.traces,
        "resumed run must be byte-identical to an uninterrupted one"
    );
    let report = &resumed.log().reports()[0];
    assert_eq!(report.resumed, 30, "only incomplete shards re-simulate");
    assert_eq!(report.quarantined, 0);
    assert!(
        report.stats.events < full_events / 2,
        "resume must not re-simulate completed shards \
         ({} events vs {full_events} for a full run)",
        report.stats.events
    );
    assert!(report.stats.events > 0, "the missing shards do simulate");

    // The completed run wrote the store and retired the checkpoint: the
    // next campaign is a pure hit.
    let mut warm = campaign_in(&dir, CacheMode::ReadWrite, FaultPlan::none());
    assert!(warm.acquire(Scheme::Glut).cache_hit);
    assert_eq!(warm.log().reports()[0].stats.events, 0);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// `SCA_CACHE=refresh` (write-only mode) must re-simulate even when a
/// checkpoint exists — a refresh that silently resumed would defeat its
/// purpose.
#[test]
fn refresh_mode_ignores_existing_checkpoints() {
    let dir = scratch("refresh");
    let faults = FaultPlan::none().with_sticky_panics([1]);
    let mut killed = campaign_in(&dir, CacheMode::ReadWrite, faults);
    killed.acquire(Scheme::Opt);

    let mut refresh = campaign_in(&dir, CacheMode::WriteOnly, FaultPlan::none());
    let outcome = refresh.acquire(Scheme::Opt);
    assert!(!outcome.cache_hit);
    let report = &refresh.log().reports()[0];
    assert_eq!(report.resumed, 0, "refresh must not resume");
    assert!(report.stats.events > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

fn streaming_campaign_in(
    dir: &Path,
    cache: CacheMode,
    faults: FaultPlan,
    workers: usize,
) -> Campaign {
    Campaign::new(CampaignConfig {
        protocol: small_protocol(),
        workers,
        cache,
        store_dir: dir.join("traces"),
        log_path: dir.join("runs.jsonl"),
        faults,
        streaming: true,
        ..CampaignConfig::default()
    })
}

/// Streaming analysis under injected panics: retried captures fold
/// exactly once, so the faulted streamed spectrum is bit-identical to a
/// clean batch run at any worker count.
#[test]
fn faulted_streaming_folds_are_bit_identical_to_a_clean_run() {
    let dir = scratch("stream-retry");
    let mut clean = campaign_in(&dir, CacheMode::Off, FaultPlan::none());
    let reference = clean.acquire(Scheme::Rsm);

    for workers in [1usize, 8] {
        let faults = FaultPlan::none()
            .with_transient_panics([0, 7, 31])
            .with_panic_rate(11, 0.2);
        let mut campaign = streaming_campaign_in(&dir, CacheMode::Off, faults, workers);
        let outcome = campaign.acquire_spectrum(Scheme::Rsm);
        assert!(outcome.streamed);
        assert_eq!(
            outcome.spectrum, reference.spectrum,
            "faulted streamed spectrum must match the clean batch run at {workers} workers"
        );
        assert_eq!(outcome.traces_analyzed, reference.traces.len());
        let report = &campaign.log().reports()[0];
        assert!(report.streamed);
        assert!(
            report.retried >= 3,
            "at {workers} workers: {}",
            report.retried
        );
        assert_eq!(report.quarantined, 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Quarantined captures are folded zero times and survivors exactly
/// once: the streamed spectrum of a faulted run equals the batch
/// analysis of the same degraded trace set, and the incomplete cell is
/// never persisted as complete.
#[test]
fn quarantined_streaming_folds_survivors_exactly_once() {
    let dir = scratch("stream-quarantine");
    let faults = FaultPlan::none().with_sticky_panics([3, 11]);
    let mut batch = campaign_in(&dir, CacheMode::Off, faults.clone());
    let degraded = batch.acquire(Scheme::Opt);
    assert_eq!(degraded.traces.len(), 30, "32 scheduled, 2 quarantined");

    let mut campaign = streaming_campaign_in(&dir, CacheMode::ReadWrite, faults, 2);
    let outcome = campaign.acquire_spectrum(Scheme::Opt);
    assert_eq!(
        outcome.traces_analyzed, 30,
        "quarantined traces must not fold"
    );
    assert_eq!(outcome.class_counts.iter().sum::<usize>(), 30);
    assert_eq!(
        outcome.spectrum, degraded.spectrum,
        "streamed survivors must match the batch analysis of the same degraded set"
    );
    let report = &campaign.log().reports()[0];
    assert_eq!(report.quarantined, 2);
    assert!(
        report.warnings.iter().any(|w| w.contains("quarantined")),
        "incompleteness must be reported: {:?}",
        report.warnings
    );
    let stores = std::fs::read_dir(dir.join("traces"))
        .map(|d| {
            d.filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "sctr"))
                .count()
        })
        .unwrap_or(0);
    assert_eq!(stores, 0, "streaming keeps no raw traces to persist");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A killed streaming run resumes from its checkpoint: salvaged frames
/// are re-folded at their schedule positions, so the resumed
/// accumulator is bit-identical to one from an uninterrupted run — and
/// only the missing shards re-simulate.
#[test]
fn a_killed_streaming_run_resumes_to_an_identical_accumulator() {
    // Uninterrupted streaming reference (and its full event count).
    let ref_dir = scratch("stream-resume-ref");
    let mut fresh = streaming_campaign_in(&ref_dir, CacheMode::Off, FaultPlan::none(), 2);
    let reference = fresh.acquire_spectrum(Scheme::Glut);
    let full_events = fresh.log().reports()[0].stats.events;
    assert!(full_events > 0);

    // "Kill" a checkpointing streaming run by quarantining two indices.
    let dir = scratch("stream-resume");
    let faults = FaultPlan::none().with_sticky_panics([5, 20]);
    let mut killed = streaming_campaign_in(&dir, CacheMode::ReadWrite, faults, 2);
    killed.acquire_spectrum(Scheme::Glut);
    assert_eq!(killed.log().reports()[0].quarantined, 2);

    // The resumed run re-folds 30 checkpointed frames and simulates 2.
    let mut resumed = streaming_campaign_in(&dir, CacheMode::ReadWrite, FaultPlan::none(), 2);
    let outcome = resumed.acquire_spectrum(Scheme::Glut);
    assert!(!outcome.cache_hit, "no complete store exists to hit");
    assert_eq!(
        outcome.spectrum, reference.spectrum,
        "resumed fold must be bit-identical to an uninterrupted one"
    );
    assert_eq!(outcome.traces_analyzed, reference.traces_analyzed);
    let report = &resumed.log().reports()[0];
    assert_eq!(report.resumed, 30, "only incomplete shards re-simulate");
    assert_eq!(report.quarantined, 0);
    assert!(report.stats.events > 0, "the missing shards do simulate");
    assert!(
        report.stats.events < full_events / 2,
        "resume must not re-simulate completed shards \
         ({} events vs {full_events} for a full run)",
        report.stats.events
    );

    // Streaming completion keeps the checkpoint (there is no store to
    // retire it into): a third run folds every frame from it without
    // simulating at all.
    let mut warm = streaming_campaign_in(&dir, CacheMode::ReadWrite, FaultPlan::none(), 2);
    let rewarmed = warm.acquire_spectrum(Scheme::Glut);
    assert_eq!(rewarmed.spectrum, reference.spectrum);
    let report = &warm.log().reports()[0];
    assert_eq!(report.resumed, 32, "everything folds from the checkpoint");
    assert_eq!(report.stats.events, 0, "nothing is left to simulate");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// A tiny deterministic SplitMix64 for the corruption sweeps below: the
/// offsets are random-looking but reproducible, so a failing round can
/// be replayed exactly.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Property test for the self-healing scrub: a store corrupted at
/// random (seeded) byte offsets must always come back — healed files
/// are byte-identical to the pristine capture, and unhealable damage is
/// quarantined and re-acquired bit-identically. Either way the spectra
/// the analysis sees afterwards equal the uncorrupted run's.
#[test]
fn scrub_restores_randomly_corrupted_stores_bit_identically() {
    let dir = scratch("scrub-prop");
    let mut campaign = campaign_in(&dir, CacheMode::ReadWrite, FaultPlan::none());
    let reference = campaign.acquire(Scheme::Ti);
    let path = store_file(&dir);
    let pristine = std::fs::read(&path).expect("store bytes");
    let mut rng = 0x5C4B_0B5E_ED00_0007u64;

    for round in 0..12 {
        let mut damaged = pristine.clone();
        let hits = 1 + (splitmix(&mut rng) % 4) as usize;
        for _ in 0..hits {
            let i = (splitmix(&mut rng) as usize) % damaged.len();
            damaged[i] ^= (splitmix(&mut rng) as u8) | 1;
        }
        if damaged == pristine {
            continue; // two flips cancelled; nothing to detect
        }
        std::fs::write(&path, &damaged).expect("corrupt");

        let report = campaign.scrub();
        assert_eq!(report.scanned(), 1, "round {round}");
        match &report.outcomes[0].fate {
            RecordFate::Clean => panic!("round {round}: corruption went undetected"),
            RecordFate::Healed { .. } => {
                let healed = std::fs::read(&path).expect("healed bytes");
                assert_eq!(
                    healed, pristine,
                    "round {round}: healed store must be byte-identical"
                );
            }
            RecordFate::Quarantined { .. } => {
                // Unhealable damage (typically in the header): the file
                // is set aside, never served, and re-acquisition
                // restores the identical store.
                assert!(
                    !path.exists(),
                    "round {round}: quarantine must move the file"
                );
                let _ = std::fs::remove_file(path.with_extension("sctr.quarantined"));
                let mut fresh = campaign_in(&dir, CacheMode::ReadWrite, FaultPlan::none());
                let recovered = fresh.acquire(Scheme::Ti);
                assert!(!recovered.cache_hit, "round {round}");
                assert_eq!(recovered.traces, reference.traces, "round {round}");
                let rewritten = std::fs::read(&path).expect("rewritten bytes");
                assert_eq!(
                    rewritten, pristine,
                    "round {round}: re-acquired store must be byte-identical"
                );
            }
        }
    }

    // Whatever mix of heals and quarantines the sweep produced, the
    // analysis downstream of the store sees the uncorrupted results.
    let mut warm = campaign_in(&dir, CacheMode::ReadWrite, FaultPlan::none());
    let outcome = warm.acquire(Scheme::Ti);
    assert!(outcome.cache_hit, "scrubbed store must serve hits again");
    assert_eq!(outcome.traces, reference.traces);
    assert_eq!(outcome.spectrum, reference.spectrum);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same healing property for CPA attack stores: record-region
/// corruption is healed bit-identically, so the attack scores computed
/// from the store equal the uncorrupted run's.
#[test]
fn scrub_heals_cpa_stores_so_attack_inputs_are_bit_identical() {
    let dir = scratch("scrub-cpa");
    let mut campaign = campaign_in(&dir, CacheMode::ReadWrite, FaultPlan::none());
    let reference = campaign.acquire_cpa(Scheme::Lut, 3, 16);
    let path = store_file(&dir);
    let pristine = std::fs::read(&path).expect("store bytes");
    let mut rng = 0xC0FF_EE00_0000_0007u64;

    for round in 0..6 {
        // Stay past the header so every round exercises the heal path
        // (header damage is the quarantine path, covered above).
        let mut damaged = pristine.clone();
        let span = damaged.len() - 80;
        let i = 80 + (splitmix(&mut rng) as usize) % span;
        damaged[i] ^= (splitmix(&mut rng) as u8) | 1;
        std::fs::write(&path, &damaged).expect("corrupt");

        let report = campaign.scrub();
        assert_eq!(report.healed(), 1, "round {round}: {report}");
        let healed = std::fs::read(&path).expect("healed bytes");
        assert_eq!(healed, pristine, "round {round}");
    }

    let mut warm = campaign_in(&dir, CacheMode::ReadWrite, FaultPlan::none());
    let again = warm.acquire_cpa(Scheme::Lut, 3, 16);
    assert_eq!(
        again, reference,
        "healed CPA store must reproduce identical attack inputs"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
