//! Import conformance suite for the external netlist frontend.
//!
//! The contract under test: a design that leaves the workspace through
//! `to_yosys_json` / `to_edif` and comes back through `import_str` is
//! *the same design* — not approximately, but bit for bit. For every
//! one of the seven schemes this suite pins:
//!
//! - structural identity of the re-imported netlist (gate count,
//!   topology, per-gate delays) through both exchange formats,
//! - bit-identical captures on both capture backends (event-driven and
//!   bit-sliced levelized) under the small fixture protocol,
//! - byte-identical `sca-verify` reports (JSON and human renderings),
//! - campaign cache keying by imported-netlist content hash, so an
//!   unchanged import re-acquires from the trace store.
//!
//! Bundled exchange fixtures live under `tests/fixtures/frontend/`:
//! the seven schemes re-exported through the frontend (Yosys JSON,
//! EDIF, and the encoding sidecar), the full 64-bit PRESENT
//! substitution layer, a plain AES S-box, and hand-written "foreign"
//! netlists using NANGATE liberty names and Yosys `$_..._` internal
//! gates. Diagnostic renderings are pinned under
//! `tests/golden/frontend/`.
//!
//! Regenerate the generated fixtures and goldens after an intentional
//! format change with:
//!
//! ```text
//! SCA_BLESS=1 cargo test --test frontend_conformance
//! ```
//!
//! and review the diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use sbox_leakage::acquisition::{self, ProtocolConfig};
use sbox_leakage::campaign::{CacheMode, Campaign, CampaignConfig};
use sbox_leakage::circuits::{SboxCircuit, Scheme};
use sbox_leakage::frontend::{
    self, import_auto, import_str, netlist_digest, sidecar_json, sidecar_toml, structural_diff,
    to_edif, to_yosys_json, EncodingSidecar, FrontendError, SourceFormat,
};
use sbox_leakage::verify;

/// The fixed fixture protocol: 2 traces per class, 10 samples, the
/// default seed — same shape as the spectral golden suite.
fn protocol() -> ProtocolConfig {
    let mut p = ProtocolConfig {
        traces_per_class: 2,
        ..ProtocolConfig::default()
    };
    p.sampling.samples = 10;
    p
}

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/frontend")
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/frontend")
}

fn blessing() -> bool {
    std::env::var("SCA_BLESS").is_ok_and(|v| v == "1")
}

fn scheme_slug(scheme: Scheme) -> String {
    scheme.label().to_lowercase().replace('-', "_")
}

/// Re-import a scheme through one exchange format and bind it with its
/// ground-truth sidecar, panicking with the diagnostic on any failure.
fn reimport(scheme: Scheme, format: SourceFormat) -> SboxCircuit {
    let native = SboxCircuit::build(scheme);
    let text = match format {
        SourceFormat::YosysJson => to_yosys_json(native.netlist()),
        SourceFormat::Edif => to_edif(native.netlist()),
    };
    let design = import_str(&text, format)
        .unwrap_or_else(|e| panic!("{} re-import failed for {}: {e}", format, scheme.label()));
    assert!(
        design.warnings.is_empty(),
        "{} re-import of {} warned: {:?}",
        format,
        scheme.label(),
        design.warnings
    );
    let sidecar = EncodingSidecar::parse(&sidecar_toml(&native))
        .unwrap_or_else(|e| panic!("sidecar parse failed for {}: {e}", scheme.label()));
    sidecar
        .bind(design.netlist)
        .unwrap_or_else(|e| panic!("sidecar bind failed for {}: {e}", scheme.label()))
}

/// Assert two trace sets carry bit-identical samples (stricter than
/// `PartialEq`, which would let `-0.0 == 0.0` slip through).
fn assert_traces_bit_identical(
    native: &sbox_leakage::analysis::ClassifiedTraces,
    imported: &sbox_leakage::analysis::ClassifiedTraces,
    scheme: Scheme,
    backend: &str,
) {
    assert_eq!(
        native.len(),
        imported.len(),
        "{backend} trace count differs for {}",
        scheme.label()
    );
    for (i, ((ca, ta), (cb, tb))) in native.iter().zip(imported.iter()).enumerate() {
        assert_eq!(ca, cb, "{backend} class differs at trace {i}");
        assert_eq!(ta.len(), tb.len(), "{backend} samples differ at trace {i}");
        for (t, (a, b)) in ta.iter().zip(tb.iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{backend} capture of {} diverges at trace {i} sample {t}: {a} vs {b}",
                scheme.label()
            );
        }
    }
}

/// Every scheme survives the Yosys-JSON round trip with an identical
/// structure: same gates, same wiring, same delays, same digest.
#[test]
fn yosys_round_trip_is_structurally_identical() {
    for scheme in Scheme::ALL {
        let native = SboxCircuit::build(scheme);
        let imported = reimport(scheme, SourceFormat::YosysJson);
        if let Some(diff) = structural_diff(native.netlist(), imported.netlist()) {
            panic!(
                "yosys-json round trip of {} differs: {diff}",
                scheme.label()
            );
        }
        assert_eq!(
            netlist_digest(native.netlist()),
            netlist_digest(imported.netlist()),
            "content digest differs for {}",
            scheme.label()
        );
    }
}

/// Every scheme survives the EDIF round trip structurally identical.
#[test]
fn edif_round_trip_is_structurally_identical() {
    for scheme in Scheme::ALL {
        let native = SboxCircuit::build(scheme);
        let imported = reimport(scheme, SourceFormat::Edif);
        if let Some(diff) = structural_diff(native.netlist(), imported.netlist()) {
            panic!("edif round trip of {} differs: {diff}", scheme.label());
        }
    }
}

/// Captures of a re-imported design are bit-identical to native on the
/// event-driven backend.
#[test]
fn reimported_captures_are_bit_identical_event_backend() {
    let protocol = protocol();
    for scheme in Scheme::ALL {
        let native = SboxCircuit::build(scheme);
        let imported = reimport(scheme, SourceFormat::YosysJson);
        let a = acquisition::acquire(&native, &protocol);
        let b = acquisition::acquire(&imported, &protocol);
        assert_traces_bit_identical(&a, &b, scheme, "event");
    }
}

/// Captures of a re-imported design are bit-identical to native on the
/// bit-sliced levelized backend — and a scheme the bit-sliced backend
/// rejects natively is rejected identically after import.
#[test]
fn reimported_captures_are_bit_identical_bitsliced_backend() {
    let protocol = protocol();
    for scheme in Scheme::ALL {
        let native = SboxCircuit::build(scheme);
        let imported = reimport(scheme, SourceFormat::YosysJson);
        match (
            acquisition::acquire_bitsliced(&native, &protocol),
            acquisition::acquire_bitsliced(&imported, &protocol),
        ) {
            (Ok(a), Ok(b)) => assert_traces_bit_identical(&a, &b, scheme, "bitsliced"),
            (Err(a), Err(b)) => assert_eq!(
                a.to_string(),
                b.to_string(),
                "bitsliced rejection differs for {}",
                scheme.label()
            ),
            (Ok(_), Err(e)) => panic!(
                "bitsliced backend accepts native {} but rejects the import: {e}",
                scheme.label()
            ),
            (Err(e), Ok(_)) => panic!(
                "bitsliced backend rejects native {} ({e}) but accepts the import",
                scheme.label()
            ),
        }
    }
}

/// `sca-verify` renders byte-identical reports for native and
/// re-imported designs — the masking verdicts cannot tell them apart.
#[test]
fn reimported_verify_reports_are_byte_identical() {
    for scheme in Scheme::ALL {
        let native = SboxCircuit::build(scheme);
        let imported = reimport(scheme, SourceFormat::YosysJson);
        let a = verify::analyze(&native);
        let b = verify::analyze(&imported);
        assert_eq!(
            verify::report::json(&a),
            verify::report::json(&b),
            "verify JSON report differs for {}",
            scheme.label()
        );
        assert_eq!(
            verify::report::human(&a),
            verify::report::human(&b),
            "verify human report differs for {}",
            scheme.label()
        );
    }
}

/// Campaign jobs key imported designs by content hash: the same import
/// acquired twice hits the trace store, and the cached traces match.
#[test]
fn campaign_keys_imported_designs_by_content_hash() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("frontend-conformance-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut campaign = Campaign::new(CampaignConfig {
        protocol: protocol(),
        workers: 2,
        cache: CacheMode::ReadWrite,
        store_dir: dir.clone(),
        log_path: dir.join("runs.jsonl"),
        ..CampaignConfig::default()
    });
    let imported = reimport(Scheme::Opt, SourceFormat::YosysJson);
    let label = format!(
        "import-{}-{:016x}",
        imported.scheme().label().to_lowercase(),
        netlist_digest(imported.netlist())
    );
    let first = campaign.acquire_circuit_aged(&imported, &label, 0.0);
    let second = campaign.acquire_circuit_aged(&imported, &label, 0.0);
    assert!(!first.cache_hit, "first acquisition must simulate");
    assert!(second.cache_hit, "unchanged import must hit the store");
    assert_eq!(first.traces, second.traces);
    // The cached traces are the native captures: content addressing
    // keys the *circuit*, not where it came from.
    let native = acquisition::acquire(
        &SboxCircuit::build(Scheme::Opt),
        &campaign.config().protocol,
    );
    assert_eq!(first.traces, native);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bundled exchange fixtures for every scheme (Yosys JSON, EDIF, and
/// the sidecar in both encodings) import back to the native structure.
/// Under `SCA_BLESS=1` the files are regenerated from the exporters.
#[test]
fn bundled_scheme_fixtures_import_to_native_structure() {
    let dir = fixture_dir();
    for scheme in Scheme::ALL {
        let native = SboxCircuit::build(scheme);
        let slug = scheme_slug(scheme);
        let files = [
            (
                format!("{slug}.yosys.json"),
                to_yosys_json(native.netlist()),
            ),
            (format!("{slug}.edif"), to_edif(native.netlist())),
            (format!("{slug}.sidecar.toml"), sidecar_toml(&native)),
            (format!("{slug}.sidecar.json"), sidecar_json(&native)),
        ];
        if blessing() {
            std::fs::create_dir_all(&dir).expect("fixture dir");
            for (name, text) in &files {
                std::fs::write(dir.join(name), text).expect("write fixture");
                eprintln!("blessed {}", dir.join(name).display());
            }
        }
        for (name, _) in &files {
            let path = dir.join(name);
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "cannot read bundled fixture {} ({e}); bless it with \
                     `SCA_BLESS=1 cargo test --test frontend_conformance`",
                    path.display()
                )
            });
            if name.ends_with(".sidecar.toml") || name.ends_with(".sidecar.json") {
                let sidecar = EncodingSidecar::parse(&text)
                    .unwrap_or_else(|e| panic!("{name} no longer parses: {e}"));
                assert_eq!(sidecar.scheme(), scheme, "{name} declares the wrong scheme");
            } else {
                let design =
                    import_auto(&text).unwrap_or_else(|e| panic!("{name} no longer imports: {e}"));
                if let Some(diff) = structural_diff(native.netlist(), &design.netlist) {
                    panic!("bundled fixture {name} drifted from the native build: {diff}");
                }
            }
        }
    }
}

/// The non-scheme fixtures — the full 64-bit PRESENT substitution
/// layer and a plain AES S-box — round-trip through the frontend.
#[test]
fn bundled_cipher_fixtures_round_trip() {
    let dir = fixture_dir();
    let designs = [
        (
            "present_layer.yosys.json",
            frontend::fixtures::present_layer(),
        ),
        ("aes_sbox.yosys.json", frontend::fixtures::aes_sbox()),
    ];
    for (name, native) in &designs {
        if blessing() {
            std::fs::create_dir_all(&dir).expect("fixture dir");
            std::fs::write(dir.join(name), to_yosys_json(native)).expect("write fixture");
            eprintln!("blessed {}", dir.join(name).display());
        }
        let path = dir.join(name);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "cannot read bundled fixture {} ({e}); bless it with \
                 `SCA_BLESS=1 cargo test --test frontend_conformance`",
                path.display()
            )
        });
        let design = import_str(&text, SourceFormat::YosysJson)
            .unwrap_or_else(|e| panic!("{name} no longer imports: {e}"));
        if let Some(diff) = structural_diff(native, &design.netlist) {
            panic!("bundled fixture {name} drifted from the generator: {diff}");
        }
        // And the re-export of the import matches the file exactly —
        // the exchange format is a fixed point.
        assert_eq!(
            to_yosys_json(&design.netlist),
            text,
            "{name} is not a fixed point of export ∘ import"
        );
    }
}

/// Hand-written foreign netlists — NANGATE liberty names with drive
/// suffixes, Yosys `$_..._` internal gates, compound AOI/MUX cells,
/// constant drivers, and a multi-bit port — all map onto the gate
/// library.
#[test]
fn foreign_fixtures_map_onto_the_gate_library() {
    let text = std::fs::read_to_string(fixture_dir().join("foreign_nangate.json"))
        .expect("bundled foreign_nangate.json");
    let design = import_str(&text, SourceFormat::YosysJson).expect("foreign NANGATE import");
    // AOI21 expands to AND2+NOR2, MUX2 to INV+2×AND2+OR2, the const-1
    // tie to an XNOR2 on an input net; the four plain gates stay 1:1.
    let stats = design.netlist.stats();
    assert_eq!(stats.num_inputs, 5, "x[4] bus plus the scalar select");
    assert_eq!(stats.num_outputs, 2);
    assert_eq!(stats.total_gates, 11);
    assert!(design.warnings.is_empty(), "{:?}", design.warnings);

    let text = std::fs::read_to_string(fixture_dir().join("foreign_yosys_gates.json"))
        .expect("bundled foreign_yosys_gates.json");
    let design = import_str(&text, SourceFormat::YosysJson).expect("yosys internal-gate import");
    let stats = design.netlist.stats();
    assert_eq!(stats.num_inputs, 3);
    assert_eq!(stats.num_outputs, 1);
    // $_NAND_ + $_NOR_ + $_XOR_ + $_NOT_ map 1:1; $_AOI3_ expands to 2.
    assert_eq!(stats.total_gates, 6);

    let text =
        std::fs::read_to_string(fixture_dir().join("foreign.edif")).expect("bundled foreign.edif");
    let design = import_str(&text, SourceFormat::Edif).expect("foreign EDIF import");
    let stats = design.netlist.stats();
    assert_eq!(stats.num_inputs, 2);
    assert_eq!(stats.num_outputs, 1);
    assert_eq!(stats.total_gates, 2, "NAND2 feeding INV");
    assert_eq!(design.netlist.name(), "renamed top");
}

/// Render one diagnostic case for the golden file.
fn diagnostic_line(name: &str, result: Result<(), FrontendError>) -> String {
    match result {
        Ok(()) => format!("{name}: ok"),
        Err(e) => format!("{name}: {e}"),
    }
}

/// Import diagnostics are part of the interface: their renderings are
/// pinned in `tests/golden/frontend/diagnostics.golden`.
#[test]
fn import_diagnostics_match_golden() {
    let cases: Vec<(&str, Result<(), FrontendError>)> = vec![
        (
            "truncated-json",
            import_str("{\"modules\": {\"m\": {\"po", SourceFormat::YosysJson).map(|_| ()),
        ),
        (
            "unknown-cell",
            import_str(
                r#"{"modules": {"m": {"ports": {"a": {"direction": "input", "bits": [2]},
                    "y": {"direction": "output", "bits": [3]}},
                    "cells": {"g": {"type": "DFF_X1",
                    "connections": {"D": [2], "Q": [3]}}}}}}"#,
                SourceFormat::YosysJson,
            )
            .map(|_| ()),
        ),
        (
            "width-mismatched-port",
            import_str(
                r#"{"modules": {"m": {"ports": {"a": {"direction": "input", "bits": [2, 3]},
                    "y": {"direction": "output", "bits": [4]}},
                    "cells": {"g": {"type": "INV_X1",
                    "connections": {"A": [2, 3], "ZN": [4]}}}}}}"#,
                SourceFormat::YosysJson,
            )
            .map(|_| ()),
        ),
        (
            "combinational-loop",
            import_str(
                r#"{"modules": {"m": {"ports": {"a": {"direction": "input", "bits": [2]},
                    "y": {"direction": "output", "bits": [3]}},
                    "cells": {
                    "g0": {"type": "NAND2_X1", "connections": {"A1": [2], "A2": [4], "ZN": [3]}},
                    "g1": {"type": "INV_X1", "connections": {"A": [3], "ZN": [4]}}}}}}"#,
                SourceFormat::YosysJson,
            )
            .map(|_| ()),
        ),
        (
            "dangling-net",
            import_str(
                r#"{"modules": {"m": {"ports": {"a": {"direction": "input", "bits": [2]},
                    "y": {"direction": "output", "bits": [3]}},
                    "cells": {"g": {"type": "AND2_X1",
                    "connections": {"A1": [2], "A2": [9], "ZN": [3]}}}}}}"#,
                SourceFormat::YosysJson,
            )
            .map(|_| ()),
        ),
        (
            "multiple-drivers",
            import_str(
                r#"{"modules": {"m": {"ports": {"a": {"direction": "input", "bits": [2]},
                    "y": {"direction": "output", "bits": [3]}},
                    "cells": {
                    "g0": {"type": "INV_X1", "connections": {"A": [2], "ZN": [3]}},
                    "g1": {"type": "BUF_X1", "connections": {"A": [2], "Z": [3]}}}}}}"#,
                SourceFormat::YosysJson,
            )
            .map(|_| ()),
        ),
        (
            "no-top-module",
            import_str(
                r#"{"modules": {"m1": {"ports": {}, "cells": {}},
                               "m2": {"ports": {}, "cells": {}}}}"#,
                SourceFormat::YosysJson,
            )
            .map(|_| ()),
        ),
        (
            "edif-unbalanced",
            import_str("(edif top (edifVersion 2 0 0)", SourceFormat::Edif).map(|_| ()),
        ),
        (
            "edif-bus-pin",
            import_str(
                r#"(edif top (edifVersion 2 0 0)
                     (library L (cell top (view v (viewType NETLIST)
                       (interface (port a (direction INPUT))
                                  (port y (direction OUTPUT)))
                       (contents
                         (instance g (viewRef v (cellRef INV_X1 (libraryRef N))))
                         (net n (joined (portRef (member a 0)) (portRef A (instanceRef g)))))))))"#,
                SourceFormat::Edif,
            )
            .map(|_| ()),
        ),
        (
            "sidecar-unknown-scheme",
            EncodingSidecar::parse("scheme = \"GROST\"\n").map(|_| ()),
        ),
        ("sidecar-role-mismatch", {
            let native = SboxCircuit::build(Scheme::Lut);
            let ours = sidecar_toml(&native);
            // Misdeclare the first input's role and try to bind.
            let broken = ours.replacen("share:0:0", "fresh", 1);
            EncodingSidecar::parse(&broken)
                .and_then(|s| s.bind(native.netlist().clone()))
                .map(|_| ())
        }),
    ];
    let mut text = String::new();
    let _ = writeln!(
        text,
        "# golden import diagnostics; regenerate with SCA_BLESS=1"
    );
    for (name, result) in cases {
        let _ = writeln!(text, "{}", diagnostic_line(name, result));
    }
    let path = golden_dir().join("diagnostics.golden");
    let expected = if blessing() {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        std::fs::write(&path, &text).expect("write golden");
        eprintln!("blessed {}", path.display());
        text.clone()
    } else {
        std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "cannot read golden fixture {} ({e}); bless it with \
                 `SCA_BLESS=1 cargo test --test frontend_conformance`",
                path.display()
            )
        })
    };
    if text != expected {
        for (i, (a, e)) in text.lines().zip(expected.lines()).enumerate() {
            assert_eq!(a, e, "diagnostic rendering diverges at line {}", i + 1);
        }
        panic!(
            "diagnostic output has {} lines, golden has {}",
            text.lines().count(),
            expected.lines().count()
        );
    }
}
