//! Golden attack conformance: per-guess distinguisher scores, pinned
//! bit-for-bit.
//!
//! Each fixture under `tests/golden/attacks/` holds the 16 per-guess
//! scores and peak-sample indices of every distinguisher (CPA under the
//! transition model, single-bit DPA, MLPA) against one scheme's real
//! simulated CPA dataset (48 traces of 10 samples, the default seed,
//! key 0x9). Values are stored as the hex of `f64::to_bits`, so a
//! comparison failure is a *bitwise* regression — no tolerance.
//!
//! Three independent pipelines must reproduce every fixture exactly:
//! the batch fold ([`attack_batch`]), the sequential chunk-tree stream
//! ([`AttackStream`]), and the campaign's sharded streaming attack at
//! 1, 2, and 8 workers (the acceptance bar for the attack engine's
//! merge invariance).
//!
//! Regenerate after an intentional scoring change with:
//!
//! ```text
//! SCA_BLESS=1 cargo test --test attack_conformance
//! ```
//!
//! and review the fixture diff like any other code change (see
//! `DESIGN.md`, "Streaming attack engine").

use std::fmt::Write as _;
use std::path::PathBuf;

use sbox_leakage::acquisition::{acquire_cpa, ProtocolConfig};
use sbox_leakage::analysis::SumMode;
use sbox_leakage::attacks::{attack_batch, AttackStream, CpaResult, Distinguisher, LeakageModel};
use sbox_leakage::campaign::{AttackPlan, CacheMode, Campaign, CampaignConfig};
use sbox_leakage::circuits::{SboxCircuit, Scheme};

const KEY: u8 = 0x9;
const TRACES: usize = 48;
const SCHEMES: [Scheme; 3] = [Scheme::Lut, Scheme::Rsm, Scheme::Ti];

fn protocol() -> ProtocolConfig {
    let mut p = ProtocolConfig::default();
    p.sampling.samples = 10;
    p
}

fn distinguishers() -> [Distinguisher; 3] {
    [
        Distinguisher::Cpa(LeakageModel::OutputTransition),
        Distinguisher::Dpa { bit: 0 },
        Distinguisher::Mlpa,
    ]
}

fn golden_path(scheme: Scheme) -> PathBuf {
    let name = scheme.label().to_lowercase().replace('-', "_");
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/attacks")
        .join(format!("{name}.golden"))
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Render one scheme's per-distinguisher scores in the fixture format.
fn render(scheme: Scheme, results: &[(Distinguisher, CpaResult)]) -> String {
    let p = protocol();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# golden attack scores: scheme={} traces={TRACES} samples={} seed={} key={KEY:#x}",
        scheme.label(),
        p.sampling.samples,
        p.seed,
    );
    let _ = writeln!(
        out,
        "# values are f64 bit patterns (hex); regenerate with SCA_BLESS=1"
    );
    for (d, r) in results {
        for g in 0..16 {
            let _ = writeln!(
                out,
                "score {} {g} {} {}",
                d.label(),
                hex(r.scores[g]),
                r.peak_samples[g]
            );
        }
        let _ = writeln!(out, "rank {} {}", d.label(), r.key_rank(KEY));
    }
    out
}

fn blessing() -> bool {
    std::env::var("SCA_BLESS").is_ok_and(|v| v == "1")
}

/// The batch pipeline's results — the source of truth the fixtures are
/// blessed from.
fn batch_results(scheme: Scheme) -> Vec<(Distinguisher, CpaResult)> {
    let circuit = SboxCircuit::build(scheme);
    let data = acquire_cpa(&circuit, &protocol(), KEY, TRACES);
    distinguishers()
        .into_iter()
        .map(|d| (d, attack_batch(&data.plaintexts, &data.traces, d).scores()))
        .collect()
}

fn expected_text(scheme: Scheme) -> String {
    if blessing() {
        return render(scheme, &batch_results(scheme));
    }
    let path = golden_path(scheme);
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden fixture {} ({e}); bless it with \
             `SCA_BLESS=1 cargo test --test attack_conformance`",
            path.display()
        )
    })
}

/// Report the first differing line, not a string dump.
fn assert_same(actual: &str, expected: &str, what: &str, scheme: Scheme) {
    if actual == expected {
        return;
    }
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            a,
            e,
            "{what} diverges from the golden vector for {} at line {}",
            scheme.label(),
            i + 1
        );
    }
    panic!(
        "{what} output for {} has {} lines, golden has {}",
        scheme.label(),
        actual.lines().count(),
        expected.lines().count()
    );
}

/// The batch attack reproduces (or blesses) every fixture.
#[test]
fn batch_attack_matches_golden_vectors() {
    for scheme in SCHEMES {
        let text = render(scheme, &batch_results(scheme));
        if blessing() {
            let path = golden_path(scheme);
            std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
            std::fs::write(&path, &text).expect("write golden");
            eprintln!("blessed {}", path.display());
        } else {
            assert_same(&text, &expected_text(scheme), "batch attack", scheme);
        }
    }
}

/// The one-trace-at-a-time chunk-tree stream (exact mode) reproduces
/// every fixture bit-for-bit.
#[test]
fn attack_stream_matches_golden_vectors() {
    for scheme in SCHEMES {
        let circuit = SboxCircuit::build(scheme);
        let data = acquire_cpa(&circuit, &protocol(), KEY, TRACES);
        let results: Vec<(Distinguisher, CpaResult)> = distinguishers()
            .into_iter()
            .map(|d| {
                let mut stream = AttackStream::new(d, protocol().sampling.samples, SumMode::Exact);
                for (&p, t) in data.plaintexts.iter().zip(&data.traces) {
                    stream.fold(p, t);
                }
                (d, stream.finish().scores())
            })
            .collect();
        let text = render(scheme, &results);
        assert_same(&text, &expected_text(scheme), "attack stream", scheme);
    }
}

/// The campaign's sharded streaming attack — worker-local joint states
/// merged in the deterministic tree — reproduces every fixture at 1, 2,
/// and 8 workers.
#[test]
fn campaign_streamed_attack_matches_golden_vectors() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("attack-conformance-{}", std::process::id()));
    for scheme in SCHEMES {
        let expected = expected_text(scheme);
        for workers in [1usize, 2, 8] {
            let mut campaign = Campaign::new(CampaignConfig {
                protocol: protocol(),
                workers,
                cache: CacheMode::Off,
                store_dir: dir.clone(),
                log_path: dir.join("runs.jsonl"),
                ..CampaignConfig::default()
            });
            let plan = AttackPlan {
                key: KEY,
                traces: TRACES,
                trials: 1,
                distinguishers: distinguishers().to_vec(),
                sr_threshold: 0.8,
                mode: SumMode::Exact,
            };
            let outcome = campaign.attack(scheme, &plan);
            let results: Vec<(Distinguisher, CpaResult)> = outcome
                .reports
                .iter()
                .map(|r| (r.distinguisher, r.final_scores[0].clone()))
                .collect();
            let text = render(scheme, &results);
            assert_same(
                &text,
                &expected,
                &format!("{workers}-worker campaign attack"),
                scheme,
            );
        }
    }
}
