//! Formal (BDD-based) verification of the generated netlists against
//! reference constructions — structural proofs, not sampling.

use sbox_circuits::{SboxCircuit, Scheme};
use sbox_netlist::bdd::{check_equivalence, Bdd};
use sbox_netlist::synth::TruthTable;
use sbox_netlist::transform::{balance_delays, sweep_dead_gates};
use sbox_netlist::{Netlist, NetlistBuilder};

/// The LUT and OPT netlists (same 4-bit ports) are formally equivalent.
#[test]
fn lut_and_opt_are_formally_equivalent() {
    let lut = SboxCircuit::build(Scheme::Lut);
    let opt = SboxCircuit::build(Scheme::Opt);
    assert_eq!(check_equivalence(lut.netlist(), opt.netlist()), None);
}

/// Delay balancing provably preserves every scheme's function.
#[test]
fn balancing_is_formally_sound() {
    for scheme in [Scheme::Lut, Scheme::Opt, Scheme::Isw] {
        let circuit = SboxCircuit::build(scheme);
        let balanced = balance_delays(circuit.netlist(), 6.0).expect("balance");
        assert_eq!(
            check_equivalence(circuit.netlist(), &balanced),
            None,
            "{scheme}"
        );
    }
}

/// Dead-gate sweeping provably preserves the masked tables.
#[test]
fn sweeping_is_formally_sound() {
    for scheme in [Scheme::Rsm, Scheme::Glut] {
        let circuit = SboxCircuit::build(scheme);
        let swept = sweep_dead_gates(circuit.netlist()).expect("sweep");
        assert_eq!(
            check_equivalence(circuit.netlist(), &swept),
            None,
            "{scheme}"
        );
    }
}

/// BDD proof that the RSM netlist equals a freshly synthesized golden
/// model built through an independent path (direct truth-table SOP with a
/// different merge cap → different structure, same function).
#[test]
fn rsm_matches_an_independent_golden_model() {
    let rsm = SboxCircuit::build(Scheme::Rsm);
    let golden = {
        let tt = TruthTable::from_fn(8, 4, |w| {
            let a = (w & 0xF) as u8;
            let mi = ((w >> 4) & 0xF) as u8;
            u64::from(present_cipher::sbox(a ^ mi) ^ ((mi + 1) % 16))
        });
        let mut b = NetlistBuilder::new("rsm_golden");
        let ins = b.input_bus("x", 8);
        let outs = tt.synthesize_sop_with_cap(&mut b, &ins, 1);
        b.output_bus("y", &outs);
        b.finish().expect("valid")
    };
    assert_ne!(
        rsm.netlist().gates().len(),
        golden.gates().len(),
        "the structures should differ for the proof to be meaningful"
    );
    assert_eq!(check_equivalence(rsm.netlist(), &golden), None);
}

/// The TI netlist, reduced by XOR-ing its four output shares in gates,
/// formally equals the plain S-box on unshared inputs: build a wrapper
/// that ties all shares of each input bit to (x, 0, 0, 0).
#[test]
fn ti_collapses_to_the_sbox_when_shares_are_trivial() {
    // Verify via BDD on a combined netlist: feed x-bit into share 0 and a
    // constant-0 (x ⊕ x) into shares 1..3, XOR the output shares.
    let ti = SboxCircuit::build(Scheme::Ti);
    let tt = ti.netlist().clone();
    let collapsed = collapse_ti(&tt);
    let lut = SboxCircuit::build(Scheme::Lut);
    assert_eq!(check_equivalence(&collapsed, lut.netlist()), None);
}

fn collapse_ti(ti: &Netlist) -> Netlist {
    let mut b = NetlistBuilder::new("ti_collapsed");
    let x = b.input_bus("x", 4);
    let zero = b.xor(x[0], x[0]);
    // TI input order: x{bit}s{share}, bit-major.
    let mut wrapper_inputs = Vec::with_capacity(16);
    for &xbit in &x {
        wrapper_inputs.push(xbit);
        wrapper_inputs.extend([zero, zero, zero]);
    }
    // Inline the TI netlist gate by gate.
    let mut map: std::collections::HashMap<usize, sbox_netlist::NetId> =
        std::collections::HashMap::new();
    for (slot, &outer) in ti.inputs().iter().zip(&wrapper_inputs) {
        map.insert(slot.index(), outer);
    }
    for &gid in ti.topo_order() {
        let gate = ti.gate(gid);
        let ins: Vec<sbox_netlist::NetId> = gate.inputs().iter().map(|n| map[&n.index()]).collect();
        let out = b.gate(gate.cell(), &ins);
        map.insert(gate.output().index(), out);
    }
    // XOR the four shares of each output bit.
    for bit in 0..4 {
        let shares: Vec<sbox_netlist::NetId> = (0..4)
            .map(|s| {
                let (_, net) = &ti.outputs()[4 * bit + s];
                map[&net.index()]
            })
            .collect();
        let y = b.xor_tree(&shares);
        b.output(format!("y{bit}"), y);
    }
    b.finish().expect("valid collapse")
}

/// The round-1 datapath with OPT slices formally equals the one with LUT
/// slices — 128-variable BDD equivalence.
#[test]
fn round_one_variants_are_equivalent() {
    use sbox_circuits::round1::{build_round_one, RoundSboxStyle};
    let lut = build_round_one(RoundSboxStyle::Lut);
    let opt = build_round_one(RoundSboxStyle::Opt);
    assert_eq!(check_equivalence(&lut, &opt), None);
}

/// Sanity: the BDD engine scales to the 12-input GLUT table and proves it
/// against its defining relation.
#[test]
fn glut_matches_its_defining_relation() {
    let glut = SboxCircuit::build(Scheme::Glut);
    let mut bdd = Bdd::new(12);
    let outs = bdd.of_netlist(glut.netlist());
    // Golden: build BDD of S(A⊕MI)⊕MO from the truth table directly.
    for (bit, &node) in outs.iter().enumerate() {
        for word in (0..1u32 << 12).step_by(7) {
            let assign: Vec<bool> = (0..12).map(|i| (word >> i) & 1 == 1).collect();
            let a = (word & 0xF) as u8;
            let mi = ((word >> 4) & 0xF) as u8;
            let mo = ((word >> 8) & 0xF) as u8;
            let expect = ((present_cipher::sbox(a ^ mi) ^ mo) >> bit) & 1 == 1;
            assert_eq!(bdd.evaluate(node, &assign), expect);
        }
    }
}
