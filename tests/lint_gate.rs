//! Source-level deny-list for the two library crates that sit on
//! user-input paths: the netlist frontend (parses foreign files) and
//! the repair engine (transforms whatever the frontend produced).
//!
//! Both must degrade through typed errors, never panics: a malformed
//! EDIF or a hostile netlist is an expected input, and a panic inside a
//! parser is a denial-of-service on every tool built on top. The scan
//! covers non-test code only (everything above the first `#[cfg(test)]`
//! marker, matching the repo convention of trailing test modules).
//!
//! `.expect(` stays allowed in the frontend, where it documents
//! checked invariants (and names a parser combinator in `json.rs`) —
//! but the newer repair crate is held to the stricter bar.

use std::path::Path;

/// Tokens that abort the process instead of returning an error.
const DENIED: [&str; 5] = [
    "panic!",
    ".unwrap()",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

fn scan(dir: &Path, extra_denied: &[&str]) -> Vec<String> {
    let mut findings = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable source");
        for (lineno, line) in text.lines().enumerate() {
            // Test modules trail the file; stop scanning at the marker.
            if line.contains("#[cfg(test)]") {
                break;
            }
            let code = line.split("//").next().unwrap_or(line);
            for token in DENIED.iter().chain(extra_denied) {
                if code.contains(token) {
                    findings.push(format!(
                        "{}:{}: {}",
                        path.display(),
                        lineno + 1,
                        line.trim()
                    ));
                }
            }
        }
    }
    findings
}

fn crate_src(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("crates")
        .join(name)
        .join("src")
}

#[test]
fn frontend_library_code_never_panics_on_input() {
    let findings = scan(&crate_src("frontend"), &[]);
    assert!(
        findings.is_empty(),
        "frontend must return typed errors, not panic:\n{}",
        findings.join("\n")
    );
}

#[test]
fn repair_library_code_never_panics_on_input() {
    let findings = scan(&crate_src("repair"), &[".expect("]);
    assert!(
        findings.is_empty(),
        "repair must return typed errors, not panic:\n{}",
        findings.join("\n")
    );
}
