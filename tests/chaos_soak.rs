//! Chaos soak for the durable I/O layer: a battery of seeded fault
//! schedules — capture panics, torn stores, full disks (`enospc@N`),
//! flaky writes (`eio%R`), torn checkpoints, hung captures under a
//! watchdog, expiring budgets, and cancellation — each run end to end
//! through the public campaign API.
//!
//! The invariant under every schedule is the same: the run must end in
//! one of three states — a bit-identical result, a cleanly reported
//! typed degradation (quarantine/warnings), or a resumable interruption
//! — and a follow-up run with the faults lifted must always converge to
//! the bit-identical reference. A panic that escapes the campaign, or a
//! silently wrong trace set, fails the soak.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Duration;

use sbox_leakage::acquisition::ProtocolConfig;
use sbox_leakage::campaign::{
    CacheMode, Campaign, CampaignConfig, CancelToken, FaultPlan, RunBudget,
};
use sbox_leakage::circuits::Scheme;

/// One seeded fault schedule of the soak.
struct ChaosSchedule {
    name: &'static str,
    faults: FaultPlan,
    budget: RunBudget,
    capture_timeout: Option<Duration>,
}

impl ChaosSchedule {
    fn new(name: &'static str, faults: FaultPlan) -> Self {
        Self {
            name,
            faults,
            budget: RunBudget::unlimited(),
            capture_timeout: None,
        }
    }

    fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    fn with_watchdog(mut self, limit: Duration) -> Self {
        self.capture_timeout = Some(limit);
        self
    }
}

fn schedules() -> Vec<ChaosSchedule> {
    let cancelled = CancelToken::new();
    cancelled.cancel();
    vec![
        ChaosSchedule::new("panic-rate", FaultPlan::none().with_panic_rate(7, 0.15)),
        ChaosSchedule::new(
            "sticky-panics",
            FaultPlan::none().with_sticky_panics([2, 17]),
        ),
        ChaosSchedule::new("torn-store", FaultPlan::none().with_torn_store(52)),
        ChaosSchedule::new("enospc", FaultPlan::none().with_enospc_after(600)),
        ChaosSchedule::new("eio", FaultPlan::none().with_eio_rate(9, 0.08)),
        ChaosSchedule::new("torn-checkpoint", FaultPlan::none().with_torn_checkpoint()),
        ChaosSchedule::new(
            "slow-capture-watchdog",
            FaultPlan::none().with_slow_capture(5, 300),
        )
        .with_watchdog(Duration::from_millis(50)),
        ChaosSchedule::new("trace-budget", FaultPlan::none())
            .with_budget(RunBudget::unlimited().with_max_new_traces(10)),
        ChaosSchedule::new("expired-deadline", FaultPlan::none())
            .with_budget(RunBudget::unlimited().with_time_limit(Duration::ZERO)),
        ChaosSchedule::new("cancelled", FaultPlan::none())
            .with_budget(RunBudget::unlimited().with_cancel(cancelled)),
        ChaosSchedule::new(
            "kitchen-sink",
            FaultPlan::none()
                .with_panic_rate(23, 0.1)
                .with_eio_rate(41, 0.05)
                .with_torn_checkpoint(),
        )
        .with_budget(RunBudget::unlimited().with_max_new_traces(24)),
        ChaosSchedule::new(
            "enospc-and-panics",
            FaultPlan::none()
                .with_enospc_after(900)
                .with_transient_panics([0, 9, 30]),
        ),
    ]
}

/// A small, fast protocol: 32 traces of 10 samples.
fn small_protocol() -> ProtocolConfig {
    let mut p = ProtocolConfig {
        traces_per_class: 2,
        ..ProtocolConfig::default()
    };
    p.sampling.samples = 10;
    p
}

fn config_in(dir: &Path, faults: FaultPlan) -> CampaignConfig {
    CampaignConfig {
        protocol: small_protocol(),
        workers: 2,
        cache: CacheMode::ReadWrite,
        store_dir: dir.join("traces"),
        log_path: dir.join("runs.jsonl"),
        faults,
        ..CampaignConfig::default()
    }
}

#[test]
fn every_fault_schedule_ends_clean_typed_or_resumable() {
    // The clean reference every schedule must converge to.
    let ref_dir =
        std::env::temp_dir().join(format!("sbox-leakage-chaos-ref-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ref_dir);
    let mut clean = Campaign::new(CampaignConfig {
        cache: CacheMode::Off,
        ..config_in(&ref_dir, FaultPlan::none())
    });
    let reference = clean.acquire(Scheme::Opt);
    let _ = std::fs::remove_dir_all(&ref_dir);

    for schedule in schedules() {
        let dir: PathBuf = std::env::temp_dir().join(format!(
            "sbox-leakage-chaos-{}-{}",
            schedule.name,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // The faulted run. Nothing in the campaign may panic, no matter
        // what the schedule throws at it.
        let name = schedule.name;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut campaign = Campaign::new(CampaignConfig {
                budget: schedule.budget.clone(),
                capture_timeout: schedule.capture_timeout,
                ..config_in(&dir, schedule.faults.clone())
            });
            let outcome = campaign.acquire(Scheme::Opt);
            let report = &campaign.log().reports()[0];
            (outcome, report.quarantined, report.warnings.clone())
        }));
        let (outcome, quarantined, warnings) =
            outcome.unwrap_or_else(|_| panic!("schedule {name:?}: campaign panicked"));

        // Terminal-state invariant: bit-identical, typed degradation,
        // or a resumable interruption — never a silently wrong result.
        if let Some(interruption) = &outcome.partial {
            assert!(
                warnings.iter().any(|w| w.contains("interrupted")),
                "schedule {name:?}: interruption must be reported: {warnings:?}"
            );
            assert!(
                outcome.traces.len() + interruption.remaining + quarantined
                    <= reference.traces.len(),
                "schedule {name:?}: partial accounting out of range"
            );
        } else if quarantined > 0 {
            assert!(
                warnings.iter().any(|w| w.contains("quarantined")),
                "schedule {name:?}: degradation must be reported: {warnings:?}"
            );
            assert!(
                outcome.traces.len() < reference.traces.len(),
                "schedule {name:?}: quarantine must shrink the set, not corrupt it"
            );
        } else {
            assert_eq!(
                outcome.traces, reference.traces,
                "schedule {name:?}: an uninterrupted run must be bit-identical"
            );
        }

        // Convergence invariant: lift the faults and the same directory
        // — whatever stores, checkpoints, or torn prefixes the chaos
        // left behind — must finish to the bit-identical reference.
        let mut recovery = Campaign::new(config_in(&dir, FaultPlan::none()));
        let recovered = recovery.acquire(Scheme::Opt);
        assert_eq!(
            recovered.traces, reference.traces,
            "schedule {name:?}: recovery run must converge bit-identically"
        );
        assert!(
            recovered.partial.is_none(),
            "schedule {name:?}: recovery run must complete"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
