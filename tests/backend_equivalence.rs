//! Backend-equivalence suite: the bit-sliced levelized capture engine
//! must be observationally indistinguishable from the event-driven
//! reference engine everywhere traces flow — across every scheme, fresh
//! and aged, through the streaming fold, the durable trace store,
//! scrub/heal, and checkpoint resume. Only throughput may differ.

use std::path::{Path, PathBuf};

use sbox_leakage::acquisition::ProtocolConfig;
use sbox_leakage::campaign::{
    Backend, CacheMode, Campaign, CampaignConfig, FaultPlan, RunBudget, SumMode,
};
use sbox_leakage::circuits::{SboxCircuit, Scheme};

/// A unique scratch directory per test, cleaned up at entry so stale
/// state from an interrupted run cannot leak into assertions.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbox-leakage-be-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small, fast protocol: 32 traces of 10 samples.
fn small_protocol() -> ProtocolConfig {
    let mut p = ProtocolConfig {
        traces_per_class: 2,
        ..ProtocolConfig::default()
    };
    p.sampling.samples = 10;
    p
}

fn campaign_with(dir: &Path, backend: Backend, cache: CacheMode) -> Campaign {
    Campaign::new(CampaignConfig {
        protocol: small_protocol(),
        workers: 2,
        cache,
        store_dir: dir.join("traces"),
        log_path: dir.join("runs.jsonl"),
        backend,
        ..CampaignConfig::default()
    })
}

/// Every scheme, fresh and aged, must produce bit-identical traces and
/// spectra on both engines — the whole Table I surface of the paper.
#[test]
fn every_scheme_fresh_and_aged_is_bit_identical_across_backends() {
    let dir = scratch("schemes");
    for scheme in Scheme::ALL {
        for months in [0.0, 120.0] {
            let mut event = campaign_with(&dir, Backend::Event, CacheMode::Off);
            let mut bitsliced = campaign_with(&dir, Backend::Bitsliced, CacheMode::Off);
            let reference = event.acquire_aged(scheme, months);
            let got = bitsliced.acquire_aged(scheme, months);
            assert_eq!(
                got.traces, reference.traces,
                "{scheme:?} at {months} months: traces must be bit-identical"
            );
            assert_eq!(
                got.spectrum, reference.spectrum,
                "{scheme:?} at {months} months: spectra must be bit-identical"
            );
            let report = bitsliced.log().reports().last().expect("one run logged");
            assert_eq!(report.backend, Some(Backend::Bitsliced), "{scheme:?}");
            assert!(report.lane_utilization.is_some(), "{scheme:?}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The bounded-memory streaming fold composes with the bit-sliced
/// engine: exact-mode spectra are bitwise equal to the event-driven
/// streamed run and to the batch path.
#[test]
fn streaming_spectra_are_backend_invariant() {
    let dir = scratch("stream");
    let batch = campaign_with(&dir, Backend::Event, CacheMode::Off).acquire(Scheme::Glut);
    for backend in [Backend::Event, Backend::Bitsliced] {
        let mut campaign = Campaign::new(CampaignConfig {
            protocol: small_protocol(),
            workers: 2,
            cache: CacheMode::Off,
            store_dir: dir.join("traces"),
            log_path: dir.join("runs.jsonl"),
            streaming: true,
            stream_mode: SumMode::Exact,
            backend,
            ..CampaignConfig::default()
        });
        let streamed = campaign.acquire_spectrum(Scheme::Glut);
        assert!(streamed.streamed);
        assert_eq!(
            streamed.spectrum, batch.spectrum,
            "{backend}: streamed spectrum must match the batch path bitwise"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bit-sliced captures flow through the PR 7 durable-I/O layer
/// unchanged: the persisted store is byte-identical to the one the
/// event engine writes, scrub heals corruption back to those bytes
/// (re-capturing through the bit-sliced engine), and the run log
/// records which engine ran.
#[test]
fn bitsliced_captures_persist_heal_and_serve_byte_identically() {
    let event_dir = scratch("store-event");
    let bits_dir = scratch("store-bits");
    let reference =
        campaign_with(&event_dir, Backend::Event, CacheMode::ReadWrite).acquire(Scheme::Isw);

    // Transient capture faults under the bit-sliced backend reroute the
    // faulted indices through the scalar retry path; the surviving set
    // is still bit-identical.
    let mut campaign = Campaign::new(CampaignConfig {
        protocol: small_protocol(),
        workers: 2,
        cache: CacheMode::ReadWrite,
        store_dir: bits_dir.join("traces"),
        log_path: bits_dir.join("runs.jsonl"),
        faults: FaultPlan::none().with_transient_panics([0, 9, 30]),
        backend: Backend::Bitsliced,
        ..CampaignConfig::default()
    });
    let outcome = campaign.acquire(Scheme::Isw);
    assert!(!outcome.cache_hit);
    assert_eq!(outcome.traces, reference.traces);

    let event_store = store_file(&event_dir);
    let bits_store = store_file(&bits_dir);
    let pristine = std::fs::read(&bits_store).expect("store bytes");
    assert_eq!(
        pristine,
        std::fs::read(&event_store).expect("event store bytes"),
        "the persisted stores must be byte-identical across backends"
    );

    // Record-region corruption heals back to the identical bytes.
    let mut damaged = pristine.clone();
    damaged[pristine.len() - 11] ^= 0x40;
    std::fs::write(&bits_store, &damaged).expect("corrupt");
    let report = campaign.scrub();
    assert_eq!(report.healed(), 1, "{report}");
    assert_eq!(std::fs::read(&bits_store).expect("healed bytes"), pristine);

    // The healed store serves cache hits bit-identically.
    let mut warm = campaign_with(&bits_dir, Backend::Bitsliced, CacheMode::ReadWrite);
    let again = warm.acquire(Scheme::Isw);
    assert!(again.cache_hit);
    assert_eq!(again.traces, reference.traces);

    // The run log names the engine on simulated runs and leaves it null
    // on cache hits.
    campaign.finish().expect("append simulated-run reports");
    warm.finish().expect("append cache-hit report");
    let log = std::fs::read_to_string(bits_dir.join("runs.jsonl")).expect("run log");
    assert!(log.contains("\"backend\":\"bitsliced\""), "{log}");
    assert!(log.contains("\"backend\":null"), "{log}");
    let _ = std::fs::remove_dir_all(&event_dir);
    let _ = std::fs::remove_dir_all(&bits_dir);
}

/// A budget-interrupted bit-sliced run checkpoints its completed prefix
/// and resumes to the complete, bit-identical set — the schedule is
/// larger than one lane batch so the interruption lands between claims.
#[test]
fn budget_interrupted_bitsliced_runs_resume_bit_identically() {
    let dir = scratch("resume");
    let ref_dir = scratch("resume-ref");
    let mut protocol = ProtocolConfig {
        traces_per_class: 96, // 1536 traces: more than one 1024-lane claim
        ..ProtocolConfig::default()
    };
    protocol.sampling.samples = 6;
    let config = |dir: &Path, backend, budget| CampaignConfig {
        protocol: protocol.clone(),
        workers: 1,
        cache: CacheMode::ReadWrite,
        store_dir: dir.join("traces"),
        log_path: dir.join("runs.jsonl"),
        checkpoint_every: 64,
        budget,
        backend,
        ..CampaignConfig::default()
    };
    let reference = Campaign::new(config(&ref_dir, Backend::Event, RunBudget::unlimited()))
        .acquire(Scheme::Rsm);

    let first = Campaign::new(config(
        &dir,
        Backend::Bitsliced,
        RunBudget::unlimited().with_max_new_traces(1024),
    ))
    .acquire(Scheme::Rsm);
    assert!(
        first.partial.is_some(),
        "the trace budget must interrupt the 1536-trace schedule"
    );

    let mut resumed = Campaign::new(config(&dir, Backend::Bitsliced, RunBudget::unlimited()));
    let complete = resumed.acquire(Scheme::Rsm);
    assert!(complete.partial.is_none());
    assert_eq!(complete.traces, reference.traces);
    assert_eq!(complete.spectrum, reference.spectrum);
    let report = resumed.log().reports().last().expect("one run logged");
    assert!(report.resumed > 0, "resume must reuse checkpointed traces");
    assert_eq!(report.backend, Some(Backend::Bitsliced));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// Sub-resolution gate delays make commit order unreproducible from
/// levelized evaluation: the support check must reject such a netlist
/// so acquisition falls back to the event engine (the campaign-level
/// fallback is covered in the executor's unit tests).
#[test]
fn sub_resolution_netlists_are_rejected_by_the_bitsliced_engine() {
    let circuit = SboxCircuit::build(Scheme::Opt);
    let config = small_protocol();
    let gates = circuit.netlist().gates().len();
    let derating =
        sbox_leakage::gatesim::Derating::from_factors(vec![1e-12; gates], vec![1.0; gates]);
    assert!(
        sbox_leakage::acquisition::acquire_bitsliced_with_derating(&circuit, &config, &derating)
            .is_err(),
        "sub-resolution delays must fail the static support check"
    );
    // A sane derating on the same netlist is supported and agrees with
    // the event-driven acquisition bit for bit.
    let fresh = sbox_leakage::gatesim::Derating::fresh(circuit.netlist());
    let batch =
        sbox_leakage::acquisition::acquire_bitsliced_with_derating(&circuit, &config, &fresh)
            .expect("fresh derating is supported");
    let event = sbox_leakage::acquisition::acquire_with_derating(&circuit, &config, &fresh);
    assert_eq!(batch, event);
}

/// The single `.sctr` store file a campaign wrote under `dir`.
fn store_file(dir: &Path) -> PathBuf {
    let mut stores: Vec<PathBuf> = std::fs::read_dir(dir.join("traces"))
        .expect("store dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "sctr"))
        .collect();
    assert_eq!(stores.len(), 1, "expected exactly one store in {stores:?}");
    stores.pop().expect("one store")
}
