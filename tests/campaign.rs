//! Integration tests for the campaign engine, exercised through the
//! `sbox-leakage` facade the way downstream code sees it.
//!
//! The headline assertion here is the paper-budget determinism check:
//! the full 1024-trace ISW acquisition through the sharded executor is
//! bit-identical to the sequential `acquisition::acquire` path for any
//! worker count.

use std::path::{Path, PathBuf};

use sbox_leakage::acquisition;
use sbox_leakage::analysis::LeakageSpectrum;
use sbox_leakage::campaign::{CacheMode, Campaign, CampaignConfig, StoreWriter};
use sbox_leakage::campaign::{StoreKind, StoreMeta, StoreReader};
use sbox_leakage::circuits::{SboxCircuit, Scheme};

/// A unique scratch directory per test, cleaned up at entry so stale
/// state from an interrupted run cannot leak into assertions.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbox-leakage-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn campaign_in(dir: &Path, workers: usize, cache: CacheMode) -> Campaign {
    Campaign::new(CampaignConfig {
        workers,
        cache,
        store_dir: dir.join("traces"),
        log_path: dir.join("runs.jsonl"),
        ..CampaignConfig::default()
    })
}

/// Acceptance criterion: the paper's 1024-trace ISW protocol acquired
/// through the campaign engine with N workers is bit-identical to the
/// single-threaded acquisition path — same per-class mean traces, same
/// TotalLeakagePower.
#[test]
fn isw_campaign_is_bit_identical_to_sequential_acquisition_for_any_worker_count() {
    let config = CampaignConfig::default().protocol;
    assert_eq!(
        config.traces_per_class * 16,
        1024,
        "the default protocol is the paper's 1024-trace budget"
    );

    let circuit = SboxCircuit::build(Scheme::Isw);
    let reference = acquisition::acquire(&circuit, &config);
    let reference_means = reference.class_means();
    let reference_tlp = LeakageSpectrum::from_class_means(&reference_means).total_leakage_power();

    for workers in [1usize, 2, 8] {
        let dir = scratch(&format!("det{workers}"));
        let mut campaign = campaign_in(&dir, workers, CacheMode::Off);
        let outcome = campaign.acquire(Scheme::Isw);
        assert!(!outcome.cache_hit, "cache is off; this must simulate");
        assert_eq!(
            outcome.traces.class_means(),
            reference_means,
            "per-class mean traces differ at {workers} workers"
        );
        assert_eq!(
            outcome.spectrum.total_leakage_power(),
            reference_tlp,
            "TotalLeakagePower differs at {workers} workers"
        );
        assert_eq!(outcome.traces, reference);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The store round-trips classified records exactly: metadata, labels,
/// and every f64 sample bit pattern.
#[test]
fn store_round_trips_records_bit_exactly() {
    let dir = scratch("store");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.sctr");

    // Exercise awkward values: negatives, subnormals, huge magnitudes,
    // and exact zero.
    let records: Vec<(u16, Vec<f64>)> = (0..24)
        .map(|i| {
            let base = (i as f64 - 11.5) * 1.0e-3;
            let samples = (0..7)
                .map(|s| match s % 4 {
                    0 => base * (s as f64 + 1.0),
                    1 => -base * 1.0e12,
                    2 => base * f64::MIN_POSITIVE,
                    _ => 0.0,
                })
                .collect();
            (i % 16, samples)
        })
        .collect();

    let meta = StoreMeta {
        kind: StoreKind::Classified,
        name: "ISW".to_string(),
        seed: 0xD47E_2022,
        age_months: 12.5,
        config_digest: 0xDEAD_BEEF_0BAD_F00D,
        class_or_key: 16,
        traces: records.len() as u32,
        samples: 7,
    };
    let mut writer = StoreWriter::create(&path, meta.clone()).unwrap();
    for (label, samples) in &records {
        writer.record(*label, samples).unwrap();
    }
    writer.finish().unwrap();

    let reader = StoreReader::open(&path).unwrap();
    assert_eq!(reader.meta(), &meta);
    let mut read_back = Vec::new();
    reader
        .for_each_record(|label, samples| read_back.push((label, samples.to_vec())))
        .unwrap();
    assert_eq!(read_back, records);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A second campaign over the same store directory — a fresh process in
/// real use — serves the acquisition from disk with zero simulator
/// events, and returns the identical spectrum.
#[test]
fn warm_cache_serves_acquisition_with_zero_simulator_events() {
    let dir = scratch("warm");

    let mut cold = campaign_in(&dir, 2, CacheMode::ReadWrite);
    let first = cold.acquire(Scheme::Glut);
    assert!(!first.cache_hit);
    assert!(cold.log().reports()[0].stats.events > 0);

    let mut warm = campaign_in(&dir, 2, CacheMode::ReadWrite);
    let second = warm.acquire(Scheme::Glut);
    assert!(second.cache_hit, "second campaign must hit the store");
    assert_eq!(
        warm.log().reports()[0].stats.events,
        0,
        "a cache hit must not run the simulator"
    );
    assert_eq!(first.traces, second.traces);
    assert_eq!(
        first.spectrum.total_leakage_power(),
        second.spectrum.total_leakage_power()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
