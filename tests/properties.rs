//! Property-style tests on the core data structures and invariants of the
//! workspace.
//!
//! These were originally written with `proptest`; the build environment
//! has no registry access, so each property is now exercised over a
//! seeded randomized sweep (plus the interesting boundary cases) with the
//! workspace's own `rand`. Failures print the iteration seed so a case
//! can be replayed by hand.

use leakage_core::{spectrum_of, ClassifiedTraces, LeakageSpectrum};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sbox_circuits::{InputEncoding, Scheme};
use sbox_netlist::synth::{greedy_cover, prime_implicants, TruthTable};
use sbox_netlist::NetlistBuilder;

const SWEEPS: usize = 64;

/// The Walsh–Hadamard transform is an involution and preserves energy
/// (Parseval) on arbitrary 16-point functions.
#[test]
fn wht_involution_and_parseval() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0001);
    for case in 0..SWEEPS {
        let f: Vec<f64> = (0..16).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let a = spectrum_of(&f);
        let back = spectrum_of(&a);
        for (x, y) in f.iter().zip(&back) {
            assert!((x - y).abs() < 1e-9, "case {case}: {x} != {y}");
        }
        let ef: f64 = f.iter().map(|x| x * x).sum();
        let ea: f64 = a.iter().map(|x| x * x).sum();
        assert!(
            (ef - ea).abs() < 1e-6 * ef.max(1.0),
            "case {case}: energy {ef} vs {ea}"
        );
    }
}

/// Adding a constant to every trace changes only the u = 0 component.
#[test]
fn constant_offsets_never_leak() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0002);
    for case in 0..SWEEPS {
        let offset = rng.gen_range(-50.0..50.0);
        let mut plain = ClassifiedTraces::new(16, 4);
        let mut shifted = ClassifiedTraces::new(16, 4);
        for i in 0..64usize {
            let class = i % 16;
            let t: Vec<f64> = (0..4).map(|_| rng.gen::<f64>()).collect();
            shifted.push(class, t.iter().map(|x| x + offset).collect());
            plain.push(class, t);
        }
        let a = LeakageSpectrum::from_class_means(&plain.class_means());
        let b = LeakageSpectrum::from_class_means(&shifted.class_means());
        for t in 0..4 {
            assert!(
                (a.leakage_power(t) - b.leakage_power(t)).abs() < 1e-9,
                "case {case}, sample {t}"
            );
        }
    }
}

/// Every encoding round-trips its class label for arbitrary masks.
#[test]
fn encodings_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0003);
    for case in 0..SWEEPS {
        let t = rng.gen_range(0u8..16);
        let word = rng.gen_range(0u32..(1 << 12));
        for scheme in Scheme::ALL {
            let enc = InputEncoding::for_scheme(scheme);
            let bits = enc.mask_bits();
            let mask = if bits == 0 {
                0
            } else {
                word & ((1 << bits) - 1)
            };
            let v = enc.encode_masked(t, mask);
            assert_eq!(v.len(), enc.num_inputs(), "case {case}, {scheme}");
            assert_eq!(enc.unmask_input(&v), t, "case {case}, {scheme}");
        }
    }
}

/// Two-level synthesis is exact on random 4-input / 2-output tables.
#[test]
fn sop_synthesis_is_exact() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0004);
    for case in 0..SWEEPS {
        let words: Vec<u64> = (0..16).map(|_| rng.gen_range(0u64..4)).collect();
        let tt = TruthTable::from_words(4, 2, words.clone());
        let mut b = NetlistBuilder::new("prop_sop");
        let ins = b.input_bus("x", 4);
        let outs = tt.synthesize_sop(&mut b, &ins);
        b.output_bus("y", &outs);
        let nl = b.finish().expect("valid");
        for (t, w) in words.iter().enumerate() {
            assert_eq!(nl.evaluate_word(t as u64), *w, "case {case}, t={t}");
        }
    }
}

/// Prime implicants cover exactly the on-set: soundness and completeness
/// of the cover on random (and boundary) on-sets.
#[test]
fn qm_cover_is_sound_and_complete() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0005);
    let masks = (0..SWEEPS as u32)
        .map(|_| rng.gen_range(1u32..0xFFFF))
        .chain([1, 0xFFFE, 0x8000, 0x5555, 0xAAAA]);
    for mask in masks {
        let on: Vec<u32> = (0..16u32).filter(|t| (mask >> t) & 1 == 1).collect();
        let primes = prime_implicants(&on, 4);
        let cover = greedy_cover(&on, &primes);
        for t in 0..16u32 {
            let covered = cover.iter().any(|p| p.covers(t));
            assert_eq!(covered, on.contains(&t), "mask={mask:#x} t={t}");
        }
    }
}

/// PRESENT encrypt/decrypt round-trip for arbitrary keys and blocks.
#[test]
fn present_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0006);
    for case in 0..SWEEPS {
        let mut key = [0u8; 10];
        rng.fill_bytes(&mut key);
        let block: u64 = rng.gen();
        let cipher = present_cipher::Present80::new(key);
        assert_eq!(
            cipher.decrypt_block(cipher.encrypt_block(block)),
            block,
            "case {case}: key {key:02x?} block {block:#x}"
        );
    }
}

/// The netlist reduction helpers are correct for arbitrary widths.
#[test]
fn reductions_match_folds() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0007);
    for case in 0..SWEEPS {
        let width = rng.gen_range(1usize..24);
        let bits: Vec<bool> = (0..width).map(|_| rng.gen()).collect();
        let mut b = NetlistBuilder::new("prop_reduce");
        let ins = b.input_bus("x", bits.len());
        let and = b.and(&ins);
        let or = b.or(&ins);
        let xor = b.xor_tree(&ins);
        b.output("and", and);
        b.output("or", or);
        b.output("xor", xor);
        let nl = b.finish().expect("valid");
        let out = nl.evaluate(&bits);
        assert_eq!(out[0], bits.iter().all(|&x| x), "case {case} and");
        assert_eq!(out[1], bits.iter().any(|&x| x), "case {case} or");
        assert_eq!(
            out[2],
            bits.iter().fold(false, |a, &x| a ^ x),
            "case {case} xor"
        );
    }
}
