//! Property-style tests on the core data structures and invariants of the
//! workspace.
//!
//! These were originally written with `proptest`; the build environment
//! has no registry access, so each property is now exercised over a
//! seeded randomized sweep (plus the interesting boundary cases) with the
//! workspace's own `rand`. Failures print the iteration seed so a case
//! can be replayed by hand.

use leakage_core::{
    spectrum_of, ClassAccumulator, ClassifiedTraces, LeakageSpectrum, SpectrumAccumulator,
    SpectrumStream, SumMode,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sbox_circuits::{InputEncoding, Scheme};
use sbox_netlist::synth::{greedy_cover, prime_implicants, TruthTable};
use sbox_netlist::NetlistBuilder;

const SWEEPS: usize = 64;

/// The Walsh–Hadamard transform is an involution and preserves energy
/// (Parseval) on arbitrary 16-point functions.
#[test]
fn wht_involution_and_parseval() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0001);
    for case in 0..SWEEPS {
        let f: Vec<f64> = (0..16).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let a = spectrum_of(&f);
        let back = spectrum_of(&a);
        for (x, y) in f.iter().zip(&back) {
            assert!((x - y).abs() < 1e-9, "case {case}: {x} != {y}");
        }
        let ef: f64 = f.iter().map(|x| x * x).sum();
        let ea: f64 = a.iter().map(|x| x * x).sum();
        assert!(
            (ef - ea).abs() < 1e-6 * ef.max(1.0),
            "case {case}: energy {ef} vs {ea}"
        );
    }
}

/// Adding a constant to every trace changes only the u = 0 component.
#[test]
fn constant_offsets_never_leak() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0002);
    for case in 0..SWEEPS {
        let offset = rng.gen_range(-50.0..50.0);
        let mut plain = ClassifiedTraces::new(16, 4);
        let mut shifted = ClassifiedTraces::new(16, 4);
        for i in 0..64usize {
            let class = i % 16;
            let t: Vec<f64> = (0..4).map(|_| rng.gen::<f64>()).collect();
            shifted.push(class, t.iter().map(|x| x + offset).collect());
            plain.push(class, t);
        }
        let a = LeakageSpectrum::from_class_means(&plain.class_means());
        let b = LeakageSpectrum::from_class_means(&shifted.class_means());
        for t in 0..4 {
            assert!(
                (a.leakage_power(t) - b.leakage_power(t)).abs() < 1e-9,
                "case {case}, sample {t}"
            );
        }
    }
}

/// Every encoding round-trips its class label for arbitrary masks.
#[test]
fn encodings_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0003);
    for case in 0..SWEEPS {
        let t = rng.gen_range(0u8..16);
        let word = rng.gen_range(0u32..(1 << 12));
        for scheme in Scheme::ALL {
            let enc = InputEncoding::for_scheme(scheme);
            let bits = enc.mask_bits();
            let mask = if bits == 0 {
                0
            } else {
                word & ((1 << bits) - 1)
            };
            let v = enc.encode_masked(t, mask);
            assert_eq!(v.len(), enc.num_inputs(), "case {case}, {scheme}");
            assert_eq!(enc.unmask_input(&v), t, "case {case}, {scheme}");
        }
    }
}

/// Two-level synthesis is exact on random 4-input / 2-output tables.
#[test]
fn sop_synthesis_is_exact() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0004);
    for case in 0..SWEEPS {
        let words: Vec<u64> = (0..16).map(|_| rng.gen_range(0u64..4)).collect();
        let tt = TruthTable::from_words(4, 2, words.clone());
        let mut b = NetlistBuilder::new("prop_sop");
        let ins = b.input_bus("x", 4);
        let outs = tt.synthesize_sop(&mut b, &ins);
        b.output_bus("y", &outs);
        let nl = b.finish().expect("valid");
        for (t, w) in words.iter().enumerate() {
            assert_eq!(nl.evaluate_word(t as u64), *w, "case {case}, t={t}");
        }
    }
}

/// Prime implicants cover exactly the on-set: soundness and completeness
/// of the cover on random (and boundary) on-sets.
#[test]
fn qm_cover_is_sound_and_complete() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0005);
    let masks = (0..SWEEPS as u32)
        .map(|_| rng.gen_range(1u32..0xFFFF))
        .chain([1, 0xFFFE, 0x8000, 0x5555, 0xAAAA]);
    for mask in masks {
        let on: Vec<u32> = (0..16u32).filter(|t| (mask >> t) & 1 == 1).collect();
        let primes = prime_implicants(&on, 4);
        let cover = greedy_cover(&on, &primes);
        for t in 0..16u32 {
            let covered = cover.iter().any(|p| p.covers(t));
            assert_eq!(covered, on.contains(&t), "mask={mask:#x} t={t}");
        }
    }
}

/// PRESENT encrypt/decrypt round-trip for arbitrary keys and blocks.
#[test]
fn present_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0006);
    for case in 0..SWEEPS {
        let mut key = [0u8; 10];
        rng.fill_bytes(&mut key);
        let block: u64 = rng.gen();
        let cipher = present_cipher::Present80::new(key);
        assert_eq!(
            cipher.decrypt_block(cipher.encrypt_block(block)),
            block,
            "case {case}: key {key:02x?} block {block:#x}"
        );
    }
}

/// The netlist reduction helpers are correct for arbitrary widths.
#[test]
fn reductions_match_folds() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0007);
    for case in 0..SWEEPS {
        let width = rng.gen_range(1usize..24);
        let bits: Vec<bool> = (0..width).map(|_| rng.gen()).collect();
        let mut b = NetlistBuilder::new("prop_reduce");
        let ins = b.input_bus("x", bits.len());
        let and = b.and(&ins);
        let or = b.or(&ins);
        let xor = b.xor_tree(&ins);
        b.output("and", and);
        b.output("or", or);
        b.output("xor", xor);
        let nl = b.finish().expect("valid");
        let out = nl.evaluate(&bits);
        assert_eq!(out[0], bits.iter().all(|&x| x), "case {case} and");
        assert_eq!(out[1], bits.iter().any(|&x| x), "case {case} or");
        assert_eq!(
            out[2],
            bits.iter().fold(false, |a, &x| a ^ x),
            "case {case} xor"
        );
    }
}

/// A random class-labelled trace set plus the batch-analysis view of it.
fn random_labelled_traces(
    rng: &mut SmallRng,
    classes: usize,
    samples: usize,
    n: usize,
) -> Vec<(usize, Vec<f64>)> {
    (0..n)
        .map(|_| {
            let class = rng.gen_range(0..classes);
            let t: Vec<f64> = (0..samples)
                .map(|_| rng.gen_range(-100.0f64..100.0))
                .collect();
            (class, t)
        })
        .collect()
}

fn accumulate(
    set: &[(usize, Vec<f64>)],
    classes: usize,
    samples: usize,
    mode: SumMode,
) -> SpectrumAccumulator {
    let mut acc = SpectrumAccumulator::new(classes, samples, mode);
    for (class, t) in set {
        acc.fold(*class, t);
    }
    acc
}

fn max_rel_diff(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    a.iter()
        .flatten()
        .zip(b.iter().flatten())
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0, f64::max)
}

/// Streaming accumulation equals the batch analysis on arbitrary random
/// sets: bit-for-bit in exact mode, within documented tolerance for
/// Welford.
#[test]
fn streaming_equals_batch_on_random_sets() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0008);
    for case in 0..SWEEPS {
        let samples = rng.gen_range(1usize..8);
        let n = rng.gen_range(16usize..200);
        let set = random_labelled_traces(&mut rng, 16, samples, n);
        let mut batch = ClassifiedTraces::new(16, samples);
        for (class, t) in &set {
            batch.push(*class, t.clone());
        }
        let batch_spectrum = LeakageSpectrum::from_class_means(&batch.class_means());

        let mut stream = SpectrumStream::new(16, samples, SumMode::Exact);
        for (class, t) in &set {
            stream.fold(*class, t);
        }
        let exact = stream.finish();
        assert_eq!(exact.class_means(), batch.class_means(), "case {case}");
        assert_eq!(exact.spectrum(), batch_spectrum, "case {case}");

        let welford = accumulate(&set, 16, samples, SumMode::Welford);
        let drift = max_rel_diff(&welford.class_means(), &batch.class_means());
        assert!(drift <= 1e-9, "case {case}: welford drifted {drift:e}");
    }
}

/// Accumulator merging is associative and commutative: any shard
/// grouping yields the same statistics — bitwise in exact mode, within
/// tolerance in Welford mode. (This is the property that lets the
/// executor merge worker-local shards in any tree it likes.)
#[test]
fn accumulator_merge_is_associative_and_commutative() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0009);
    for case in 0..SWEEPS {
        let samples = rng.gen_range(1usize..6);
        let parts: Vec<Vec<(usize, Vec<f64>)>> = (0..3)
            .map(|_| {
                let n = rng.gen_range(0usize..40);
                random_labelled_traces(&mut rng, 16, samples, n)
            })
            .collect();
        for mode in [SumMode::Exact, SumMode::Welford] {
            let acc = |i: usize| accumulate(&parts[i], 16, samples, mode);
            let left = acc(0).merge(acc(1)).merge(acc(2));
            let right = acc(0).merge(acc(1).merge(acc(2)));
            let swapped = acc(1).merge(acc(0)).merge(acc(2));
            assert_eq!(left.class_counts(), right.class_counts(), "case {case}");
            assert_eq!(left.class_counts(), swapped.class_counts(), "case {case}");
            match mode {
                SumMode::Exact => {
                    assert_eq!(left.class_means(), right.class_means(), "case {case} assoc");
                    assert_eq!(
                        left.class_means(),
                        swapped.class_means(),
                        "case {case} comm"
                    );
                    assert_eq!(left.spectrum(), right.spectrum(), "case {case}");
                    assert_eq!(left.spectrum(), swapped.spectrum(), "case {case}");
                }
                SumMode::Welford => {
                    let a = max_rel_diff(&left.class_means(), &right.class_means());
                    let c = max_rel_diff(&left.class_means(), &swapped.class_means());
                    assert!(a <= 1e-9 && c <= 1e-9, "case {case}: {a:e} / {c:e}");
                }
            }
        }
    }
}

/// In exact mode the fold is invariant under the tree-reduction
/// schedule: every chunk size (hence every merge-tree shape) produces
/// the identical accumulator statistics.
#[test]
fn exact_fold_is_invariant_under_tree_shape() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_000A);
    for case in 0..16 {
        let samples = rng.gen_range(1usize..6);
        let n = rng.gen_range(32usize..150);
        let set = random_labelled_traces(&mut rng, 16, samples, n);
        let reference = accumulate(&set, 16, samples, SumMode::Exact);
        for chunk in [1usize, 3, 16, 64, 1024] {
            let mut stream = SpectrumStream::with_chunk(16, samples, SumMode::Exact, chunk);
            for (class, t) in &set {
                stream.fold(*class, t);
            }
            let acc = stream.finish();
            assert_eq!(
                acc.class_means(),
                reference.class_means(),
                "case {case} chunk {chunk}"
            );
            assert_eq!(
                acc.spectrum(),
                reference.spectrum(),
                "case {case} chunk {chunk}"
            );
        }
    }
}

/// Welford's online variance agrees with the two-pass definition, and
/// the exact-mode variance does too.
#[test]
fn online_variance_matches_two_pass() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_000B);
    for case in 0..SWEEPS {
        let samples = rng.gen_range(1usize..6);
        let n = rng.gen_range(2usize..100);
        let traces: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..samples)
                    .map(|_| rng.gen_range(-100.0f64..100.0))
                    .collect()
            })
            .collect();
        // Two-pass reference: mean first, then centred squares.
        let two_pass: Vec<f64> = (0..samples)
            .map(|s| {
                let mean = traces.iter().map(|t| t[s]).sum::<f64>() / n as f64;
                traces.iter().map(|t| (t[s] - mean).powi(2)).sum::<f64>() / n as f64
            })
            .collect();
        for mode in [SumMode::Welford, SumMode::Exact] {
            let mut acc = ClassAccumulator::new(samples, mode);
            for t in &traces {
                acc.fold(t);
            }
            for (s, (got, want)) in acc.variance().iter().zip(&two_pass).enumerate() {
                let rel = (got - want).abs() / want.abs().max(1.0);
                assert!(
                    rel <= 1e-9,
                    "case {case} sample {s} ({mode:?}): {got} vs {want}"
                );
            }
        }
    }
}
