//! Property-based tests (proptest) on the core data structures and
//! invariants of the workspace.

use leakage_core::{spectrum_of, ClassifiedTraces, LeakageSpectrum};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sbox_circuits::{InputEncoding, Scheme};
use sbox_netlist::synth::{greedy_cover, prime_implicants, TruthTable};
use sbox_netlist::NetlistBuilder;

proptest! {
    /// The Walsh–Hadamard transform is an involution and preserves energy
    /// (Parseval) on arbitrary 16-point functions.
    #[test]
    fn wht_involution_and_parseval(f in proptest::collection::vec(-100.0f64..100.0, 16)) {
        let a = spectrum_of(&f);
        let back = spectrum_of(&a);
        for (x, y) in f.iter().zip(&back) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        let ef: f64 = f.iter().map(|x| x * x).sum();
        let ea: f64 = a.iter().map(|x| x * x).sum();
        prop_assert!((ef - ea).abs() < 1e-6 * ef.max(1.0));
    }

    /// Adding a constant to every trace changes only the u = 0 component.
    #[test]
    fn constant_offsets_never_leak(offset in -50.0f64..50.0, seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plain = ClassifiedTraces::new(16, 4);
        let mut shifted = ClassifiedTraces::new(16, 4);
        for i in 0..64usize {
            let class = i % 16;
            let t: Vec<f64> = (0..4).map(|_| rand::Rng::gen::<f64>(&mut rng)).collect();
            shifted.push(class, t.iter().map(|x| x + offset).collect());
            plain.push(class, t);
        }
        let a = LeakageSpectrum::from_class_means(&plain.class_means());
        let b = LeakageSpectrum::from_class_means(&shifted.class_means());
        for t in 0..4 {
            prop_assert!((a.leakage_power(t) - b.leakage_power(t)).abs() < 1e-9);
        }
    }

    /// Every encoding round-trips its class label for arbitrary masks.
    #[test]
    fn encodings_round_trip(t in 0u8..16, word in 0u32..(1 << 12)) {
        for scheme in Scheme::ALL {
            let enc = InputEncoding::for_scheme(scheme);
            let bits = enc.mask_bits();
            let mask = if bits == 0 { 0 } else { word & ((1 << bits) - 1) };
            let v = enc.encode_masked(t, mask);
            prop_assert_eq!(v.len(), enc.num_inputs());
            prop_assert_eq!(enc.unmask_input(&v), t);
        }
    }

    /// Two-level synthesis is exact on random 4-input / 2-output tables.
    #[test]
    fn sop_synthesis_is_exact(words in proptest::collection::vec(0u64..4, 16)) {
        let tt = TruthTable::from_words(4, 2, words.clone());
        let mut b = NetlistBuilder::new("prop_sop");
        let ins = b.input_bus("x", 4);
        let outs = tt.synthesize_sop(&mut b, &ins);
        b.output_bus("y", &outs);
        let nl = b.finish().expect("valid");
        for (t, w) in words.iter().enumerate() {
            prop_assert_eq!(nl.evaluate_word(t as u64), *w);
        }
    }

    /// Prime implicants cover exactly the on-set: soundness and
    /// completeness of the cover on random on-sets.
    #[test]
    fn qm_cover_is_sound_and_complete(mask in 1u32..0xFFFF) {
        let on: Vec<u32> = (0..16u32).filter(|t| (mask >> t) & 1 == 1).collect();
        let primes = prime_implicants(&on, 4);
        let cover = greedy_cover(&on, &primes);
        for t in 0..16u32 {
            let covered = cover.iter().any(|p| p.covers(t));
            prop_assert_eq!(covered, on.contains(&t), "t={}", t);
        }
    }

    /// PRESENT encrypt/decrypt round-trip for arbitrary keys and blocks.
    #[test]
    fn present_round_trip(key in proptest::array::uniform10(0u8..=255), block: u64) {
        let cipher = present_cipher::Present80::new(key);
        prop_assert_eq!(cipher.decrypt_block(cipher.encrypt_block(block)), block);
    }

    /// The netlist reduction helpers are correct for arbitrary widths.
    #[test]
    fn reductions_match_folds(bits in proptest::collection::vec(any::<bool>(), 1..24)) {
        let mut b = NetlistBuilder::new("prop_reduce");
        let ins = b.input_bus("x", bits.len());
        let and = b.and(&ins);
        let or = b.or(&ins);
        let xor = b.xor_tree(&ins);
        b.output("and", and);
        b.output("or", or);
        b.output("xor", xor);
        let nl = b.finish().expect("valid");
        let out = nl.evaluate(&bits);
        prop_assert_eq!(out[0], bits.iter().all(|&x| x));
        prop_assert_eq!(out[1], bits.iter().any(|&x| x));
        prop_assert_eq!(out[2], bits.iter().fold(false, |a, &x| a ^ x));
    }
}
