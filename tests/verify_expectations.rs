//! Pinned static-analysis expectations: the `sca-verify` JSON report of
//! every scheme, byte-for-byte.
//!
//! The fixtures under `tests/golden/verify/` are the same documents the
//! `sca-verify` CLI writes to `results/verify/`; CI re-runs the analyzer
//! and diffs against them, so any drift in a verdict, rule count, or
//! score is a reviewed change, never an accident.
//!
//! Regenerate after an intentional analyzer change with:
//!
//! ```text
//! SCA_BLESS=1 cargo test --test verify_expectations
//! ```
//!
//! (or `sca-verify all --bless`) and review the fixture diff like any
//! other code change (see `DESIGN.md`, "Static leakage model").

use std::path::PathBuf;

use sbox_leakage::circuits::{SboxCircuit, Scheme};
use sbox_leakage::verify::{analyze, expect, report};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/verify")
}

#[test]
fn static_reports_match_the_pinned_expectations() {
    let mut failures = Vec::new();
    for scheme in Scheme::ALL {
        let analysis = analyze(&SboxCircuit::build(scheme));
        let actual = report::json(&analysis);
        let path = expect::expectation_path(&golden_dir(), scheme.label());
        if expect::blessing() {
            expect::bless(&path, &actual).expect("write fixture");
            continue;
        }
        if let Err(drift) = expect::check(&path, &actual) {
            failures.push(format!("{scheme}: {drift}"));
        }
    }
    assert!(
        failures.is_empty(),
        "static reports drifted from tests/golden/verify \
         (re-bless with SCA_BLESS=1 after review):\n{}",
        failures.join("\n")
    );
}
