//! Cross-crate integration: netlist generators → simulator → acquisition →
//! spectral analysis, exercised together.

use acquisition::{acquire, LeakageStudy, ProtocolConfig};
use gatesim::{SimConfig, Simulator};
use leakage_core::LeakageSpectrum;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sbox_circuits::{SboxCircuit, Scheme};

fn small_protocol() -> ProtocolConfig {
    ProtocolConfig {
        traces_per_class: 8,
        ..ProtocolConfig::default()
    }
}

/// Every scheme's netlist, driven through its own encoding, computes the
/// PRESENT S-box once unmasked — the fundamental functional contract.
#[test]
fn all_schemes_compute_the_sbox_through_their_encodings() {
    let mut rng = SmallRng::seed_from_u64(20_22);
    for circuit in SboxCircuit::build_all() {
        for t in 0..16u8 {
            for _ in 0..4 {
                let inputs = circuit.encoding().encode(t, &mut rng);
                let outputs = circuit.netlist().evaluate(&inputs);
                assert_eq!(
                    circuit.encoding().unmask_output(&inputs, &outputs),
                    present_cipher::sbox(t),
                    "{} t={t}",
                    circuit.scheme()
                );
            }
        }
    }
}

/// The event-driven simulator's settled state equals the functional
/// evaluation for every scheme (timing cannot change logic).
#[test]
fn simulator_settles_to_functional_values_for_every_scheme() {
    let mut rng = SmallRng::seed_from_u64(7);
    for circuit in SboxCircuit::build_all() {
        let sim = Simulator::new(circuit.netlist(), &SimConfig::default());
        for t in [0u8, 5, 10, 15] {
            let initial = circuit.encoding().encode(0, &mut rng);
            let final_inputs = circuit.encoding().encode(t, &mut rng);
            let record = sim.transition(&initial, &final_inputs);
            let expect = circuit.netlist().evaluate_nets(&final_inputs);
            assert_eq!(record.settled, expect, "{}", circuit.scheme());
        }
    }
}

/// The full study pipeline produces a well-formed spectrum for every
/// scheme, and Parseval's identity ties it to the class means.
#[test]
fn study_pipeline_is_consistent_with_parseval() {
    for scheme in [Scheme::Opt, Scheme::Isw] {
        let circuit = SboxCircuit::build(scheme);
        let traces = acquire(&circuit, &small_protocol());
        assert_eq!(traces.len(), 128);
        let means = traces.class_means();
        let spectrum = LeakageSpectrum::from_class_means(&means);
        for t in (0..100).step_by(17) {
            let column: Vec<f64> = means.iter().map(|m| m[t]).collect();
            let sum_sq: f64 = column.iter().map(|x| x * x).sum();
            let spec_sq: f64 = (0..16).map(|u| spectrum.coefficient(u, t).powi(2)).sum();
            assert!(
                (sum_sq - spec_sq).abs() <= 1e-9 * sum_sq.max(1.0),
                "{scheme} t={t}: {sum_sq} vs {spec_sq}"
            );
        }
    }
}

/// Leakage splits exactly into single-bit + multi-bit parts.
#[test]
fn leakage_split_is_exhaustive() {
    let study = LeakageStudy::new(small_protocol());
    let outcome = study.run(Scheme::Lut);
    let sp = &outcome.spectrum;
    let total = sp.total_leakage_power();
    let parts = sp.total_single_bit() + sp.total_multi_bit();
    assert!((total - parts).abs() <= 1e-9 * total.max(1.0));
    assert!(total > 0.0, "unprotected S-box must leak");
}

/// Aging derating slows the critical path and shrinks the total energy
/// for a real S-box netlist.
#[test]
fn aging_slows_and_weakens_the_sbox() {
    let study = LeakageStudy::new(small_protocol());
    let circuit = SboxCircuit::build(Scheme::Opt);
    let device = study.aged_device(&circuit);
    let fresh = device.derating_at_months(0.0);
    let old = device.derating_at_months(48.0);
    assert!(old.mean_delay_factor() > fresh.mean_delay_factor());
    assert!(old.mean_current_factor() < fresh.mean_current_factor());

    let cfg = SimConfig::default();
    let sim_fresh = Simulator::with_derating(circuit.netlist(), &cfg, &fresh);
    let sim_old = Simulator::with_derating(circuit.netlist(), &cfg, &old);
    let mut rng = SmallRng::seed_from_u64(3);
    let a = circuit.encoding().encode(0, &mut rng);
    let b = circuit.encoding().encode(9, &mut rng);
    let rec_fresh = sim_fresh.transition(&a, &b);
    let rec_old = sim_old.transition(&a, &b);
    assert!(rec_old.settle_time_ps() > rec_fresh.settle_time_ps());
    assert!(rec_old.total_energy_fj() < rec_fresh.total_energy_fj());
}

/// The acquisition protocol's class labels are consistent with the
/// encodings it generated (round-trip through `unmask_input`).
#[test]
fn protocol_labels_match_encodings() {
    let circuit = SboxCircuit::build(Scheme::Glut);
    let set = acquire(&circuit, &small_protocol());
    assert_eq!(set.class_counts(), vec![8; 16]);
}
