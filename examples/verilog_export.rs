//! Export every generated S-box netlist as structural Verilog for
//! inspection with external EDA tools.
//!
//! ```sh
//! cargo run --release --example verilog_export
//! ```

use std::fs;
use std::path::Path;

use sbox_circuits::{SboxCircuit, Scheme};
use sbox_netlist::verilog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = Path::new("target/verilog");
    fs::create_dir_all(out_dir)?;
    fs::write(out_dir.join("cells.v"), verilog::library_prelude())?;
    for scheme in Scheme::ALL {
        let circuit = SboxCircuit::build(scheme);
        let path = out_dir.join(format!(
            "{}.v",
            scheme.label().to_lowercase().replace('-', "_")
        ));
        fs::write(&path, verilog::to_verilog(circuit.netlist()))?;
        println!(
            "wrote {} ({} gates)",
            path.display(),
            circuit.netlist().gates().len()
        );
    }
    println!("cell library prelude in target/verilog/cells.v");
    Ok(())
}
