//! End-to-end streaming key recovery against an unprotected and a masked
//! S-box: the attack the paper's leakage metrics predict.
//!
//! The campaign streams every trace through the attack engine — per-guess
//! correlation state accumulates online next to the spectral state, so no
//! trace matrix is ever materialized — and reports the recovered key, the
//! success-rate curve, and measurements-to-disclosure per scheme.
//!
//! ```sh
//! cargo run --release --example key_recovery
//! ```

use campaign::{AttackPlan, Campaign, CampaignConfig, Distinguisher, SumMode};
use sbox_circuits::Scheme;
use sca_attacks::LeakageModel;

fn main() {
    let key = 0x4;
    let mut campaign = Campaign::new(CampaignConfig::default());
    let plan = AttackPlan {
        key,
        traces: 512,
        trials: 4,
        distinguishers: vec![
            Distinguisher::Cpa(LeakageModel::OutputTransition),
            Distinguisher::Mlpa,
        ],
        sr_threshold: 0.8,
        mode: SumMode::Exact,
    };
    for scheme in [Scheme::Lut, Scheme::Isw] {
        let outcome = campaign.attack(scheme, &plan);
        println!("=== {scheme} (true key {key:X}) ===");
        for report in &outcome.reports {
            // Trial 0 shares its traces with the batch CPA acquisitions,
            // so these scores are bit-identical to the offline attack.
            let canonical = &report.final_scores[0];
            println!("{}:", report.distinguisher.label());
            println!(
                "  recovered {:X} in {}/{} trials (rank of true key in trial 0: {})",
                report.recovered,
                report.trials_recovered,
                outcome.trials,
                canonical.key_rank(key)
            );
            println!("  success rate vs traces: {:?}", report.success_rate);
            match report.mtd {
                Some(m) => println!("  measurements to disclosure: {m}"),
                None => println!(
                    "  measurements to disclosure: none within {} traces",
                    plan.traces
                ),
            }
        }
        println!();
    }
    println!("the unprotected table falls to first-order attacks; the ISW gadgets");
    println!("randomize the intermediate, so the same attacks fail at this budget.\n");
    let _ = campaign.finish();
}
