//! End-to-end CPA key recovery against an unprotected and a masked S-box:
//! the attack the paper's leakage metrics predict.
//!
//! ```sh
//! cargo run --release --example key_recovery
//! ```

use campaign::{Campaign, CampaignConfig};
use sbox_circuits::Scheme;
use sca_attacks::{cpa_attack, success_rate_curve, LeakageModel};

fn main() {
    let key = 0x4;
    let mut campaign = Campaign::new(CampaignConfig::default());
    for scheme in [Scheme::Lut, Scheme::Isw] {
        let data = campaign.acquire_cpa(scheme, key, 512);
        let result = cpa_attack(
            &data.plaintexts,
            &data.traces,
            LeakageModel::OutputTransition,
        );
        println!("=== {scheme} (true key {key:X}) ===");
        println!("per-guess peak correlations:");
        for (k, score) in result.scores.iter().enumerate() {
            let marker = if k == usize::from(key) {
                "  ← true key"
            } else {
                ""
            };
            println!("  k̂={k:X}  ρ={score:.4}{marker}");
        }
        println!(
            "best guess: {:X} (rank of true key: {})",
            result.best_guess(),
            result.key_rank(key)
        );
        let curve = success_rate_curve(
            &data.plaintexts,
            &data.traces,
            key,
            LeakageModel::OutputTransition,
            &[32, 128, 512],
            8,
        );
        println!("success rate vs traces: {curve:?}\n");
    }
    println!("the unprotected table falls to first-order CPA; the ISW gadgets");
    println!("randomize the intermediate, so the same attack fails at this budget.\n");
    let _ = campaign.finish();
}
