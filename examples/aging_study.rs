//! Age a masked S-box over four years of operation: threshold drift,
//! delay/current derating, and the resulting leakage decay (paper §V-B.2).
//!
//! ```sh
//! cargo run --release --example aging_study
//! ```

use acquisition::{LeakageStudy, ProtocolConfig};
use campaign::{Campaign, CampaignConfig};
use sbox_circuits::{SboxCircuit, Scheme};

fn main() {
    let scheme = Scheme::Glut;
    let study = LeakageStudy::new(ProtocolConfig::default());
    let circuit = SboxCircuit::build(scheme);
    let device = study.aged_device(&circuit);

    println!("aging the {scheme} S-box under its own acquisition workload\n");
    println!(
        "{:>6} {:>12} {:>14} {:>14}",
        "months", "ΔVth g0 (mV)", "mean delay ×", "mean current ×"
    );
    for months in [0.0, 6.0, 12.0, 24.0, 36.0, 48.0] {
        let derating = device.derating_at_months(months);
        println!(
            "{:>6.0} {:>12.2} {:>14.4} {:>14.4}",
            months,
            1000.0 * device.delta_vth_v(0, months),
            derating.mean_delay_factor(),
            derating.mean_current_factor()
        );
    }

    println!("\nleakage over the device lifetime:");
    let mut campaign = Campaign::new(CampaignConfig::default());
    let outcomes = campaign.run_aged(scheme, &[0.0, 12.0, 24.0, 36.0, 48.0]);
    let fresh = outcomes[0].spectrum.total_leakage_power();
    for aged in &outcomes {
        let total = aged.spectrum.total_leakage_power();
        println!(
            "  {:>3.0} months: {:.4e} ({:+.1}% vs fresh)",
            aged.age_months,
            total,
            100.0 * (total - fresh) / fresh
        );
    }
    println!("\nmasking does not weaken with age: leakage only decreases, so a");
    println!("device secure when new stays at least as secure through its lifetime.\n");
    let _ = campaign.finish();
}
