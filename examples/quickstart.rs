//! Quickstart: build a masked S-box, capture the paper's trace protocol
//! through the campaign engine, and project the class means onto the
//! Walsh–Hadamard basis.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The campaign persists the acquired traces under `results/traces/`;
//! run the example twice and the second run serves them from the cache
//! without simulating (see the campaign report it prints).

use campaign::{Campaign, CampaignConfig};
use sbox_circuits::{SboxCircuit, Scheme};

fn main() {
    // 1. Build a gate-level netlist of the ISW-masked PRESENT S-box.
    let circuit = SboxCircuit::build(Scheme::Isw);
    let stats = circuit.netlist().stats();
    println!("netlist: {stats}\n");

    // 2. Check it actually computes the S-box under the masks.
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(1);
    let inputs = circuit.encoding().encode(0x6, &mut rng);
    let outputs = circuit.netlist().evaluate(&inputs);
    let unmasked = circuit.encoding().unmask_output(&inputs, &outputs);
    println!(
        "S(0x6) = {:X} (reference {:X})\n",
        unmasked,
        present_cipher::sbox(0x6)
    );

    // 3. Acquire the paper's 1024-trace protocol (parallel, cached) and
    //    compute the leakage.
    let mut campaign = Campaign::new(CampaignConfig::default());
    let outcome = campaign.acquire(Scheme::Isw);
    let spectrum = &outcome.spectrum;
    println!(
        "total leakage power      : {:.4e}",
        spectrum.total_leakage_power()
    );
    println!(
        "single-bit contribution  : {:.4e} ({:.1}%)",
        spectrum.total_single_bit(),
        100.0 * spectrum.single_bit_ratio()
    );
    println!("strongest leakage sources:");
    for (u, e) in spectrum.dominant_sources().iter().take(3) {
        println!("  u = {u:2} ({u:04b}): {e:.4e}");
    }
    println!();
    let _ = campaign.finish();
}
