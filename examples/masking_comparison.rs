//! Compare all seven S-box implementations on one die: area, depth,
//! switching energy and Walsh–Hadamard leakage — a compact version of the
//! paper's Figs. 6/7.
//!
//! ```sh
//! cargo run --release --example masking_comparison
//! ```

use campaign::{Campaign, CampaignConfig};
use sbox_circuits::{SboxCircuit, Scheme};

fn main() {
    let mut campaign = Campaign::new(CampaignConfig::default());
    println!(
        "{:9} {:>6} {:>9} {:>7} {:>12} {:>12} {:>9}",
        "scheme", "gates", "equ", "depth", "total-leak", "multi-bit", "1b-ratio"
    );
    let mut ranking = Vec::new();
    for scheme in Scheme::ALL {
        let circuit = SboxCircuit::build(scheme);
        let stats = circuit.netlist().stats();
        let outcome = campaign.acquire(scheme);
        let sp = &outcome.spectrum;
        println!(
            "{:9} {:>6} {:>9.1} {:>7} {:>12.4e} {:>12.4e} {:>9.3}",
            scheme.label(),
            stats.total_gates,
            stats.equivalent_gates,
            stats.delay_gates,
            sp.total_leakage_power(),
            sp.total_multi_bit(),
            sp.single_bit_ratio()
        );
        ranking.push((scheme, sp.total_leakage_power()));
    }
    ranking.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("\nsecurity ranking at the paper's 1024-trace budget (best first):");
    for (i, (scheme, leak)) in ranking.iter().enumerate() {
        println!("  {}. {:8} {:.4e}", i + 1, scheme.label(), leak);
    }
    println!();
    let _ = campaign.finish();
}
