//! Simulate the full 64-bit PRESENT round-1 datapath (add-round-key +
//! 16 S-boxes + pLayer) and dump the switching activity as a VCD waveform
//! for GTKWave.
//!
//! ```sh
//! cargo run --release --example round1_waveform
//! ```

use std::fs;

use gatesim::{vcd, SamplingConfig, SimConfig, Simulator};
use present_cipher::Present80;
use sbox_circuits::round1::{build_round_one, RoundSboxStyle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = build_round_one(RoundSboxStyle::Opt);
    println!(
        "round-1 datapath: {} gates, critical path {} gates ({:.0} ps)",
        netlist.gates().len(),
        netlist.critical_path_gates(),
        netlist.critical_path_ps()
    );

    let cipher = Present80::new([0x42; 10]);
    let k1 = cipher.round_keys()[0];
    let bits = |word: u64| (0..64).map(move |i| (word >> i) & 1 == 1);
    let stimulus = |p: u64| -> Vec<bool> { bits(p).chain(bits(k1)).collect() };

    let sim = Simulator::new(&netlist, &SimConfig::default());
    let initial = stimulus(k1); // S-box inputs all zero, the protocol's class 0
    let final_inputs = stimulus(0x0123_4567_89AB_CDEF);
    let record = sim.transition(&initial, &final_inputs);
    println!(
        "transition: {} events, {:.1} pJ, settled after {:.0} ps",
        record.events.len(),
        record.total_energy_fj() / 1000.0,
        record.settle_time_ps()
    );

    let trace = sim.capture(&initial, &final_inputs, &SamplingConfig::default());
    let peak = trace.iter().cloned().fold(0.0, f64::max);
    println!("peak supply power {peak:.1} mW across the 2 ns window");

    fs::create_dir_all("target/waves")?;
    let path = "target/waves/round1.vcd";
    fs::write(path, vcd::to_vcd(&netlist, &initial, &record, 1))?;
    println!("wrote {path} — open with `gtkwave {path}`");
    Ok(())
}
