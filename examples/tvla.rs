//! Fixed-vs-random TVLA (Welch t-test) across all seven implementations —
//! the conventional leakage assessment the paper's spectral method
//! refines.
//!
//! ```sh
//! cargo run --release --example tvla
//! ```

use gatesim::{SamplingConfig, SimConfig, Simulator};
use leakage_core::ttest::{max_abs_t, welch_t, TVLA_THRESHOLD};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sbox_circuits::{SboxCircuit, Scheme};

fn main() {
    let mut rng = SmallRng::seed_from_u64(0x7714);
    let sampling = SamplingConfig::default();
    println!("fixed-vs-random TVLA, 512 traces per group, |t| threshold {TVLA_THRESHOLD}");
    println!("{:9} {:>10} {:>8}", "scheme", "max |t|", "verdict");
    for scheme in Scheme::ALL {
        let circuit = SboxCircuit::build(scheme);
        let sim = Simulator::new(circuit.netlist(), &SimConfig::default());
        // One reused capture session per scheme: no per-trace allocation.
        let mut session = sim.session();
        let fixed_class = 0x3u8;
        let mut fixed = Vec::new();
        let mut random = Vec::new();
        for i in 0..1024u32 {
            let initial = circuit.encoding().encode(0, &mut rng);
            if i % 2 == 0 {
                let fin = circuit.encoding().encode(fixed_class, &mut rng);
                fixed.push(session.capture_with_rng(&initial, &fin, &sampling, &mut rng));
            } else {
                let class = (i / 2 % 16) as u8;
                let fin = circuit.encoding().encode(class, &mut rng);
                random.push(session.capture_with_rng(&initial, &fin, &sampling, &mut rng));
            }
        }
        let t = max_abs_t(&welch_t(&fixed, &random));
        let verdict = if t > TVLA_THRESHOLD { "LEAKS" } else { "pass" };
        println!("{:9} {:>10.2} {:>8}", scheme.label(), t, verdict);
    }
    println!("\nTVLA says *whether* a design leaks; the Walsh–Hadamard decomposition");
    println!("says *which bit combinations* leak and *how much* — run the fig4/fig6");
    println!("experiments for that view.");
}
