//! Fixed-vs-random TVLA (Welch t-test) across all seven implementations —
//! the conventional leakage assessment the paper's spectral method
//! refines.
//!
//! Traces never accumulate in memory: each capture is borrowed from the
//! reusable session buffer and folded straight into an online moment
//! accumulator per group, so the t-statistics come from
//! [`welch_t_from_moments`] at a constant memory footprint.
//!
//! ```sh
//! cargo run --release --example tvla
//! ```

use gatesim::{SamplingConfig, SimConfig, Simulator};
use leakage_core::online::{ClassAccumulator, SumMode};
use leakage_core::ttest::{max_abs_t, welch_t_from_moments, TVLA_THRESHOLD};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sbox_circuits::{SboxCircuit, Scheme};

fn main() {
    let mut rng = SmallRng::seed_from_u64(0x7714);
    let sampling = SamplingConfig::default();
    println!("fixed-vs-random TVLA, 512 traces per group, |t| threshold {TVLA_THRESHOLD}");
    println!("{:9} {:>10} {:>8}", "scheme", "max |t|", "verdict");
    for scheme in Scheme::ALL {
        let circuit = SboxCircuit::build(scheme);
        let sim = Simulator::new(circuit.netlist(), &SimConfig::default());
        // One reused capture session per scheme: no per-trace allocation.
        let mut session = sim.session();
        let fixed_class = 0x3u8;
        let mut fixed = ClassAccumulator::new(sampling.samples, SumMode::Exact);
        let mut random = ClassAccumulator::new(sampling.samples, SumMode::Exact);
        for i in 0..1024u32 {
            let initial = circuit.encoding().encode(0, &mut rng);
            let (class, group) = if i % 2 == 0 {
                (fixed_class, &mut fixed)
            } else {
                ((i / 2 % 16) as u8, &mut random)
            };
            let fin = circuit.encoding().encode(class, &mut rng);
            let (trace, _) = session.capture_trace(&initial, &fin, &sampling, &mut rng);
            group.fold(trace);
        }
        let t = max_abs_t(&welch_t_from_moments(&fixed, &random));
        let verdict = if t > TVLA_THRESHOLD { "LEAKS" } else { "pass" };
        println!("{:9} {:>10.2} {:>8}", scheme.label(), t, verdict);
    }
    println!("\nTVLA says *whether* a design leaks; the Walsh–Hadamard decomposition");
    println!("says *which bit combinations* leak and *how much* — run the fig4/fig6");
    println!("experiments for that view.");
}
